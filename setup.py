"""Setup shim: enables legacy editable installs in offline environments
where the `wheel` package is unavailable (metadata lives in pyproject.toml)."""

from setuptools import setup

setup()
