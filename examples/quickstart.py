#!/usr/bin/env python3
"""Quickstart: assemble, simulate, inspect — the 5-minute tour.

Covers the core public API: building a simulation from assembly, stepping
forward and *backward*, reading registers/memory, compiling C, and printing
the runtime-statistics page the paper's GUI shows (Fig. 10).
"""

from repro import CpuConfig, Simulation
from repro.compiler import compile_c
from repro.viz import render_processor, render_statistics

# ---------------------------------------------------------------------------
# 1. simulate a small assembly program
# ---------------------------------------------------------------------------
SOURCE = """
# sum of 1..100 in a0
    li  a0, 0
    li  t0, 1
    li  t1, 100
loop:
    add a0, a0, t0
    addi t0, t0, 1
    ble t0, t1, loop
    ebreak
"""

sim = Simulation.from_source(SOURCE)
sim.run()
print(f"sum(1..100) = {sim.register_value('a0')}")
print(f"cycles = {sim.stats.cycles}, IPC = {sim.stats.ipc:.3f}, "
      f"branch accuracy = {sim.stats.branch_prediction_accuracy:.3f}")

# ---------------------------------------------------------------------------
# 2. step-by-step simulation, forward and backward (Sec. II of the paper)
#
# Backward stepping is checkpointed: every `checkpoint_interval` cycles
# (default 128) the complete processor state is saved into an LRU-bounded
# ring (`sim.checkpoints`), so `step_back`/`seek` restore the nearest
# checkpoint and deterministically replay at most one interval — O(K)
# instead of the paper's O(t) re-run from cycle 0.  Replay is bit-exact
# (pinned by the golden determinism suite), and `sim.last_replay_cycles`
# tells you how much was actually re-run.
# ---------------------------------------------------------------------------
sim = Simulation.from_source(SOURCE, checkpoint_interval=16)
sim.step(25)
print(f"\nafter 25 cycles: committed={sim.cpu.committed}")
sim.step_back(10)        # restore the nearest checkpoint, replay the rest
print(f"after stepping back 10: cycle={sim.cycle}, "
      f"committed={sim.cpu.committed} "
      f"(replayed only {sim.last_replay_cycles} cycles)")
sim.seek(24)             # absolute jumps use the same checkpoint ring
print(f"after seek(24): cycle={sim.cycle} "
      f"(replayed {sim.last_replay_cycles} from checkpoint @16)")

# ---------------------------------------------------------------------------
# 2b. how the trace tier works (the run-to-completion fast path)
#
# Uninstrumented runs (`sim.run()` with no observers, and the fast-forward
# leg of far-forward `seek`s) execute through a *superblock trace tier*:
#
#   * at startup the static code is split into superblocks (straight-line
#     runs with at most one terminating branch);
#   * every interpreted fetch of a block head is counted, and a block that
#     reaches the hot threshold (16 fetches; REPRO_TRACE_THRESHOLD
#     overrides) is compiled into specialized Python fetch/dispatch/eval
#     functions with the configuration's constants folded in;
#   * anything the specialized code cannot decide locally — a structural
#     stall, a mispredicted branch, a store into the code image — takes a
#     *side exit* back to the interpreter, so behaviour is bit-identical
#     by construction (pinned by the golden determinism suite).
#
# Stepped (instrumented) simulation is untouched.  Far-forward seeks run
# uninstrumented to the last checkpoint boundary below the target, drop
# the checkpoint there, and step only the tail interval —
# `sim.last_fast_forward` reports the fast-forwarded share.  When
# bisecting a timing bug you can rule the tier out by disabling it:
# set the environment variable REPRO_TRACE=0, or `config.trace = False`.
#
# `repro-sim run --verbosity 2` prints the tier's counters (superblocks
# compiled, side exits, invalidations) after the checkpoint-ring line.
# ---------------------------------------------------------------------------
sim = Simulation.from_source(SOURCE, checkpoint_interval=16)
sim.seek(90)             # far-forward: uninstrumented to cycle 80, step 10
tier = sim.cpu._trace_tier
print(f"\nseek(90): fast-forwarded {sim.last_fast_forward} cycles"
      + (f", trace tier compiled {tier.stats['compiled']} superblock(s)"
         if tier is not None else " (trace tier disabled)"))

# ---------------------------------------------------------------------------
# 3. compile C and watch the optimizer work
# ---------------------------------------------------------------------------
C_SOURCE = """
int dot(int *a, int *b, int n) {
    int s = 0;
    for (int i = 0; i < n; i++) s += a[i] * b[i];
    return s;
}

int main(void) {
    int a[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    int b[8] = {8, 7, 6, 5, 4, 3, 2, 1};
    return dot(a, b, 8);
}
"""

print("\nC compilation at four optimization levels:")
for level in range(4):
    result = compile_c(C_SOURCE, level)
    run = Simulation.from_source(result.assembly, entry="main")
    run.run()
    print(f"  O{level}: result={run.register_value('a0'):>4}  "
          f"cycles={run.stats.cycles:>6}  IPC={run.stats.ipc:.3f}")

# ---------------------------------------------------------------------------
# 4. customize the architecture (Fig. 9 settings window)
# ---------------------------------------------------------------------------
wide = CpuConfig.preset("wide")
sim = Simulation.from_source(SOURCE, config=wide)
sim.run()
print(f"\non the 4-wide preset: cycles={sim.stats.cycles}, "
      f"IPC={sim.stats.ipc:.3f}")

# ---------------------------------------------------------------------------
# 5. the GUI views as text (Figs. 10 and 12)
# ---------------------------------------------------------------------------
sim = Simulation.from_source(SOURCE)
sim.step(8)
print("\n--- main window (Fig. 12), cycle 8 ---")
print(render_processor(sim.cpu))
sim.run()
print("\n--- statistics page (Fig. 10) ---")
print(render_statistics(sim.stats))

# ---------------------------------------------------------------------------
# 6. design-space sweeps (the experiment engine, repro.explore)
#
# Ablations like the paper's evaluation — width, cache geometry, predictor,
# optimization level — are declarative sweep specs run on a worker pool
# (workers=0 is the plain serial loop; parallel runs are bit-identical).
# See examples/design_sweep.py for the full tour, `repro-sim explore` for
# the CLI mode, and /explore/* for the server endpoints.
# ---------------------------------------------------------------------------
from repro.explore import SweepSpec, run_sweep

sweep = run_sweep(SweepSpec.from_json({
    "name": "fetch-width",
    "programs": [{"name": "sum", "source": SOURCE}],
    "axes": [{"name": "width", "path": "config.buffers.fetchWidth",
              "values": [1, 2, 4]}],
}), workers=0)
print("\n--- a 3-point sweep through the experiment engine ---")
for entry in sweep.report(metric="cycles").ranking():
    print(f"  #{entry['rank']} {entry['label']}: {entry['value']} cycles")

# ---------------------------------------------------------------------------
# 7. distributed sweeps (remote execution backends)
#
# Sweep execution is pluggable: the same spec runs on the in-process
# serial loop, the local process pool, or an HTTP fleet of sweep workers
# — with byte-identical records on every backend.  Start workers (one
# per machine/core you want to throw at the grid):
#
#     repro-sim worker --port 8046      # on each worker host
#
# then fan the sweep out over them:
#
#     repro-sim explore spec.json --backend remote \
#         --worker-url hostA:8046 --worker-url hostB:8046
#
# or programmatically:
#
#     from repro.explore import RemoteBackend
#     run = run_sweep(spec, backend=RemoteBackend(
#         ["hostA:8046", "hostB:8046"], job_timeout_s=120))
#
# Jobs are dispatched over a bounded in-flight window with per-job
# timeout and at-most-one re-dispatch; a dead worker is excluded while
# the sweep completes on the rest (`run.execution` holds the per-worker
# health rows).  Repeated-program grids are cheap everywhere: per-job
# setup (C compile, assembly) hits a content-addressed artifact cache —
# shared on disk across local pool workers, in memory per remote worker
# (size-bounded on disk: LRU GC, REPRO_ARTIFACT_MAX_BYTES override).
# See examples/design_sweep.py --backend remote for a runnable demo.
# ---------------------------------------------------------------------------

# ---------------------------------------------------------------------------
# 8. fleet orchestration (server-owned distributed sweeps, repro.fleet)
#
# The remote backend above is client-assembled: whoever runs the sweep
# must know every worker URL.  Fleet mode inverts the ownership — the
# *server* owns a worker registry, and workers announce themselves:
#
#     repro-server --port 8045                          # the frontend
#     repro-sim worker --register frontend:8045         # on each machine
#
# Workers heartbeat (POST /fleet/register, TTL-expired, flap-excluded
# when they bounce; `GET /health` shows the fleet rows), and a sweep
# submitted with `"backend": "fleet"` runs on whoever is alive — jobs
# rebalance when workers join or leave mid-sweep, records stay
# byte-identical to serial throughout:
#
#     repro-sim explore spec.json --host frontend --backend fleet --follow
#
# --follow streams live per-job events (chunked GET /explore/stream;
# SimClient.explore_stream programmatically) instead of polling.  Sweeps
# are cancellable end to end: POST /explore/cancel drains undispatched
# jobs and propagates /worker/cancel to in-flight ones, where a cancel
# token is checked inside the simulation hot loop every ~5k cycles — an
# abandoned job stops within one check interval (milliseconds) instead
# of burning its cycle budget.  Worker cache health is one poll away on
# GET /worker/status.  See examples/design_sweep.py --backend fleet for
# a runnable two-worker demo against a locally spawned frontend.
# ---------------------------------------------------------------------------

# ---------------------------------------------------------------------------
# 8b. the artifact data plane (fetch-by-hash, protocol v8)
#
# Fleet dispatch does not ship program sources at all.  At dispatch time
# the frontend registers each job's program in its content-addressed
# artifact store and sends a *reference* instead — SHA-256 keys over the
# source, every layout-relevant parameter, and the toolchain fingerprint:
#
#     {"artifactRef": {"sourceKey": "...", "compileKey": "...",
#                      "fetchFrom": ["frontend:8045", "peerA:8046"]}}
#
# A worker resolves the reference against its own cache first, then
# fetches by hash (GET /artifact/<key>) from each fetchFrom source in
# order.  The frontend compiles each unique program at most once and
# every other worker fetches the compiled bytes, so a cold fleet pays
# one compile per unique source instead of one per worker (>= 3x cold
# setup reduction pinned in benchmarks/BENCH_dataplane.json).  Three
# properties keep this safe and fast:
#
#   * warm-push prefetch — before a worker's first job, the backend
#     announces the sweep's whole key-set (POST /artifact/prefetch), so
#     transfers overlap the first jobs' simulation time;
#   * peer hinting — workers advertise their compiled-key set with each
#     heartbeat, and the fleet backend appends up to two warmed peers to
#     fetchFrom, taking pressure off the frontend;
#   * graceful degrade — a worker that cannot resolve a reference
#     answers `artifactUnavailable` and the job is re-sent with the
#     program inline; content addressing makes a fetched artifact
#     byte-identical to the compile it replaced, so records never move.
#
# REPRO_ARTIFACT_FETCH=0 is the kill switch: dispatches go out inline
# and no fetch is ever attempted.  Fetch health is visible per worker
# (GET /worker/status "fetch" stats) and fleet-wide on /metrics
# (repro_artifact_fetch_total / repro_artifact_fetch_seconds).
# ---------------------------------------------------------------------------
from repro.explore.artifacts import ArtifactCache

store = ArtifactCache()
ref = store.register_program({"name": "dot", "c": C_SOURCE,
                              "entry": "main"}, 1)
artifact = store.serve_artifact(ref["compileKey"])   # compiles on demand
print(f"\nartifact data plane: compileKey={ref['compileKey'][:12]}... -> "
      f"{artifact['kind']} ({len(artifact['assembly'])} bytes, "
      f"compiled once, fetched everywhere)")

# ---------------------------------------------------------------------------
# 9. repro-lint (the invariant checker, repro.analyze)
#
# Several of the guarantees above are *conventions*, not things the type
# system enforces: records must be byte-identical across backends, every
# save_state component must bump its dirty version so snapshot caches
# notice mutations, shared fields in the threaded modules must only be
# touched under their lock, and every protocol route needs a client
# wrapper plus a test.  `repro-sim lint` parses src/repro with the ast
# module and machine-checks all four families:
#
#   SC001/SC002  state contracts   save_state <-> restore_state pairing;
#                                  mutators of persisted attrs bump the
#                                  version counter (stale-cache guard)
#   LD001/LD002  lock discipline   lock-guarded attrs never touched
#                                  outside the lock; no lock-order
#                                  inversions or self-deadlocks
#   DT001-DT005  determinism       no wall clocks, unseeded random,
#                                  id()-keyed maps, set-iteration
#                                  ordering, or non-REPRO_* env reads
#                                  anywhere a sweep job can execute
#                                  (the byte-identical-records bar)
#   PC001-PC003  protocol surface  every route has a SimClient wrapper
#                                  + a test; PROTOCOL_VERSION bumps
#                                  when the route set changes
#
# Verified-harmless findings live in lint-baseline.json with an inline
# justification; anything new fails CI (and tier-1, via the self-check
# test).  To accept a finding intentionally, run
# `repro-sim lint --update-baseline` and add a justification string to
# the new entry.  `--format json` emits a stable machine-readable report.
# ---------------------------------------------------------------------------
from repro.analyze import LintEngine, Project
from repro.analyze.baseline import Baseline
from repro.analyze.project import discover_root

root = discover_root()
baseline = Baseline.load(root / "lint-baseline.json")
new, baselined = baseline.split(
    LintEngine(Project.load(root), baseline=baseline).run())
print(f"\nrepro-lint: {len(new)} new findings, "
      f"{len(baselined)} baselined (verified harmless)")
assert not new, [f.render() for f in new]

# ---------------------------------------------------------------------------
# 10. observability (the telemetry plane, repro.obs — protocol v7)
#
# Everything the server does is observable without touching the
# simulated machine:
#
#   * GET /metrics scrapes a process-wide registry — request counters,
#     session/queue/fleet gauges, wall-time histograms with shared
#     nearest-rank p50/p90 summaries.  Counters increment lock-free
#     (per-thread shards, merged on scrape) and are monotone for the
#     process lifetime; `curl ':8045/metrics?format=prometheus'` serves
#     the same scrape in Prometheus text exposition format.
#   * Every sweep (unless submitted with "trace": false) collects a span
#     tree: one root sweep span, queue wait, and per-job spans wrapping
#     the worker-side compile/simulate/record phases — on the serial
#     and fleet backends alike (the local process pool records the job
#     envelopes only; trace context rides in job payloads, and span
#     times never enter records, which stay byte-identical).
#     GET /trace/<sweepId> returns it; `repro-sim explore --trace-out
#     FILE` exports it as NDJSON; --follow prints a live top-style
#     summary line per finished job.
#   * The overhead contract is pinned by benchmarks/BENCH_obs.json:
#     uninstrumented Simulation.run() throughput is unchanged with the
#     telemetry plane compiled in (no hooks on the hot loop), one
#     counter bump costs well under a microsecond, and the sampled
#     profilers below attach from *outside* the CPU — detached, they
#     cost nothing, not even a branch.
# ---------------------------------------------------------------------------
from repro.server.protocol import Api
from repro.viz import render_span_waterfall

api = Api()
submitted = api.handle("POST", "/explore/submit",
                       {"spec": {"name": "obs-tour",
                                 "programs": [{"name": "sum",
                                               "source": SOURCE}],
                                 "axes": [{"name": "width",
                                           "path": "config.buffers.fetchWidth",
                                           "values": [1, 2]}]},
                        "workers": 0})
while api.handle("POST", "/explore/status",
                 {"sweepId": submitted["sweepId"]})["state"] \
        not in ("done", "failed", "cancelled"):
    import time
    time.sleep(0.02)
trace = api.handle("GET", f"/trace/{submitted['sweepId']}", None)
print("\n--- one sweep = one span tree (GET /trace/<sweepId>) ---")
print(render_span_waterfall(trace["spans"]), end="")
scrape = api.handle("GET", "/metrics", None)["metrics"]
jobs = next(f for f in scrape if f["name"] == "repro_sweep_jobs_total")
print(f"/metrics: {len(scrape)} families; sweep jobs by backend/kind: "
      + ", ".join(f"{cell['labels']['backend']}/{cell['labels']['kind']}"
                  f"={cell['value']}" for cell in jobs["values"]))
api.close()

# Hot-loop profiling is opt-in and sampled: PipelineProfiler wraps the
# six per-cycle stage methods of one Cpu *instance* (interpreter path),
# timing every Nth call; ResidencyProfiler slices a trace-tier run into
# chunks and reports when execution migrated into compiled superblocks.
from repro.obs.profile import PipelineProfiler

sim = Simulation.from_source(SOURCE)
sim.cpu._trace_wanted = False          # profile the interpreter path
with PipelineProfiler(sim.cpu, stride=16) as profiler:
    sim.run()
report = profiler.report()
top = max(report["stages"], key=lambda stage: stage["share"])
print(f"sampled pipeline profile (stride {report['stride']}): "
      f"hottest stage '{top['stage']}' at {top['share']:.0%} "
      f"of sampled time")

# ---------------------------------------------------------------------------
# 11. the result warehouse (cross-run observability, protocol v9)
#
# One sweep answers "which config wins today"; the warehouse answers the
# longitudinal questions: how does this week's frontier compare with
# last week's, and which config regressed between two runs.  A server's
# warehouse ingests every finished sweep automatically (query it over
# GET /warehouse/query|pareto|regressions, pin a baseline with
# POST /warehouse/baseline); `repro-sim warehouse` is the same console
# against a local append-only store file.  Everything it returns is
# canonically ordered, so query/frontier/diff payloads are
# byte-deterministic and independent of ingest order.
# ---------------------------------------------------------------------------
import copy

from repro.explore import ResultWarehouse
from repro.viz import render_pareto_frontier, render_regression_report

warehouse = ResultWarehouse()           # ResultWarehouse("wh.jsonl") persists
warehouse.ingest(sweep.records, "week0", name="fetch-width")
warehouse.set_baseline("week0")

# a later run of the same grid where one config got slower (say a
# scheduling change landed): same labels, one planted regression
nightly = copy.deepcopy(sweep.records)
nightly[0]["stats"]["cycles"] = int(nightly[0]["stats"]["cycles"] * 1.3)
ack = warehouse.ingest(nightly, "week1", name="fetch-width-nightly")
print("\n--- regression sentinel (flagged at ingest: "
      f"{ack['regressions']} config(s)) ---")
print(render_regression_report(warehouse.regressions()), end="")

print("\n--- cross-run Pareto frontier, cycles vs energy ---")
print(render_pareto_frontier(warehouse.pareto(x="cycles", y="energy")),
      end="")
