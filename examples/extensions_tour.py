#!/usr/bin/env python3
"""Tour of the implemented future-work extensions (paper Sec. V).

The paper lists directions for future development; this reproduction
implements four of them, and this script demonstrates each:

1. pipelined functional units,
2. a deeper cache hierarchy (L2),
3. breakpoints and watches,
4. chip area / power estimation.
"""

from repro import CacheConfig, CpuConfig, FuSpec, MemoryLocation, Simulation
from repro.sim.debugger import DebugSession
from repro.sim.energy import estimate_area, estimate_energy, render_power_report

# ---------------------------------------------------------------------------
# 1. pipelined functional units
# ---------------------------------------------------------------------------
print("=== 1. pipelined FP unit ===")
FP_BURST = """
    li   t0, 0x40400000     # 3.0f
    fmv.w.x fa0, t0
""" + "\n".join(f"    fmul.s fa{i}, fa0, fa0" for i in range(1, 8)) \
    + "\n    ebreak"

for pipelined in (False, True):
    config = CpuConfig()
    config.fus = [FuSpec("FX", "FX1"),
                  FuSpec("FP", "FP1", pipelined=pipelined),
                  FuSpec("LS", "LS1"), FuSpec("Branch", "BR1"),
                  FuSpec("Memory", "MEM")]
    sim = Simulation.from_source(FP_BURST, config=config)
    sim.run()
    kind = "pipelined    " if pipelined else "non-pipelined"
    print(f"  {kind}: {sim.cpu.cycle} cycles for 7 independent fmul.s")

# ---------------------------------------------------------------------------
# 2. L2 cache
# ---------------------------------------------------------------------------
print("\n=== 2. L2 cache ===")
WALK = """
    la   t0, buf
    li   t5, 3
p:  li   t1, 0
    li   t2, 256
w:  slli t3, t1, 2
    add  t3, t3, t0
    lw   t4, 0(t3)
    addi t1, t1, 1
    blt  t1, t2, w
    addi t5, t5, -1
    bnez t5, p
    ebreak
"""
for with_l2 in (False, True):
    config = CpuConfig()
    config.cache = CacheConfig(line_count=8, line_size=16, associativity=2,
                               line_replacement_delay=2)
    if with_l2:
        config.l2_cache = CacheConfig(line_count=128, line_size=16,
                                      associativity=4, access_delay=4)
    config.memory.load_latency = 40
    buf = MemoryLocation(name="buf", dtype="word", values=list(range(256)))
    sim = Simulation.from_source(WALK, config=config, memory_locations=[buf])
    sim.run()
    label = "L1 + L2" if with_l2 else "L1 only"
    extra = ""
    if with_l2:
        extra = f" (L2 hit ratio {sim.cpu.l2_cache.stats.hit_ratio:.2f})"
    print(f"  {label}: {sim.cpu.cycle} cycles{extra}")

# ---------------------------------------------------------------------------
# 3. breakpoints and watches
# ---------------------------------------------------------------------------
print("\n=== 3. debugger ===")
PROGRAM = """
main:
    li   s0, 0
    li   s1, 4
loop:
    addi s0, s0, 1
    sw   s0, 0(sp)
    blt  s0, s1, loop
done:
    ebreak
"""
dbg = DebugSession(Simulation.from_source(PROGRAM, entry="main"))
dbg.add_breakpoint("loop")
dbg.watch_register("s0")
for _ in range(4):
    event = dbg.run()
    print(f"  stop: {event}")
    if event.kind == "halt":
        break

# ---------------------------------------------------------------------------
# 4. area / power estimation
# ---------------------------------------------------------------------------
print("\n=== 4. area / power model ===")
print(f"  {'arch':<10} {'area [kGE]':>11} {'energy [nJ]':>12} "
      f"{'avg power [mW]':>15}")
SOURCE = "\n".join(f"    addi x{5 + (i % 8)}, x{5 + (i % 8)}, 1"
                   for i in range(64)) + "\n    ebreak"
for preset in ("scalar", "default", "wide"):
    config = CpuConfig.preset(preset)
    sim = Simulation.from_source(SOURCE, config=config)
    sim.run()
    area = estimate_area(config).total
    energy = estimate_energy(sim.cpu)
    print(f"  {preset:<10} {area:>11.1f} {energy.total_pj / 1000:>12.2f} "
          f"{energy.average_power_w * 1000:>15.3f}")

print("\nfull power report for the default run:")
sim = Simulation.from_source(SOURCE)
sim.run()
print(render_power_report(sim.cpu))
