#!/usr/bin/env python3
"""HW/SW co-design study — the paper's motivating HPC question (Sec. I-B):

    "Given an algorithm, how should one design a processor and optimize the
     code for the best performance?"

Two experiments on a 16x16 matrix column-sum kernel:

1. **Software**: row-major vs column-major traversal of the same data on
   the same cache — the classic locality lesson, visible in the cache hit
   rate and total cycles.
2. **Hardware**: the cache-friendly version is then run across processor
   variants (scalar in-order-ish, default 2-wide, wide 4-wide; cache on
   and off) — the architecture-exploration lesson.
"""

from repro import CacheConfig, CpuConfig, MemoryLocation, Simulation
from repro.compiler import compile_c

N = 16

KERNEL = """
extern int matrix[256];

int sum_row_major(void) {
    /* walk the matrix row by row: consecutive addresses, cache friendly */
    int s = 0;
    for (int i = 0; i < 16; i++)
        for (int j = 0; j < 16; j++)
            s += matrix[i * 16 + j];
    return s;
}

int sum_col_major(void) {
    /* identical instruction count, but stride 16*4 B: every access misses
       a small cache whose lines hold 4 consecutive words */
    int s = 0;
    for (int j = 0; j < 16; j++)
        for (int i = 0; i < 16; i++)
            s += matrix[i * 16 + j];
    return s;
}

int main_row(void) { return sum_row_major(); }
int main_col(void) { return sum_col_major(); }
"""


def run(entry: str, config: CpuConfig):
    compiled = compile_c(KERNEL, 2)
    assert compiled.success, compiled.errors
    matrix = MemoryLocation(name="matrix", dtype="word", alignment=16,
                            values=[(i * 7 + 3) % 101 for i in range(N * N)])
    sim = Simulation.from_source(compiled.assembly, config=config,
                                 entry=entry, memory_locations=[matrix])
    sim.run()
    return sim


def main() -> None:
    expected = sum((i * 7 + 3) % 101 for i in range(N * N))

    # -- experiment 1: access order vs a small cache -----------------------
    config = CpuConfig()
    config.cache = CacheConfig(line_count=8, line_size=16, associativity=2,
                               replacement_policy="LRU")
    print("=== software experiment: traversal order (small 8x16B cache) ===")
    print(f"{'variant':<12} {'result':>7} {'cycles':>8} {'cache hit':>10} "
          f"{'IPC':>6}")
    for entry, label in (("main_row", "row-major"), ("main_col", "col-major")):
        sim = run(entry, config)
        result = sim.register_value("a0")
        flag = "OK" if result == expected else "WRONG"
        print(f"{label:<12} {result:>7} {sim.stats.cycles:>8} "
              f"{sim.stats.cache_hit_rate:>10.3f} {sim.stats.ipc:>6.3f}  "
              f"{flag}")

    # -- experiment 2: architecture sweep on the friendly kernel ------------
    print("\n=== hardware experiment: architecture sweep (row-major) ===")
    print(f"{'architecture':<22} {'cycles':>8} {'IPC':>6} {'wall us':>9}")
    variants = []
    for preset in ("scalar", "default", "wide"):
        variants.append((preset, CpuConfig.preset(preset)))
    nocache = CpuConfig()
    nocache.name = "default, no cache"
    nocache.cache.enabled = False
    variants.append((nocache.name, nocache))
    for label, config in variants:
        sim = run("main_row", config)
        assert sim.register_value("a0") == expected
        print(f"{label:<22} {sim.stats.cycles:>8} {sim.stats.ipc:>6.3f} "
              f"{sim.stats.wall_time_s * 1e6:>9.3f}")

    print("\ntakeaway: the same C code spans a wide performance range — "
          "locality first, then width.")


if __name__ == "__main__":
    main()
