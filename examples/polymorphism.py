#!/usr/bin/env python3
"""Polymorphism (dynamic dispatch) — the third complex program the paper's
test suite exercises (Sec. IV).

Virtual dispatch is implemented the way a C++ compiler would: each object
carries a pointer to a vtable, the vtable holds function addresses (``.word
method_label`` entries resolved by the assembler's second pass), and the
call site loads the method address and uses ``jalr`` — an *indirect* jump,
which is exactly what makes dynamic dispatch expensive on a superscalar
core (the BTB has to predict the target).

Two "classes" implement the same interface:
    Square.area(side)   = side * side
    Triangle.area(side) = side * side / 2
A heterogeneous array of objects is traversed and each object's method is
dispatched dynamically; afterwards the BTB statistics show the indirect
branch predictor at work.
"""

from repro import Simulation

POLYMORPHISM_ASM = """
# --- vtables: tables of method addresses (filled by the assembler) -------
    .data
    .align 2
square_vtable:
    .word square_area
triangle_vtable:
    .word triangle_area

# objects: [vtable_ptr, side] pairs; 6 objects, alternating classes
objects:
    .word square_vtable,   3
    .word triangle_vtable, 4
    .word square_vtable,   5
    .word triangle_vtable, 6
    .word square_vtable,   7
    .word triangle_vtable, 8

    .text
main:
    li   s0, 0          # total area accumulator
    la   s1, objects    # object cursor
    li   s2, 6          # object count
dispatch_loop:
    lw   t0, 0(s1)      # t0 = vtable pointer
    lw   a0, 4(s1)      # a0 = side (the method argument)
    lw   t1, 0(t0)      # t1 = method address from the vtable (slot 0)
    jalr ra, t1, 0      # virtual call
    add  s0, s0, a0     # accumulate the returned area
    addi s1, s1, 8      # next object
    addi s2, s2, -1
    bnez s2, dispatch_loop
    mv   a0, s0
    ebreak

# --- Square::area -----------------------------------------------------
square_area:
    mul  a0, a0, a0
    ret

# --- Triangle::area ---------------------------------------------------
triangle_area:
    mul  a0, a0, a0
    srai a0, a0, 1
    ret
"""

EXPECTED = (3 * 3) + (4 * 4 // 2) + (5 * 5) + (6 * 6 // 2) + (7 * 7) \
    + (8 * 8 // 2)


def main() -> None:
    sim = Simulation.from_source(POLYMORPHISM_ASM, entry="main")
    sim.run()
    total = sim.register_value("a0")
    print(f"total area = {total} (expected {EXPECTED}): "
          f"{'OK' if total == EXPECTED else 'WRONG'}")

    stats = sim.stats.to_json()
    bp = stats["branchPredictor"]
    print(f"\nindirect dispatch cost on a superscalar core:")
    print(f"  cycles            : {stats['cycles']}")
    print(f"  IPC               : {stats['ipc']:.3f}")
    print(f"  branch accuracy   : {bp['accuracy'] * 100:.1f} % "
          f"({bp['correct']}/{bp['predictions']})")
    print(f"  BTB hits          : {bp['btbHits']}/{bp['btbLookups']}")
    print(f"  pipeline flushes  : {stats['robFlushes']} "
          f"(every mispredicted jalr flushes the pipeline)")


if __name__ == "__main__":
    main()
