#!/usr/bin/env python3
"""Array sorting with quicksort — one of the paper's own test programs.

The C version is compiled at all four optimization levels and simulated on
the default superscalar architecture; the paper's teaching point is how the
same algorithm's runtime metrics change with code quality.  The data array
is supplied through the Memory-settings window mechanism (Fig. 8) and
referenced from C via ``extern``.
"""

from repro import CpuConfig, MemoryLocation, Simulation
from repro.compiler import compile_c

QUICKSORT_C = """
extern int data[16];

void quicksort(int *a, int lo, int hi) {
    if (lo >= hi) return;
    int pivot = a[(lo + hi) / 2];
    int i = lo;
    int j = hi;
    while (i <= j) {
        while (a[i] < pivot) i++;
        while (a[j] > pivot) j--;
        if (i <= j) {
            int t = a[i];
            a[i] = a[j];
            a[j] = t;
            i++;
            j--;
        }
    }
    quicksort(a, lo, j);
    quicksort(a, i, hi);
}

int main(void) {
    quicksort(data, 0, 15);
    /* checksum: position-weighted sum proves the order, not just content */
    int check = 0;
    for (int k = 0; k < 16; k++) check += (k + 1) * data[k];
    return check;
}
"""

VALUES = [42, 7, 93, 15, 61, 2, 88, 34, 70, 11, 55, 29, 96, 4, 83, 48]
EXPECTED_SORTED = sorted(VALUES)
EXPECTED_CHECK = sum((k + 1) * v for k, v in enumerate(EXPECTED_SORTED))


def main() -> None:
    print(f"input : {VALUES}")
    print(f"expect: {EXPECTED_SORTED} (checksum {EXPECTED_CHECK})\n")

    config = CpuConfig()
    config.memory.call_stack_size = 4096  # recursion needs room at O0

    data = MemoryLocation(name="data", dtype="word", alignment=4,
                          values=VALUES)

    print(f"{'level':<6} {'checksum':>9} {'cycles':>8} {'IPC':>6} "
          f"{'branch acc':>11} {'cache hit':>10}")
    for level in range(4):
        compiled = compile_c(QUICKSORT_C, level)
        assert compiled.success, compiled.errors
        sim = Simulation.from_source(compiled.assembly, config=config,
                                     entry="main", memory_locations=[data])
        sim.run()
        check = sim.register_value("a0")
        status = "OK" if check == EXPECTED_CHECK else "WRONG"
        hit = sim.stats.cache_hit_rate
        print(f"O{level:<5} {check:>9} {sim.stats.cycles:>8} "
              f"{sim.stats.ipc:>6.3f} "
              f"{sim.stats.branch_prediction_accuracy:>10.3f} "
              f"{hit if hit is None else format(hit, '.3f'):>10}  {status}")

        # read the sorted array back out of simulated memory
        base = sim.symbol_address("data")
        result = [sim.memory_word(base + 4 * i) for i in range(16)]
        assert result == EXPECTED_SORTED, f"O{level}: array not sorted: {result}"

    print("\nsorted array verified in simulated memory for every O-level")


if __name__ == "__main__":
    main()
