#!/usr/bin/env python3
"""Full-scale reproduction of Table I (Sec. IV-A load test).

Spins up two local servers — one direct, one with the simulated-Docker
per-request overhead — and runs the paper's exact JMeter protocol against
both: 30 and 100 users, 40 interactive simulation steps per user over two
programs, 4 s ramp-up, 1 s think time, gzip on.

The full protocol takes ~45 s of wall time per scenario (think time
dominates); pass ``--quick`` for a scaled-down run (think time 50 ms,
ramp-up 0.4 s) that preserves the *shape* of the results.
"""

import argparse

from repro.server.httpd import SimServer
from repro.server.loadtest import (LoadTestConfig, format_table1,
                                   run_load_test)

#: calibrated per-request virtualization overhead for the "Docker" rows;
#: the paper observed Docker costing roughly 10 % median latency at low
#: load and much more under contention.
DOCKER_OVERHEAD_MS = 2.0


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true",
                        help="scaled-down timing (50ms think, 0.4s ramp-up)")
    parser.add_argument("--users", type=int, nargs="*", default=[30, 100])
    args = parser.parse_args()

    think = 0.05 if args.quick else 1.0
    ramp = 0.4 if args.quick else 4.0
    steps = 40

    direct = SimServer(("127.0.0.1", 0), enable_gzip=True)
    docker = SimServer(("127.0.0.1", 0), enable_gzip=True,
                       overhead_ms=DOCKER_OVERHEAD_MS)
    direct.start_background()
    docker.start_background()
    print(f"direct server on :{direct.port}, "
          f"simulated-Docker server on :{docker.port}")
    print(f"protocol: {steps} steps/user, ramp-up {ramp}s, "
          f"think time {think}s, gzip on\n")

    rows = []
    for mode, server in (("Direct", direct), ("Docker", docker)):
        for users in args.users:
            config = LoadTestConfig(users=users, steps_per_user=steps,
                                    ramp_up_s=ramp, think_time_s=think,
                                    use_gzip=True)
            result = run_load_test("127.0.0.1", server.port, config)
            row = result.row(mode)
            rows.append(row)
            print(f"  {mode} x {users} users: median "
                  f"{row['medianLatencyMs']} ms, p90 {row['p90LatencyMs']} "
                  f"ms, {row['throughputTps']} trans/s, "
                  f"{row['errors']} errors")

    print()
    print(format_table1(rows))
    print("""
paper's Table I (Intel i5 8300H laptop, real Docker):
Mode     #users  Median[ms]  90th pct[ms]  Throughput[trans/s]
Direct       30       70.66         118.0                25.96
            100      680.00        1248.9                53.61
Docker       30       77.00         283.0                24.49
            100     1135.00        2031.9                42.07

expected shape: Docker rows slower than Direct at equal load; latency grows
superlinearly from 30 to 100 users while throughput less than doubles.""")

    direct.shutdown()
    docker.shutdown()


if __name__ == "__main__":
    main()
