#!/usr/bin/env python3
"""Design-space sweeps with the experiment engine (repro.explore).

The paper's evaluation is an ablation study — issue width, cache geometry,
predictor type, optimization level.  This example declares such a study as
a JSON sweep spec, runs it on the worker pool, and reads the comparison
report: the per-run metric table, the best-config ranking, and the
pairwise speedup matrix.  The same spec file drives `repro-sim explore
spec.json` and the server's /explore endpoints.
"""

import json
import os
import sys
import tempfile

from repro.explore import (SweepSpec, load_records, ResultStore, run_sweep)

# ---------------------------------------------------------------------------
# 1. declare the study: one C workload x (width x cache-geometry) grid
# ---------------------------------------------------------------------------
C_KERNEL = """
extern int data[96];
int checksum(void) {
    int acc = 0;
    for (int r = 0; r < 6; r++)
        for (int i = 0; i < 96; i++)
            acc += data[i] * (i + r);
    return acc;
}
int main(void) { return checksum(); }
"""

SPEC_JSON = {
    "name": "width-x-cache",
    "programs": [{
        "name": "checksum",
        "c": C_KERNEL,
        "optimizeLevel": 2,
        "entry": "main",
        "memory": [{"name": "data", "dtype": "word",
                    "values": [(31 * i + 7) % 64 for i in range(96)]}],
    }],
    "axes": [
        {"name": "width", "values": [
            {"config.buffers.fetchWidth": 1,
             "config.buffers.commitWidth": 1},
            {"config.buffers.fetchWidth": 4,
             "config.buffers.commitWidth": 4,
             "config.buffers.issueWindowSize": 16}],
         "labels": ["narrow", "wide"]},
        {"name": "cache", "values": [
            {"config.cache.lineCount": 4, "config.cache.associativity": 1},
            {"config.cache.lineCount": 32, "config.cache.associativity": 4}],
         "labels": ["tiny", "big"]},
    ],
}

spec = SweepSpec.from_json(SPEC_JSON)
print(f"sweep '{spec.name}': {spec.grid_size()} design points")

# ---------------------------------------------------------------------------
# 2. run it — workers=2 uses the process pool (crash-isolated, per-job
#    timeouts); workers=0 would be the plain serial loop, with
#    bit-identical per-run statistics either way
# ---------------------------------------------------------------------------
records_path = os.path.join(tempfile.mkdtemp(prefix="repro-sweep-"),
                            "records.jsonl")
with ResultStore(records_path) as store:
    run = run_sweep(spec, workers=2, store=store)
print(f"ran {len(run.records)} jobs on {run.workers} workers "
      f"in {run.elapsed_s:.2f}s "
      f"({len(run.failures)} failures)")

# ---------------------------------------------------------------------------
# 3. the comparison report: table, ranking, pairwise speedups
# ---------------------------------------------------------------------------
report = run.report(metric="cycles")
print()
print(report.render_text())

best = report.best()
print(f"best configuration: {best['label']} "
      f"at {best['stats']['cycles']} cycles")

# energy tells a different story than raw speed:
energy_ranking = report.ranking(metric="energy")
print(f"most energy-frugal: {energy_ranking[0]['label']}")

# ---------------------------------------------------------------------------
# 4. records are plain JSONL on disk — greppable, reloadable, diffable
# ---------------------------------------------------------------------------
reloaded = load_records(records_path)
assert reloaded == run.records
print(f"\n{len(reloaded)} records round-tripped through {records_path}")
print("one record's stats keys:",
      ", ".join(sorted(reloaded[0]["stats"])[:8]), "...")

# the same spec drives the CLI and the server:
#   repro-sim explore spec.json --workers 4 --metric ipc
#   POST /explore/submit {"spec": {...}} -> /explore/status -> /explore/result
print("\nspec JSON for the CLI/server (excerpt):")
print(json.dumps(spec.to_json(), indent=2)[:400], "...")


# ---------------------------------------------------------------------------
# 5. distributed sweeps — run me with `--backend remote` to fan the same
#    spec out over a locally spawned fleet of sweep workers (in production
#    each worker is `repro-sim worker` on its own machine).  Records are
#    byte-identical to the pool run above: the backend is invisible in
#    the results, by design.
# ---------------------------------------------------------------------------
def spawn_server(*args) -> tuple:
    """Start ``repro-sim worker``/``repro-server`` and parse its port."""
    import re
    import subprocess
    import sys as _sys

    process = subprocess.Popen(
        [_sys.executable, "-m", *args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    for _ in range(8):                     # interpreter warnings may lead
        line = process.stdout.readline()
        found = re.search(r"listening on http://127\.0\.0\.1:(\d+)", line)
        if found:
            return process, f"127.0.0.1:{found.group(1)}"
    process.terminate()
    process.wait(timeout=10)
    raise RuntimeError(f"{args[0]} did not start")


def run_remote_fleet() -> None:
    from repro.explore import RemoteBackend

    fleet = []
    try:
        for _ in range(2):                 # incremental: a failed second
            fleet.append(spawn_server(     # spawn still cleans up the first
                "repro.cli.main", "worker", "--port", "0"))
        urls = [url for _process, url in fleet]
        print(f"\nspawned worker fleet: {', '.join(urls)}")
        remote_run = run_sweep(spec, backend=RemoteBackend(
            urls, job_timeout_s=120.0))
    finally:
        for process, _url in fleet:
            process.terminate()
            process.wait(timeout=10)
    assert remote_run.records == run.records, \
        "remote records must be byte-identical to the pool run"
    print(f"remote fleet ran {len(remote_run.records)} jobs in "
          f"{remote_run.elapsed_s:.2f}s — records identical to the "
          f"local pool run")
    for worker_row in remote_run.execution["remoteWorkers"]:
        print(f"  worker {worker_row['url']}: "
              f"{worker_row['ok']} ok, {worker_row['failures']} failures")


# ---------------------------------------------------------------------------
# 6. fleet orchestration — run me with `--backend fleet` for the
#    server-owned version: workers *register themselves* with a frontend
#    (`repro-sim worker --register HOST:PORT`, periodic heartbeats), the
#    frontend schedules `"backend": "fleet"` sweeps onto whoever is
#    currently alive, streams per-job progress, and can cancel in-flight
#    jobs cooperatively.  No --worker-url bookkeeping on the client.
# ---------------------------------------------------------------------------
def run_server_fleet() -> None:
    import time

    from repro.server.client import SimClient

    frontend = None
    workers = []
    try:
        frontend, frontend_url = spawn_server(
            "repro.server.httpd", "--port", "0", "--quiet")
        for _ in range(2):                 # incremental: a failed second
            workers.append(spawn_server(   # spawn still cleans up the first
                "repro.cli.main", "worker", "--port", "0",
                "--register", frontend_url, "--quiet"))
        host, port = frontend_url.split(":")
        client = SimClient(host, int(port))
        try:
            # wait for both workers' first heartbeat to land
            for _ in range(100):
                if client.health()["fleet"]["live"] >= 2:
                    break
                time.sleep(0.1)
            fleet_rows = client.health()["fleet"]
            print(f"\nfleet frontend {frontend_url}: "
                  f"{fleet_rows['live']} workers registered")
            submitted = client.explore_submit(spec.to_json(),
                                              backend="fleet")
            sweep_id = submitted["sweepId"]
            finishes = 0
            for event in client.explore_stream(sweep_id):
                if event["event"] == "finish":
                    finishes += 1
                    print(f"  [{event['job']}] {event['label']} "
                          f"{event['kind']} on {event['worker']}")
            result = client.explore_result(sweep_id)
            assert result["success"], result.get("error")
            assert result["records"] == run.records, \
                "fleet records must be byte-identical to the pool run"
            print(f"fleet ran {len(result['records'])} jobs "
                  f"({finishes} streamed finish events) — records "
                  f"identical to the local pool run")
        finally:
            client.close()
    finally:
        for process in ([frontend] if frontend else []) \
                + [p for p, _url in workers]:
            process.terminate()
            process.wait(timeout=10)


# ---------------------------------------------------------------------------
# 6. the cross-run result warehouse — run me with `--warehouse` to feed
#    the run above (plus a synthetic "nightly" rerun with one planted
#    slowdown) into repro.explore.ResultWarehouse: bulk import, a pinned
#    baseline, the regression sentinel, and a cross-run Pareto frontier.
#    The CLI equivalent against the same store file:
#        repro-sim warehouse ingest records.jsonl --store wh.jsonl
#        repro-sim warehouse baseline <sweep-id> --store wh.jsonl
#        repro-sim warehouse diff --store wh.jsonl     # exit 1 on flags
# ---------------------------------------------------------------------------
def run_warehouse_tour() -> None:
    import copy

    from repro.explore import ResultWarehouse
    from repro.viz import render_pareto_frontier, render_regression_report

    store_path = os.path.join(os.path.dirname(records_path),
                              "warehouse.jsonl")
    with ResultWarehouse(store_path) as warehouse:
        ack = warehouse.import_file(records_path, name="width-x-cache")
        warehouse.set_baseline(ack["sweepId"])
        print(f"\nimported {ack['ingested']} records as baseline sweep "
              f"{ack['sweepId']} (content-hash id: re-importing the "
              f"same file is a no-op)")

        nightly = copy.deepcopy(run.records)
        nightly[0]["stats"]["cycles"] = \
            int(nightly[0]["stats"]["cycles"] * 1.25)
        ack = warehouse.ingest(nightly, "nightly", name="nightly")
        print(f"nightly rerun ingested: {ack['regressions']} config(s) "
              f"flagged by the sentinel at ingest time\n")
        print(render_regression_report(warehouse.regressions()), end="")
        print()
        print(render_pareto_frontier(
            warehouse.pareto(x="cycles", y="energy")), end="")
    # the store file (including the baseline pin) survives reopening:
    with ResultWarehouse(store_path) as warehouse:
        assert warehouse.baseline() is not None
        print(f"\nwarehouse persisted to {store_path} "
              f"({len(warehouse)} rows, baseline pin included)")


if "--warehouse" in sys.argv[1:]:
    run_warehouse_tour()

if "--backend" in sys.argv[1:]:
    backend_name = sys.argv[sys.argv.index("--backend") + 1:][:1]
    if backend_name == ["remote"]:
        run_remote_fleet()
    elif backend_name == ["fleet"]:
        run_server_fleet()
    else:
        raise SystemExit(f"unknown --backend {backend_name}; this demo "
                         f"adds 'remote' (client-assembled fleet) and "
                         f"'fleet' (server-owned registry) — the "
                         f"sections above are the serial/process tour)")
