#!/usr/bin/env python3
"""Design-space sweeps with the experiment engine (repro.explore).

The paper's evaluation is an ablation study — issue width, cache geometry,
predictor type, optimization level.  This example declares such a study as
a JSON sweep spec, runs it on the worker pool, and reads the comparison
report: the per-run metric table, the best-config ranking, and the
pairwise speedup matrix.  The same spec file drives `repro-sim explore
spec.json` and the server's /explore endpoints.
"""

import json
import os
import sys
import tempfile

from repro.explore import (SweepSpec, load_records, ResultStore, run_sweep)

# ---------------------------------------------------------------------------
# 1. declare the study: one C workload x (width x cache-geometry) grid
# ---------------------------------------------------------------------------
C_KERNEL = """
extern int data[96];
int checksum(void) {
    int acc = 0;
    for (int r = 0; r < 6; r++)
        for (int i = 0; i < 96; i++)
            acc += data[i] * (i + r);
    return acc;
}
int main(void) { return checksum(); }
"""

SPEC_JSON = {
    "name": "width-x-cache",
    "programs": [{
        "name": "checksum",
        "c": C_KERNEL,
        "optimizeLevel": 2,
        "entry": "main",
        "memory": [{"name": "data", "dtype": "word",
                    "values": [(31 * i + 7) % 64 for i in range(96)]}],
    }],
    "axes": [
        {"name": "width", "values": [
            {"config.buffers.fetchWidth": 1,
             "config.buffers.commitWidth": 1},
            {"config.buffers.fetchWidth": 4,
             "config.buffers.commitWidth": 4,
             "config.buffers.issueWindowSize": 16}],
         "labels": ["narrow", "wide"]},
        {"name": "cache", "values": [
            {"config.cache.lineCount": 4, "config.cache.associativity": 1},
            {"config.cache.lineCount": 32, "config.cache.associativity": 4}],
         "labels": ["tiny", "big"]},
    ],
}

spec = SweepSpec.from_json(SPEC_JSON)
print(f"sweep '{spec.name}': {spec.grid_size()} design points")

# ---------------------------------------------------------------------------
# 2. run it — workers=2 uses the process pool (crash-isolated, per-job
#    timeouts); workers=0 would be the plain serial loop, with
#    bit-identical per-run statistics either way
# ---------------------------------------------------------------------------
records_path = os.path.join(tempfile.mkdtemp(prefix="repro-sweep-"),
                            "records.jsonl")
with ResultStore(records_path) as store:
    run = run_sweep(spec, workers=2, store=store)
print(f"ran {len(run.records)} jobs on {run.workers} workers "
      f"in {run.elapsed_s:.2f}s "
      f"({len(run.failures)} failures)")

# ---------------------------------------------------------------------------
# 3. the comparison report: table, ranking, pairwise speedups
# ---------------------------------------------------------------------------
report = run.report(metric="cycles")
print()
print(report.render_text())

best = report.best()
print(f"best configuration: {best['label']} "
      f"at {best['stats']['cycles']} cycles")

# energy tells a different story than raw speed:
energy_ranking = report.ranking(metric="energy")
print(f"most energy-frugal: {energy_ranking[0]['label']}")

# ---------------------------------------------------------------------------
# 4. records are plain JSONL on disk — greppable, reloadable, diffable
# ---------------------------------------------------------------------------
reloaded = load_records(records_path)
assert reloaded == run.records
print(f"\n{len(reloaded)} records round-tripped through {records_path}")
print("one record's stats keys:",
      ", ".join(sorted(reloaded[0]["stats"])[:8]), "...")

# the same spec drives the CLI and the server:
#   repro-sim explore spec.json --workers 4 --metric ipc
#   POST /explore/submit {"spec": {...}} -> /explore/status -> /explore/result
print("\nspec JSON for the CLI/server (excerpt):")
print(json.dumps(spec.to_json(), indent=2)[:400], "...")


# ---------------------------------------------------------------------------
# 5. distributed sweeps — run me with `--backend remote` to fan the same
#    spec out over a locally spawned fleet of sweep workers (in production
#    each worker is `repro-sim worker` on its own machine).  Records are
#    byte-identical to the pool run above: the backend is invisible in
#    the results, by design.
# ---------------------------------------------------------------------------
def run_remote_fleet() -> None:
    import re
    import subprocess
    import sys as _sys

    from repro.explore import RemoteBackend

    def spawn_worker() -> tuple:
        process = subprocess.Popen(
            [_sys.executable, "-m", "repro.cli.main", "worker",
             "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        for _ in range(8):                 # interpreter warnings may lead
            line = process.stdout.readline()
            found = re.search(r"listening on http://127\.0\.0\.1:(\d+)",
                              line)
            if found:
                return process, f"127.0.0.1:{found.group(1)}"
        process.terminate()
        process.wait(timeout=10)
        raise RuntimeError("worker did not start")

    fleet = []
    try:
        for _ in range(2):                 # incremental: a failed second
            fleet.append(spawn_worker())   # spawn still cleans up the first
        urls = [url for _process, url in fleet]
        print(f"\nspawned worker fleet: {', '.join(urls)}")
        remote_run = run_sweep(spec, backend=RemoteBackend(
            urls, job_timeout_s=120.0))
    finally:
        for process, _url in fleet:
            process.terminate()
            process.wait(timeout=10)
    assert remote_run.records == run.records, \
        "remote records must be byte-identical to the pool run"
    print(f"remote fleet ran {len(remote_run.records)} jobs in "
          f"{remote_run.elapsed_s:.2f}s — records identical to the "
          f"local pool run")
    for worker_row in remote_run.execution["remoteWorkers"]:
        print(f"  worker {worker_row['url']}: "
              f"{worker_row['ok']} ok, {worker_row['failures']} failures")


if "--backend" in sys.argv[1:]:
    backend_name = sys.argv[sys.argv.index("--backend") + 1:][:1]
    if backend_name == ["remote"]:
        run_remote_fleet()
    else:
        raise SystemExit(f"unknown --backend {backend_name}; this demo "
                         f"only adds 'remote' (the sections above are "
                         f"the serial/process tour)")
