#!/usr/bin/env python3
"""Working with a linked list — another of the paper's own test programs.

The C subset has no structs, so the list is built the way systems courses
often model it anyway: parallel arrays plus an index-as-pointer convention
(`next[i]` is the index of the node after `i`, -1 terminates).  The example
builds a list in reverse, walks it, and then *reverses* it in place —
exercising pointer-style chasing, loads/stores and data-dependent branches,
which is exactly the memory behaviour the paper's GUI teaches.
"""

from repro import CpuConfig, Simulation
from repro.compiler import compile_c

LINKED_LIST_C = """
int values[10];
int next_idx[10];
int head;

void build(int n) {
    head = -1;
    for (int i = 0; i < n; i++) {
        values[i] = i * i;
        next_idx[i] = head;   /* push front: list ends up reversed */
        head = i;
    }
}

int walk_sum(void) {
    int sum = 0;
    int node = head;
    while (node >= 0) {
        sum += values[node];
        node = next_idx[node];
    }
    return sum;
}

void reverse(void) {
    int prev = -1;
    int node = head;
    while (node >= 0) {
        int nxt = next_idx[node];
        next_idx[node] = prev;
        prev = node;
        node = nxt;
    }
    head = prev;
}

int main(void) {
    build(10);
    int before = walk_sum();
    reverse();
    int after = walk_sum();
    /* head is 0 again after reversing a push-front list */
    return before + after + head;
}
"""

EXPECTED = 2 * sum(i * i for i in range(10))  # sums are order-independent


def main() -> None:
    config = CpuConfig()
    config.memory.call_stack_size = 2048

    print(f"expected: {EXPECTED}\n")
    print(f"{'level':<6} {'result':>7} {'cycles':>8} {'IPC':>6} "
          f"{'loads':>7} {'stores':>7}")
    for level in range(4):
        compiled = compile_c(LINKED_LIST_C, level)
        assert compiled.success, compiled.errors
        sim = Simulation.from_source(compiled.assembly, config=config,
                                     entry="main")
        sim.run()
        result = sim.register_value("a0")
        mem = sim.cpu.memory.stats()
        flag = "OK" if result == EXPECTED else "WRONG"
        print(f"O{level:<5} {result:>7} {sim.stats.cycles:>8} "
              f"{sim.stats.ipc:>6.3f} {mem['loads']:>7} {mem['stores']:>7}"
              f"  {flag}")

        # verify the list structure directly in simulated memory
        head = sim.memory_word(sim.symbol_address("head"))
        assert head == 0, f"head should be 0 after reverse, got {head}"
        nxt = sim.symbol_address("next_idx")
        chain = []
        node = head
        while node >= 0 and len(chain) <= 10:
            chain.append(node)
            node = sim.memory_word(nxt + 4 * node)
        assert chain == list(range(10)), f"broken chain: {chain}"

    print("\nlist structure verified in simulated memory for every O-level")


if __name__ == "__main__":
    main()
