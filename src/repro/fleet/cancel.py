"""Cooperative cancellation primitives for fleet-orchestrated work.

A :class:`CancelToken` is the one signalling object every layer shares:
the server's ``/explore/cancel`` handler fires the sweep's token, the
execution backends stop dispatching and drain their queues, and
:meth:`repro.sim.simulation.Simulation.run` polls the token inside its
hot loop every ``cancel_stride`` cycles — so an in-flight job stops
within **one check interval** instead of burning the rest of its cycle
budget.  The simulation layer deliberately does *not* import this
module (it would invert the layering); it duck-types the token through
its ``cancelled()`` method.

A :class:`CancelRegistry` is the worker-server side of remote
cancellation: ``/worker/execute`` registers a token under the caller's
``cancelId`` before running the job, ``/worker/cancel`` fires it.  A
cancel that arrives *before* its execute request (the two race over
separate connections) is remembered in a bounded pre-cancel set, so the
job still stops on its first stride check.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional

__all__ = ["CancelToken", "CancelRegistry"]


class CancelToken:
    """Thread-safe one-shot cancellation flag with an optional reason.

    ``cancelled()`` is the only method the hot loop calls — it is a
    bound :meth:`threading.Event.is_set` lookup, cheap enough to poll
    every few thousand simulated cycles.
    """

    __slots__ = ("_event", "reason")

    def __init__(self) -> None:
        self._event = threading.Event()
        self.reason: Optional[str] = None

    def cancel(self, reason: str = "cancelled") -> None:
        """Fire the token (idempotent; the first reason wins)."""
        if not self._event.is_set():
            self.reason = reason
            self._event.set()

    def cancelled(self) -> bool:
        return self._event.is_set()


class CancelRegistry:
    """Worker-side map of in-flight cancellable jobs.

    ``create`` registers a fresh token under the remote caller's id;
    ``cancel`` fires it (or records a *pre-cancel* when the id is not
    yet registered — the cancel request can overtake the execute
    request on a separate connection).  Pre-cancels are bounded LRU so
    a misbehaving client cannot grow the set without limit.
    """

    def __init__(self, max_pre_cancelled: int = 256):
        self._lock = threading.Lock()
        self._tokens: Dict[str, CancelToken] = {}
        self._pre: "OrderedDict[str, str]" = OrderedDict()
        self.max_pre_cancelled = max_pre_cancelled

    def create(self, cancel_id: str) -> CancelToken:
        """Register (and return) the token for one job execution."""
        token = CancelToken()
        with self._lock:
            reason = self._pre.pop(cancel_id, None)
            self._tokens[cancel_id] = token
        if reason is not None:
            token.cancel(reason)
        return token

    def cancel(self, cancel_id: str, reason: str = "cancelled") -> bool:
        """Fire the token for *cancel_id*.

        Returns ``True`` when a registered job was signalled; ``False``
        records a pre-cancel for an id not (yet) executing."""
        with self._lock:
            token = self._tokens.get(cancel_id)
            if token is None:
                self._pre[cancel_id] = reason
                self._pre.move_to_end(cancel_id)
                while len(self._pre) > self.max_pre_cancelled:
                    self._pre.popitem(last=False)
                return False
        token.cancel(reason)
        return True

    def remove(self, cancel_id: str) -> None:
        """Forget a finished job's token (idempotent)."""
        with self._lock:
            self._tokens.pop(cancel_id, None)

    def active(self) -> int:
        """Number of registered (executing) cancellable jobs."""
        with self._lock:
            return len(self._tokens)
