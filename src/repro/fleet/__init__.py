"""repro.fleet — server-owned fleet orchestration.

PR 4's distributed sweeps were client-assembled: whoever ran
``repro-sim explore --backend remote`` had to know every worker URL, and
the server behind ``/explore/submit`` could only use its own serial or
process backends.  This subsystem moves fleet ownership into the server,
turning one repro-server into a sweep **frontend** for many worker
machines:

* :mod:`repro.fleet.registry` — the :class:`WorkerRegistry`: workers
  announce themselves with ``POST /fleet/register`` heartbeats (capacity
  + artifact-cache stats in the payload), expire on a TTL, re-join after
  restarts, and get flap-excluded when they bounce; the
  :class:`Heartbeater` is the worker-side loop behind
  ``repro-sim worker --register``.
* :mod:`repro.fleet.scheduler` — the :class:`FleetScheduler` /
  :class:`FleetBackend`: ``/explore/submit`` with ``"backend": "fleet"``
  runs the sweep on a server-owned remote backend built from the live
  registry, reconciling membership every poll so jobs rebalance when
  workers join or leave mid-sweep — with records byte-identical to the
  serial baseline throughout.
* :mod:`repro.fleet.cancel` — cooperative cancellation: the
  :class:`CancelToken` that ``/explore/cancel`` fires, checked inside
  the simulation hot loop every ``cancel_stride`` cycles and propagated
  to workers via ``/worker/cancel`` (:class:`CancelRegistry`), so an
  abandoned job stops within one check interval instead of burning its
  cycle budget.
"""

from repro.fleet.cancel import CancelRegistry, CancelToken
from repro.fleet.registry import (DEFAULT_TTL_S, FleetWorker, Heartbeater,
                                  WorkerRegistry)
from repro.fleet.scheduler import FleetBackend, FleetError, FleetScheduler

__all__ = [
    "CancelToken",
    "CancelRegistry",
    "WorkerRegistry",
    "FleetWorker",
    "Heartbeater",
    "DEFAULT_TTL_S",
    "FleetBackend",
    "FleetScheduler",
    "FleetError",
]
