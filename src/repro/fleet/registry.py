"""Server-owned worker registry: the fleet's membership source of truth.

Workers announce themselves with ``POST /fleet/register`` and keep the
registration alive by re-posting the same body periodically (the
heartbeat).  The registry is purely passive — it never dials a worker —
so membership is exactly "who has heartbeated recently":

* a worker whose last heartbeat is older than ``ttl_s`` **expires** and
  leaves the live set (its jobs are re-dispatched by the fleet backend's
  membership poll);
* a worker that re-registers after expiring (or after a restart) simply
  re-joins — registration is idempotent per URL, and a restart bumps the
  ``generation`` counter so operators can see it;
* a worker that keeps dropping and re-joining is **flapping**: after
  ``flap_threshold`` expiries within ``flap_window_s`` it is excluded
  from the live set for ``flap_cooldown_s`` (heartbeats are still
  accepted and tracked — exclusion is a scheduling decision, not a
  disconnect), with a human-readable reason surfaced on every health
  row.

Heartbeat payloads carry the worker's capacity and artifact-cache stats,
so one ``/health`` poll of the frontend shows the whole fleet's cache
behavior without fanning out a request per worker.

:class:`Heartbeater` is the worker-side client half: a daemon thread
that registers with a frontend and keeps heartbeating at the interval
the frontend suggests (``ttl/3``), tolerating frontend downtime.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional

from repro.explore.backend import _parse_worker_url
from repro.obs.metrics import default_registry

__all__ = ["WorkerRegistry", "FleetWorker", "Heartbeater"]

#: default heartbeat TTL; a worker missing 3+ heartbeats in a row expires
DEFAULT_TTL_S = 10.0

_HEARTBEATS = default_registry().counter(
    "repro_fleet_heartbeats_total",
    "Worker registrations/heartbeats accepted by the registry")
_EXPIRIES = default_registry().counter(
    "repro_fleet_expiries_total",
    "Workers dropped from the live set by heartbeat TTL expiry")


class FleetWorker:
    """Registry record of one fleet worker (keyed by normalized URL)."""

    __slots__ = ("url", "capacity", "registered_at", "last_seen",
                 "heartbeats", "generation", "cache_stats", "leave_times",
                 "excluded_until", "excluded_reason", "expired")

    def __init__(self, url: str, now: float):
        self.url = url
        self.capacity = 1
        self.registered_at = now
        self.last_seen = now
        self.heartbeats = 0
        #: registrations-after-expiry (a restarted worker re-joins)
        self.generation = 1
        self.cache_stats: Optional[dict] = None
        #: recent expiry timestamps (flap detection window)
        self.leave_times: List[float] = []
        self.excluded_until: Optional[float] = None
        self.excluded_reason: Optional[str] = None
        #: TTL lapsed and the drop was counted; the record lingers
        #: (invisibly) so flap history survives a quick re-join
        self.expired = False

    def to_json(self, now: float) -> dict:
        # lastHeartbeatAgeS is the staleness gauge (computed from the
        # registry's injected clock, never a render-time wall read);
        # ageS stays as a protocol-v5/v6 alias of the same value
        age = round(now - self.last_seen, 3)
        row = {"url": self.url, "capacity": self.capacity,
               "ageS": age,
               "lastHeartbeatAgeS": age,
               "heartbeats": self.heartbeats,
               "generation": self.generation,
               "excluded": self.excluded_until is not None}
        if self.excluded_reason is not None:
            row["excludedReason"] = self.excluded_reason
        if self.cache_stats is not None:
            row["cache"] = self.cache_stats
        return row


class WorkerRegistry:
    """TTL-expiring, flap-excluding registry of sweep workers.

    Parameters
    ----------
    ttl_s:
        Heartbeat time-to-live.  A worker whose last heartbeat is older
        leaves the live set on the next :meth:`expire` sweep (callers of
        :meth:`live`/:meth:`snapshot` get expiry for free).
    flap_threshold / flap_window_s / flap_cooldown_s:
        A worker that expires ``flap_threshold`` times within
        ``flap_window_s`` seconds is excluded from scheduling for
        ``flap_cooldown_s`` — a machine bouncing in and out of the fleet
        would otherwise keep stealing jobs and timing out on them.
    time_fn:
        Clock injection for tests (defaults to ``time.monotonic``).
    """

    def __init__(self, ttl_s: float = DEFAULT_TTL_S,
                 flap_threshold: int = 3, flap_window_s: float = 60.0,
                 flap_cooldown_s: float = 30.0,
                 time_fn: Callable[[], float] = time.monotonic):
        if ttl_s <= 0:
            raise ValueError("ttl_s must be positive")
        if flap_threshold < 1:
            raise ValueError("flap_threshold must be >= 1")
        self.ttl_s = ttl_s
        self.flap_threshold = flap_threshold
        self.flap_window_s = flap_window_s
        self.flap_cooldown_s = flap_cooldown_s
        self._now = time_fn
        self._lock = threading.Lock()
        self._workers: Dict[str, FleetWorker] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def normalize_url(url: str) -> str:
        host, port = _parse_worker_url(url)
        return f"{host}:{port}"

    def register(self, url: str, capacity: int = 1,
                 cache_stats: Optional[dict] = None) -> dict:
        """Register / heartbeat one worker; returns the ack payload.

        Raises :class:`ValueError` on a malformed URL or capacity — the
        protocol layer maps that to a 400.
        """
        normalized = self.normalize_url(url)
        if not isinstance(capacity, int) or isinstance(capacity, bool) \
                or capacity < 1:
            raise ValueError(f"capacity must be an integer >= 1, "
                             f"got {capacity!r}")
        now = self._now()
        with self._lock:
            worker = self._workers.get(normalized)
            if worker is None:
                worker = self._workers[normalized] = FleetWorker(normalized,
                                                                 now)
            elif worker.expired or now - worker.last_seen > self.ttl_s:
                # re-registration after silence: a restarted (or
                # recovered) worker re-joins as a new generation; count
                # the drop for flap detection unless an expire() sweep
                # already did
                if not worker.expired:
                    self._note_leave_locked(worker, now)
                worker.expired = False
                worker.generation += 1
                worker.registered_at = now
            worker.last_seen = now
            worker.heartbeats += 1
            worker.capacity = capacity
            if cache_stats is not None:
                worker.cache_stats = cache_stats
            self._refresh_exclusion_locked(worker, now)
            live = self._live_locked(now)
        _HEARTBEATS.inc()
        return {"registered": True, "url": normalized,
                "ttlS": self.ttl_s,
                "heartbeatS": round(self.ttl_s / 3.0, 3),
                "workers": len(live)}

    def forget(self, url: str) -> bool:
        """Drop a worker outright (operator action; not a flap event)."""
        with self._lock:
            return self._workers.pop(self.normalize_url(url), None) \
                is not None

    # ------------------------------------------------------------------
    def _note_leave_locked(self, worker: FleetWorker, now: float) -> None:
        window_start = now - self.flap_window_s
        worker.leave_times = [t for t in worker.leave_times
                              if t >= window_start]
        worker.leave_times.append(now)
        if len(worker.leave_times) >= self.flap_threshold:
            worker.excluded_until = now + self.flap_cooldown_s
            worker.excluded_reason = (
                f"flapping: {len(worker.leave_times)} drops in "
                f"{self.flap_window_s:g}s (cooldown "
                f"{self.flap_cooldown_s:g}s)")

    def _refresh_exclusion_locked(self, worker: FleetWorker,
                                  now: float) -> None:
        if worker.excluded_until is not None \
                and now >= worker.excluded_until:
            worker.excluded_until = None
            worker.excluded_reason = None

    def expire(self) -> List[str]:
        """Mark workers whose heartbeat TTL lapsed; returns their URLs.

        Freshly-lapsed workers are marked ``expired`` (one drop counted
        for flap detection) and become invisible — not live, not in
        snapshots — but their record lingers so flap history survives a
        quick re-join; records silent for longer than the flap window
        are deleted outright.
        """
        now = self._now()
        dropped = []
        retention = self.ttl_s + max(self.flap_window_s,
                                     self.flap_cooldown_s)
        with self._lock:
            for url, worker in list(self._workers.items()):
                age = now - worker.last_seen
                if age <= self.ttl_s:
                    continue
                if not worker.expired:
                    worker.expired = True
                    self._note_leave_locked(worker, now)
                    dropped.append(url)
                if age > retention:
                    del self._workers[url]
        if dropped:
            _EXPIRIES.inc(len(dropped))
        return dropped

    def _live_locked(self, now: float) -> List[FleetWorker]:
        live = []
        for worker in self._workers.values():
            if worker.expired or now - worker.last_seen > self.ttl_s:
                continue
            self._refresh_exclusion_locked(worker, now)
            if worker.excluded_until is not None:
                continue
            live.append(worker)
        return live

    def live(self) -> List[FleetWorker]:
        """Schedulable workers: heartbeat fresh, not flap-excluded."""
        self.expire()
        now = self._now()
        with self._lock:
            return self._live_locked(now)

    def live_urls(self) -> List[str]:
        return [worker.url for worker in self.live()]

    def capacities(self) -> Dict[str, int]:
        """URL -> advertised capacity of every live worker."""
        return {worker.url: worker.capacity for worker in self.live()}

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Fleet health payload (the ``/health`` and ``/fleet/status``
        rows): every known worker, live or excluded, with reasons."""
        self.expire()
        now = self._now()
        with self._lock:
            rows = [worker.to_json(now)
                    for worker in self._workers.values()
                    if not worker.expired]
            live = len(self._live_locked(now))
        rows.sort(key=lambda row: row["url"])
        return {"live": live, "known": len(rows), "ttlS": self.ttl_s,
                "rows": rows}

    def __len__(self) -> int:
        with self._lock:
            return sum(1 for worker in self._workers.values()
                       if not worker.expired)


class Heartbeater:
    """Worker-side registration loop (daemon thread).

    Posts ``/fleet/register`` to the frontend every ``interval_s``
    (defaulting to whatever the frontend's ack suggests), carrying the
    worker's advertised URL, capacity, and — when a ``cache_stats_fn``
    is given — its artifact-cache stats.  Frontend downtime is
    tolerated: failed posts retry on the next beat.
    """

    def __init__(self, frontend_url: str, advertise_url: str,
                 capacity: int = 1, interval_s: Optional[float] = None,
                 cache_stats_fn: Optional[Callable[[], dict]] = None):
        self.frontend_host, self.frontend_port = \
            _parse_worker_url(frontend_url)
        self.advertise_url = WorkerRegistry.normalize_url(advertise_url)
        self.capacity = capacity
        self.interval_s = interval_s
        self.cache_stats_fn = cache_stats_fn
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        #: successful registrations (visible to tests / banners)
        self.beats = 0

    def beat_once(self) -> dict:
        """One registration post (raises on transport/protocol errors)."""
        from repro.server.client import SimClient
        client = SimClient(self.frontend_host, self.frontend_port,
                           timeout=5.0)
        try:
            reply = client.fleet_register(
                self.advertise_url, capacity=self.capacity,
                cache=self.cache_stats_fn() if self.cache_stats_fn else None)
        finally:
            client.close()
        self.beats += 1
        return reply

    def _loop(self) -> None:
        interval = self.interval_s or DEFAULT_TTL_S / 3.0
        while not self._stop.is_set():
            try:
                reply = self.beat_once()
                if self.interval_s is None and reply.get("heartbeatS"):
                    interval = float(reply["heartbeatS"])
            except Exception:  # noqa: BLE001 - frontend down: retry later
                pass
            self._stop.wait(interval)

    def start(self) -> threading.Thread:
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="fleet-heartbeat")
        self._thread.start()
        return self._thread

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
