"""Fleet scheduling: server-owned sweep execution on the live registry.

:class:`FleetBackend` is a :class:`repro.explore.backend.RemoteBackend`
whose membership is **dynamic**: instead of a fixed ``--worker-url``
list assembled by the client, it snapshots the
:class:`repro.fleet.registry.WorkerRegistry` at construction and then
reconciles against it every ``poll_s`` while the sweep runs —

* a worker that **joins** (first heartbeat mid-sweep) is added and
  starts pulling pending jobs immediately;
* a worker that **leaves** (heartbeat TTL expired, or flap-excluded by
  the registry) is excluded with a reason string; its in-flight job
  either completes (the machine was alive, just late) or fails the
  transport and is re-dispatched to a survivor — the at-most-one-retry
  discipline is inherited unchanged;
* a previously-expired worker that **re-joins** (restart, network blip
  over) is readmitted and serves again.

Because membership only decides *where* jobs run — never what they
compute — fleet records stay byte-identical to the serial baseline
through any amount of mid-sweep churn (pinned by
``tests/fleet/test_scheduler.py`` and the CI ``fleet-smoke`` job).

Every dispatch carries a ``cancelId``, so a fired sweep cancel token
propagates to the owning workers via ``POST /worker/cancel`` and the
job's stride check stops it within one interval.

:class:`FleetScheduler` is the thin policy object the
:class:`repro.explore.service.ExploreManager` consults: it owns the
registry reference and the per-sweep backend parameters, and builds one
``FleetBackend`` per ``"backend": "fleet"`` sweep.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.errors import ReproError
from repro.explore.backend import RemoteBackend, _RemoteWorker
from repro.fleet.registry import WorkerRegistry

__all__ = ["FleetBackend", "FleetScheduler", "FleetError"]


class FleetError(ReproError):
    """Fleet scheduling failed for an operator-reportable reason
    (typically: no registered workers to run on)."""


class FleetBackend(RemoteBackend):
    """Registry-membered remote backend (the ``"backend": "fleet"``
    execution engine behind ``/explore/submit``).

    Parameters mirror :class:`RemoteBackend`; *registry* supplies (and
    keeps supplying) the worker set, *poll_s* is the membership
    reconciliation period, and *no_worker_grace_s* bounds how long a
    sweep whose entire fleet vanished waits for a replacement to
    register before giving up (remaining jobs report ``kind="crash"``).
    """

    name = "fleet"

    def __init__(self, registry: WorkerRegistry,
                 job_timeout_s: Optional[float] = None,
                 inflight_per_worker: int = 2,
                 fail_threshold: int = 2,
                 poll_s: float = 0.25,
                 no_worker_grace_s: float = 5.0,
                 client_factory=None,
                 artifact_store=None,
                 artifact_origin: Optional[str] = None):
        members = registry.live()
        if not members:
            raise FleetError(
                "no registered fleet workers (start workers with "
                "'repro-sim worker --register HOST:PORT' and wait for "
                "their first heartbeat)")
        super().__init__([m.url for m in members],
                         job_timeout_s=job_timeout_s,
                         inflight_per_worker=inflight_per_worker,
                         fail_threshold=fail_threshold,
                         client_factory=client_factory,
                         cancel_jobs_on_workers=True,
                         artifact_store=artifact_store,
                         artifact_origin=artifact_origin)
        #: compile key -> worker URLs advertising it (heartbeat cache
        #: stats); snapshotted once per run, used for peer fetch hints
        self._peer_sources: dict = {}
        self.registry = registry
        self.poll_s = poll_s
        self.no_worker_grace_s = no_worker_grace_s
        self._next_poll = 0.0
        self._idle_since: Optional[float] = None
        #: registry generation last seen per URL — a *bumped* generation
        #: means the worker re-registered after expiring (restart /
        #: recovery), which is the readmission signal that clears even a
        #: transport-failure exclusion: the process we failed against is
        #: gone, so its failure streak says nothing about its successor
        self._seen_generation = {m.url: m.generation for m in members}

    # -- artifact data plane: peer fetch hints ---------------------------
    def run(self, payloads, on_result=None, on_dispatch=None, cancel=None):
        self._peer_sources = self._advertised_keys()
        return super().run(payloads, on_result=on_result,
                           on_dispatch=on_dispatch, cancel=cancel)

    def _advertised_keys(self) -> dict:
        """``compile key -> advertising worker URLs`` from the latest
        heartbeat cache stats (see
        :meth:`repro.explore.artifacts.ArtifactCache.heartbeat_stats`)."""
        peers: dict = {}
        for member in self.registry.live():
            stats = member.cache_stats or {}
            if not isinstance(stats, dict):
                continue
            keys = stats.get("keys") or {}
            advertised = keys.get("compiled") if isinstance(keys, dict) \
                else None
            for key in advertised or ():
                if isinstance(key, str):
                    peers.setdefault(key, []).append(member.url)
        return peers

    def _fetch_from_for(self, ref: dict) -> list:
        """Origin first, then up to two peer workers that already
        advertise the compile key — when the frontend is the fetch
        bottleneck, cold workers can pull from warmed siblings."""
        urls = super()._fetch_from_for(ref)
        key = ref.get("compileKey")
        if isinstance(key, str):
            for url in self._peer_sources.get(key, ())[:2]:
                if url not in urls:
                    urls.append(url)
        return urls

    # -- membership reconciliation --------------------------------------
    def _poll_membership(self, state) -> None:
        now = time.monotonic()
        if now < self._next_poll:
            return
        self._next_poll = now + self.poll_s
        live = {member.url: member.generation
                for member in self.registry.live()}
        joined = []
        with self._lock:
            known = {worker.url: worker for worker in self._workers}
            for worker in self._workers:
                if worker.url in live:
                    generation = live[worker.url]
                    seen = self._seen_generation.get(worker.url,
                                                     generation)
                    rejoined = generation > seen
                    self._seen_generation[worker.url] = max(generation,
                                                            seen)
                    if worker.excluded and (
                            rejoined or (worker.excluded_reason or "")
                            .startswith("left the fleet")):
                        # a new generation (restarted worker) clears any
                        # exclusion; a same-generation return only
                        # clears a membership one — a worker we excluded
                        # for transport failures that never restarted is
                        # still the same broken process
                        worker.readmit()
                        joined.append(worker)
                elif not worker.excluded:
                    worker.excluded = True
                    worker.excluded_reason = ("left the fleet "
                                              "(heartbeat expired)")
                    self._wake.notify_all()
            for url in set(live) - set(known):
                worker = _RemoteWorker(url)
                self._workers.append(worker)
                self._seen_generation[url] = live[url]
                joined.append(worker)
            self.workers = sum(1 for w in self._workers if not w.excluded)
        for worker in joined:
            self._start_worker(state, worker)

    def _keep_waiting(self, state) -> bool:
        """With every serve thread gone and jobs unfinished, wait up to
        ``no_worker_grace_s`` for a replacement worker to register."""
        now = time.monotonic()
        if self._idle_since is None:
            self._idle_since = now
        if now - self._idle_since > self.no_worker_grace_s:
            return False
        self._next_poll = 0.0          # poll eagerly while stranded
        return True

    def _start_worker(self, state, worker) -> None:
        self._idle_since = None
        super()._start_worker(state, worker)

    def describe(self) -> dict:
        data = super().describe()
        data["membership"] = "registry"
        data["pollS"] = self.poll_s
        return data


class FleetScheduler:
    """Builds per-sweep fleet backends from the server's registry."""

    def __init__(self, registry: WorkerRegistry,
                 inflight_per_worker: int = 2,
                 fail_threshold: int = 2,
                 poll_s: float = 0.25,
                 client_factory=None,
                 artifact_store=None):
        self.registry = registry
        self.inflight_per_worker = inflight_per_worker
        self.fail_threshold = fail_threshold
        self.poll_s = poll_s
        self.client_factory = client_factory
        #: artifact data plane (protocol v8): the server's ArtifactCache
        #: plus the origin URL workers fetch from.  Both must be set for
        #: fleet dispatches to go out as references; the HTTP layer
        #: fills ``origin`` once it knows its bound address.
        self.artifact_store = artifact_store
        self.origin: Optional[str] = None

    def available(self) -> int:
        """Live (schedulable) worker count right now."""
        return len(self.registry.live_urls())

    def build_backend(self,
                      job_timeout_s: Optional[float] = None) -> FleetBackend:
        """One fresh backend per sweep (health rows are per-run state).

        Raises :class:`FleetError` when the registry is empty — the
        protocol layer maps that to a 503 at submit time."""
        return FleetBackend(self.registry,
                            job_timeout_s=job_timeout_s,
                            inflight_per_worker=self.inflight_per_worker,
                            fail_threshold=self.fail_threshold,
                            poll_s=self.poll_s,
                            client_factory=self.client_factory,
                            artifact_store=self.artifact_store,
                            artifact_origin=self.origin)

    def describe(self) -> dict:
        return {"backend": "fleet",
                "inflightPerWorker": self.inflight_per_worker,
                "registry": self.registry.snapshot()}
