"""repro — a superscalar out-of-order RISC-V (RV32IMF) processor simulator.

Python reproduction of *"Web-Based Simulator of Superscalar RISC-V
Processors"* (Jaros, Majer, Horky, Vavra; SC 2024, arXiv:2411.07721).

Quickstart::

    from repro import Simulation, CpuConfig

    sim = Simulation.from_source('''
        li  a0, 6
        li  a1, 7
        mul a2, a0, a1
        ebreak
    ''')
    sim.run()
    assert sim.register_value("a2") == 42
    print(sim.stats.panel(expanded=True))

Main entry points:

* :class:`repro.sim.simulation.Simulation` — assemble + simulate, forward
  and backward stepping, statistics;
* :class:`repro.core.config.CpuConfig` — the full architecture description
  (JSON import/export, presets);
* :func:`repro.compiler.driver.compile_c` — C to RISC-V assembly with
  optimization levels O0-O3;
* :mod:`repro.server` / :mod:`repro.cli` — the JSON/HTTP server and the
  batch CLI;
* :mod:`repro.viz` — text renderings of every GUI view in the paper.
"""

from repro.core.config import BufferConfig, CpuConfig, FuSpec, MemoryConfig
from repro.memory.cache import CacheConfig
from repro.memory.layout import MemoryLocation
from repro.predictor.unit import PredictorConfig
from repro.sim.simulation import Simulation, SimulationResult, run_program
from repro.asm.parser import Assembler, assemble
from repro.errors import (
    AsmSyntaxError,
    ConfigError,
    CSyntaxError,
    CTypeError,
    MemoryAccessError,
    ReproError,
    SimulationException,
)

__version__ = "1.0.0"

__all__ = [
    "Simulation",
    "SimulationResult",
    "run_program",
    "CpuConfig",
    "BufferConfig",
    "MemoryConfig",
    "FuSpec",
    "CacheConfig",
    "PredictorConfig",
    "MemoryLocation",
    "Assembler",
    "assemble",
    "ReproError",
    "ConfigError",
    "AsmSyntaxError",
    "CSyntaxError",
    "CTypeError",
    "SimulationException",
    "MemoryAccessError",
    "__version__",
]
