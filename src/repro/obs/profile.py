"""Opt-in sampled profiler for the simulation hot loop.

Two instruments, both attached from the *outside* so the uninstrumented
fast path is byte-for-byte untouched:

* :class:`PipelineProfiler` — per-stage cycle attribution for the
  interpreter path.  ``Cpu.step()`` calls its stage methods through
  ``self._commit`` etc., so Python's instance-attribute shadowing lets
  us install timing wrappers on one ``Cpu`` *instance* without touching
  the class: a detached CPU pays nothing, not even a branch.  Timing is
  stride-sampled (clock reads on every N-th call per stage) so the
  attached overhead stays small and the *relative* shares stay honest.
* :class:`ResidencyProfiler` — chunked throughput/residency timeline
  for trace-tier runs: drives ``cpu.run`` in cycle slices and diffs the
  tier's ``stats`` (blocks, compiled, sideExits, invalidations) plus
  cycles/instructions per slice, answering "when did the run migrate
  from interpreter to compiled superblocks, and did it stay there".

Clocks are injected (``time_fn=``) for deterministic tests.  This
module is never imported by ``explore/runner.py``'s closure, by
``repro.core.pipeline``, or by ``repro.sim.simulation`` — the layering
test pins that — so profiling can never perturb sweep records.
"""

from __future__ import annotations

# wall-clock justification: stage timings are host-side diagnostics and
# never enter records; this module sits outside the determinism closure
# (see module docstring and the layering test in tests/obs/).
import time
from typing import Callable, Dict, List, Optional

__all__ = ["PipelineProfiler", "ResidencyProfiler", "PIPELINE_STAGES"]

#: the six per-cycle stage methods of ``Cpu.step``, reverse pipeline
#: order (commit first), exactly as the interpreter calls them
PIPELINE_STAGES = (
    "_commit",
    "_memory_step",
    "_execute_fus",
    "_issue",
    "_dispatch",
    "_fetch",
)


class PipelineProfiler:
    """Stride-sampled per-stage wall-time attribution for one ``Cpu``.

    Usage::

        profiler = PipelineProfiler(cpu, stride=64)
        profiler.attach()
        simulation.run(budget)
        profiler.detach()
        report = profiler.report()

    ``attach`` is only meaningful on the interpreter path (a commit
    hook, or ``trace=False``, forces it); trace-tier runs bypass
    ``step()`` entirely — use :class:`ResidencyProfiler` there.
    """

    def __init__(self, cpu, stride: int = 64,
                 time_fn: Callable[[], float] = time.perf_counter):
        self.cpu = cpu
        self.stride = max(1, stride)
        self._time = time_fn
        # name -> [calls, sampled, seconds]
        self._cells: Dict[str, List[float]] = {
            name: [0, 0, 0.0] for name in PIPELINE_STAGES}
        self._attached = False

    # ------------------------------------------------------------------
    def attach(self) -> None:
        if self._attached:
            return
        for name in PIPELINE_STAGES:
            inner = getattr(self.cpu, name)   # bound class method
            setattr(self.cpu, name, self._wrap(name, inner))
        self._attached = True

    def detach(self) -> None:
        """Remove the wrappers; the instance falls back to the class
        methods and the CPU is indistinguishable from an unprofiled one."""
        if not self._attached:
            return
        for name in PIPELINE_STAGES:
            if name in self.cpu.__dict__:
                delattr(self.cpu, name)
        self._attached = False

    def __enter__(self) -> "PipelineProfiler":
        self.attach()
        return self

    def __exit__(self, *exc) -> None:
        self.detach()

    # ------------------------------------------------------------------
    def _wrap(self, name: str, inner):
        stride = self.stride
        time_fn = self._time
        cell = self._cells[name]

        def wrapper():
            cell[0] += 1
            if cell[0] % stride:
                return inner()
            t0 = time_fn()
            try:
                return inner()
            finally:
                cell[2] += time_fn() - t0
                cell[1] += 1

        return wrapper

    # ------------------------------------------------------------------
    def report(self) -> dict:
        """Per-stage attribution: sampled seconds and share of the total
        sampled time (the honest number — strides cancel out)."""
        total = sum(cell[2] for cell in self._cells.values())
        stages = []
        for name in PIPELINE_STAGES:
            calls, sampled, seconds = self._cells[name]
            stages.append({
                "stage": name.lstrip("_"),
                "calls": int(calls),
                "sampled": int(sampled),
                "sampledS": round(seconds, 6),
                "share": round(seconds / total, 4) if total else 0.0,
            })
        return {"stride": self.stride, "totalSampledS": round(total, 6),
                "stages": stages}


class ResidencyProfiler:
    """Chunked trace-tier residency timeline.

    Drives ``cpu.run`` in fixed cycle slices and records, per slice,
    the cycle/instruction deltas, wall seconds, and the tier's stat
    deltas.  A slice whose ``compiled`` delta is positive is where the
    tier was still warming; steady-state slices with zero deltas and
    high cycles/sec are compiled-superblock residency."""

    def __init__(self, cpu, chunk_cycles: int = 50_000,
                 time_fn: Callable[[], float] = time.perf_counter):
        self.cpu = cpu
        self.chunk_cycles = max(1, chunk_cycles)
        self._time = time_fn
        self.chunks: List[dict] = []

    # ------------------------------------------------------------------
    def _tier_stats(self) -> Dict[str, int]:
        tier = getattr(self.cpu, "_trace_tier", None)
        if tier is None:
            return {}
        return dict(tier.stats)

    def run(self, budget: int) -> None:
        """Run to halt or *budget* total cycles, recording one chunk
        entry per slice."""
        cpu = self.cpu
        while cpu.halted is None and cpu.cycle < budget:
            target = min(cpu.cycle + self.chunk_cycles, budget)
            cycles0 = cpu.cycle
            insns0 = cpu.committed
            stats0 = self._tier_stats()
            t0 = self._time()
            cpu.run(target)
            wall = self._time() - t0
            stats1 = self._tier_stats()
            delta = {key: stats1[key] - stats0.get(key, 0)
                     for key in sorted(stats1)}
            cycles = cpu.cycle - cycles0
            self.chunks.append({
                "cycles": cycles,
                "instructions": cpu.committed - insns0,
                "wallS": round(wall, 6),
                "cps": round(cycles / wall, 1) if wall > 0 else None,
                "tier": delta,
                "mode": "traced" if stats1 else "interpreter",
            })

    # ------------------------------------------------------------------
    def report(self) -> dict:
        total_cycles = sum(chunk["cycles"] for chunk in self.chunks)
        total_wall = sum(chunk["wallS"] for chunk in self.chunks)
        return {
            "chunkCycles": self.chunk_cycles,
            "chunks": self.chunks,
            "totalCycles": total_cycles,
            "totalWallS": round(total_wall, 6),
            "meanCps": (round(total_cycles / total_wall, 1)
                        if total_wall > 0 else None),
        }
