"""Observability plane: metrics registry, trace spans, hot-loop profiling.

Three submodules with deliberately different blast radii:

* :mod:`repro.obs.metrics` — the process-wide metrics registry (counters,
  gauges, fixed-bucket histograms).  **Determinism-clean**: it reads no
  clock, no environment, no randomness, so record-producing code (the
  artifact cache sits inside ``explore/runner.py``'s closure) may bump
  counters freely without violating the byte-identical-records contract.
  The canonical :func:`repro.obs.metrics.nearest_rank` percentile helper
  lives here too.
* :mod:`repro.obs.trace` — span trees for distributed sweeps (queue wait,
  dispatch, compile, simulate, record), ids propagated frontend -> worker
  through ``/explore/submit`` and ``/worker/execute``.  Never imported by
  the runner: tracers cross into ``execute_payload`` duck-typed.
* :mod:`repro.obs.profile` — opt-in sampled cycle-attribution profiler
  for the simulation hot loop (per pipeline stage, trace-tier vs
  interpreter residency).  Attaches from the *outside* via instance
  attributes, so the uninstrumented fast path is untouched and the
  module is unreachable from the deterministic closure.

This package intentionally has an empty ``__init__``: importing
``repro.obs`` must pull in none of the submodules, so static layering
checks (and the determinism lint scope) stay exact.
"""
