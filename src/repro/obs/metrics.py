"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

The hot-path contract is **lock-free increment**: every writing thread
owns a private shard (a ``threading.local`` slot holding plain dicts)
that only it mutates, so ``Counter.inc`` / ``Histogram.observe`` are a
dict update away — no lock, no contention, no syscalls.  The registry
lock is taken only to register a new shard (once per thread) and to
merge shards on scrape.  Shards are never reset, so merged counter
values are monotone for the life of the process even across scrapes and
thread deaths.

This module is **determinism-clean by construction**: it imports no
clock, reads no environment, and uses no process-global randomness —
which is what lets record-producing code (the artifact cache inside
``explore/runner.py``'s closure) bump counters without violating the
byte-identical-records contract.  ``repro-sim lint``'s DT rules scan it
as part of the runner's closure; keep it that way.

It is also the home of the canonical :func:`nearest_rank` percentile
rule and the :func:`summarize` distribution summary every layer shares
(``/explore/status`` wall-time payloads, the load test's Table I
latency columns, histogram scrape summaries), so no two endpoints can
disagree about the same distribution.
"""

from __future__ import annotations

import bisect
import math
import threading
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "nearest_rank",
    "summarize",
    "render_prometheus",
    "default_registry",
    "DEFAULT_SECONDS_BUCKETS",
]

#: fixed bucket upper bounds (seconds) for wall-time histograms —
#: sub-millisecond protocol work through minutes-long sweep jobs
DEFAULT_SECONDS_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: per-(cell, shard) sample ring feeding percentile summaries; bounds
#: scrape memory while keeping p50/p90 exact over the recent window
SAMPLE_RING = 512


def nearest_rank(ordered: List[float], quantile: float) -> float:
    """Nearest-rank percentile over an ascending-sorted list.

    The textbook rule — ``ceil(q * n)``-th smallest — so p50 of
    ``[1, 2, 3, 4, 5]`` is the 3rd element (the median), where a
    ``round()``-based index would land on the 2nd via banker's rounding.
    The one percentile rule of the whole stack: ``/explore/status``,
    the load test, and histogram summaries all route through here."""
    index = max(0, math.ceil(quantile * len(ordered)) - 1)
    return ordered[index]


def summarize(values: Sequence[float]) -> Optional[dict]:
    """Shared distribution summary: ``{"min", "p50", "p90", "max",
    "count"}`` by :func:`nearest_rank`, or ``None`` for no data."""
    if not values:
        return None
    ordered = sorted(values)
    return {
        "min": ordered[0],
        "p50": nearest_rank(ordered, 0.5),
        "p90": nearest_rank(ordered, 0.9),
        "max": ordered[-1],
        "count": len(ordered),
    }


def _label_key(labels: dict) -> Tuple[Tuple[str, str], ...]:
    """Canonical (sorted, stringified) cell key for a label set."""
    if not labels:
        return ()
    return tuple((key, str(labels[key])) for key in sorted(labels))


class _HistCell:
    """One thread's view of one histogram label-cell."""

    __slots__ = ("buckets", "total", "count", "samples")

    def __init__(self, bucket_count: int):
        self.buckets = [0] * bucket_count   # per-bound, last is +Inf
        self.total = 0.0
        self.count = 0
        self.samples: deque = deque(maxlen=SAMPLE_RING)


class _Shard:
    """Per-thread metric storage.  Only the owning thread writes; the
    scrape path reads via atomic ``list(dict.items())`` copies."""

    __slots__ = ("counts", "hists")

    def __init__(self) -> None:
        self.counts: Dict[tuple, float] = {}
        self.hists: Dict[tuple, _HistCell] = {}


class Counter:
    """Monotone counter family (optionally labelled)."""

    __slots__ = ("name", "help", "_registry")

    def __init__(self, name: str, help_text: str,
                 registry: "MetricsRegistry"):
        self.name = name
        self.help = help_text
        self._registry = registry

    def inc(self, amount: float = 1, **labels) -> None:
        shard = self._registry._shard()
        key = (self.name, _label_key(labels))
        shard.counts[key] = shard.counts.get(key, 0) + amount


class Gauge:
    """Point-in-time value family, set (not incremented) on scrape or at
    event sites; stored registry-side under the lock — gauges are
    low-frequency by design, the lock-free path is for counters."""

    __slots__ = ("name", "help", "_registry")

    def __init__(self, name: str, help_text: str,
                 registry: "MetricsRegistry"):
        self.name = name
        self.help = help_text
        self._registry = registry

    def set(self, value: float, **labels) -> None:
        self._registry._set_gauge(self.name, _label_key(labels), value)

    def clear(self) -> None:
        """Drop every cell of this gauge (stale labelled series — e.g.
        a fleet worker that left — would otherwise linger forever)."""
        self._registry._clear_gauge(self.name)


class Histogram:
    """Fixed-bucket histogram family with a bounded sample ring per
    thread for exact :func:`nearest_rank` summaries."""

    __slots__ = ("name", "help", "bounds", "_registry")

    def __init__(self, name: str, help_text: str,
                 registry: "MetricsRegistry",
                 buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS):
        self.name = name
        self.help = help_text
        self.bounds = tuple(sorted(buckets))
        self._registry = registry

    def observe(self, value: float, **labels) -> None:
        shard = self._registry._shard()
        key = (self.name, _label_key(labels))
        cell = shard.hists.get(key)
        if cell is None:
            cell = shard.hists[key] = _HistCell(len(self.bounds) + 1)
        cell.buckets[bisect.bisect_left(self.bounds, value)] += 1
        cell.total += value
        cell.count += 1
        cell.samples.append(value)


class MetricsRegistry:
    """Family registry + scrape-time shard merger.

    Family registration is idempotent by name (instrumented modules may
    be imported in any order and re-registered across many server
    instances in one process); re-registering a name as a different
    type is a programming error and raises."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._shards: List[_Shard] = []
        self._families: Dict[str, object] = {}
        self._kinds: Dict[str, str] = {}
        self._gauges: Dict[tuple, float] = {}

    # -- hot path ------------------------------------------------------
    def _shard(self) -> _Shard:
        shard = getattr(self._local, "shard", None)
        if shard is None:
            shard = _Shard()
            with self._lock:
                self._shards.append(shard)
            self._local.shard = shard
        return shard

    # -- registration --------------------------------------------------
    def _register(self, kind: str, name: str, family: object):
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if self._kinds[name] != kind:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{self._kinds[name]}, not {kind}")
                return existing
            self._families[name] = family
            self._kinds[name] = kind
            return family

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._register("counter", name,
                              Counter(name, help_text, self))

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._register("gauge", name, Gauge(name, help_text, self))

    def histogram(self, name: str, help_text: str = "",
                  buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
                  ) -> Histogram:
        return self._register("histogram", name,
                              Histogram(name, help_text, self, buckets))

    # -- gauges --------------------------------------------------------
    def _set_gauge(self, name: str, label_key: tuple,
                   value: float) -> None:
        with self._lock:
            self._gauges[(name, label_key)] = value

    def _clear_gauge(self, name: str) -> None:
        with self._lock:
            for key in [k for k in self._gauges if k[0] == name]:
                del self._gauges[key]

    # -- scrape --------------------------------------------------------
    def scrape(self) -> List[dict]:
        """Merge every shard into one JSON-shaped family list, sorted by
        family name (stable across scrapes for tests and diffing)."""
        with self._lock:
            families = sorted(self._families.items())
            kinds = dict(self._kinds)
            shards = list(self._shards)
            gauges = dict(self._gauges)

        counts: Dict[tuple, float] = {}
        hist_cells: Dict[tuple, list] = {}
        for shard in shards:
            # list(...) snapshots the dict in one C call, so a writer
            # inserting concurrently cannot break the iteration
            for key, value in list(shard.counts.items()):
                counts[key] = counts.get(key, 0) + value
            for key, cell in list(shard.hists.items()):
                hist_cells.setdefault(key, []).append(cell)

        out: List[dict] = []
        for name, family in families:
            kind = kinds[name]
            entry = {"name": name, "type": kind, "help": family.help,
                     "values": []}
            if kind == "counter":
                cells = sorted(key[1] for key in counts if key[0] == name)
                for label_key in cells:
                    entry["values"].append(
                        {"labels": dict(label_key),
                         "value": counts[(name, label_key)]})
            elif kind == "gauge":
                cells = sorted(key[1] for key in gauges if key[0] == name)
                for label_key in cells:
                    entry["values"].append(
                        {"labels": dict(label_key),
                         "value": gauges[(name, label_key)]})
            else:
                cells = sorted({key[1] for key in hist_cells
                                if key[0] == name})
                for label_key in cells:
                    entry["values"].append(self._merge_hist(
                        family, hist_cells[(name, label_key)], label_key))
            out.append(entry)
        return out

    @staticmethod
    def _merge_hist(family: Histogram, cells: List[_HistCell],
                    label_key: tuple) -> dict:
        merged = [0] * (len(family.bounds) + 1)
        total = 0.0
        count = 0
        samples: List[float] = []
        for cell in cells:
            for index, bucket in enumerate(cell.buckets):
                merged[index] += bucket
            total += cell.total
            count += cell.count
            samples.extend(cell.samples)
        cumulative = []
        running = 0
        for bound, bucket in zip(family.bounds, merged):
            running += bucket
            cumulative.append({"le": bound, "count": running})
        cumulative.append({"le": "+Inf", "count": count})
        return {"labels": dict(label_key), "buckets": cumulative,
                "sum": total, "count": count,
                "summary": summarize(samples)}


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _escape_help(text: str) -> str:
    """``# HELP`` escaping per the exposition format (v0.0.4):
    backslash and newline only."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: object) -> str:
    """Label-value escaping: backslash, double quote, newline."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_labels(labels: dict, extra: Optional[dict] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    cells = ",".join(f'{key}="{_escape_label_value(merged[key])}"'
                     for key in sorted(merged))
    return "{" + cells + "}"


def render_prometheus(scrape: List[dict]) -> str:
    """Prometheus text exposition (v0.0.4) of a :meth:`scrape` payload.

    Emits ``# HELP`` / ``# TYPE`` comment lines and, for histograms,
    cumulative ``_bucket{le=...}`` series (``+Inf`` included) plus the
    ``_sum`` / ``_count`` pair — the exact shape a stock Prometheus
    scraper ingests (pinned byte-for-byte by a golden test)."""
    lines: List[str] = []
    for family in scrape:
        name = family["name"]
        if family.get("help"):
            lines.append(f"# HELP {name} {_escape_help(family['help'])}")
        lines.append(f"# TYPE {name} {family['type']}")
        if family["type"] != "histogram":
            for cell in family["values"]:
                lines.append(f"{name}{_format_labels(cell['labels'])} "
                             f"{_format_value(cell['value'])}")
            continue
        for cell in family["values"]:
            for bucket in cell["buckets"]:
                lines.append(
                    f"{name}_bucket"
                    f"{_format_labels(cell['labels'], {'le': bucket['le']})}"
                    f" {bucket['count']}")
            lines.append(f"{name}_sum{_format_labels(cell['labels'])} "
                         f"{_format_value(cell['sum'])}")
            lines.append(f"{name}_count{_format_labels(cell['labels'])} "
                         f"{cell['count']}")
    return "\n".join(lines) + "\n"


_default: Optional[MetricsRegistry] = None
_default_lock = threading.Lock()


def default_registry() -> MetricsRegistry:
    """The process-wide registry every instrumented module shares (the
    one ``GET /metrics`` scrapes)."""
    global _default
    if _default is None:
        with _default_lock:
            if _default is None:
                _default = MetricsRegistry()
    return _default
