"""Trace spans for distributed sweeps: one sweep = one span tree.

Wire shape — every span is a plain JSON dict:

    {"traceId": <sweep id>, "spanId": str, "parentId": str | None,
     "name": str, "startS": float, "endS": float, "tags": dict}

Times are **relative to the sweep's submit instant** (seconds).  The
frontend owns the tree: it emits the root ``sweep`` span, a
``queueWait`` child, and one ``job`` span per grid point from its own
dispatch/finish bookkeeping.  Workers (and the serial/remote execution
paths) carry a :class:`JobTracer` whose spans are relative to *tracer
creation*; the frontend re-bases them onto the sweep timeline with
:func:`rebase` using the job's dispatch offset.  Cross-host clock skew
therefore shows up as at most a small shift of a job's interior spans,
never as a disconnected tree.

Clocks are injected (``time_fn=``) so tests drive them manually; the
default is ``time.monotonic``.  This module is never imported from
``explore/runner.py``'s deterministic closure — tracers cross into
``execute_payload`` duck-typed — so the wall-clock reads here are
outside the byte-identical-records contract by construction.
"""

from __future__ import annotations

# wall-clock justification: span durations are host-side telemetry and
# never enter sweep records; this module is outside the runner's
# determinism closure (see module docstring).
import time
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "JobTracer",
    "make_span",
    "rebase",
    "span_tree",
    "validate_tree",
]


def make_span(trace_id: str, span_id: str, parent_id: Optional[str],
              name: str, start_s: float, end_s: float,
              tags: Optional[dict] = None) -> dict:
    """Build one wire-shape span dict (the only span constructor —
    keeps every producer's field set identical)."""
    return {
        "traceId": trace_id,
        "spanId": span_id,
        "parentId": parent_id,
        "name": name,
        "startS": round(start_s, 6),
        "endS": round(end_s, 6),
        "tags": dict(tags) if tags else {},
    }


class JobTracer:
    """Span collector for one job's execution (compile, simulate,
    record).  Span times are relative to tracer creation; the sweep
    frontend re-bases them onto the sweep timeline.

    Duck-typed contract with ``execute_payload``: anything with a
    ``span(name, **tags)`` context manager works, so the runner never
    has to import this module."""

    __slots__ = ("trace_id", "parent_id", "spans", "_time", "_t0", "_seq")

    def __init__(self, trace_id: str, parent_id: str,
                 time_fn: Callable[[], float] = time.monotonic):
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.spans: List[dict] = []
        self._time = time_fn
        self._t0 = time_fn()
        self._seq = 0

    @contextmanager
    def span(self, name: str, **tags):
        self._seq += 1
        span_id = f"{self.parent_id}.s{self._seq}"
        start = self._time() - self._t0
        try:
            yield
        finally:
            self.spans.append(make_span(
                self.trace_id, span_id, self.parent_id, name,
                start, self._time() - self._t0, tags))

    def export(self) -> List[dict]:
        """Spans recorded so far (relative times, oldest first)."""
        return list(self.spans)


def rebase(spans: List[dict], offset_s: float) -> List[dict]:
    """Shift tracer-relative spans onto the sweep timeline by adding
    the job's dispatch offset to every start/end."""
    out = []
    for span in spans:
        shifted = dict(span)
        shifted["startS"] = round(span["startS"] + offset_s, 6)
        shifted["endS"] = round(span["endS"] + offset_s, 6)
        out.append(shifted)
    return out


def span_tree(spans: List[dict]) -> Tuple[List[dict], Dict[str, List[dict]]]:
    """Arrange a flat span list as ``(roots, children_by_parent_id)``,
    each sibling list ordered by start time (then span id, for a total
    deterministic order)."""
    by_id = {span["spanId"]: span for span in spans}
    roots: List[dict] = []
    children: Dict[str, List[dict]] = {}
    for span in sorted(spans, key=lambda s: (s["startS"], s["spanId"])):
        parent = span.get("parentId")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)
    return roots, children


def validate_tree(spans: List[dict]) -> List[str]:
    """Structural checks for a sweep's span tree; returns a list of
    problem strings (empty = connected, single-rooted, well-formed).
    CI's obs-smoke job runs this against ``GET /trace/<sweepId>``."""
    problems: List[str] = []
    if not spans:
        return ["no spans"]
    trace_ids = sorted({span["traceId"] for span in spans})
    if len(trace_ids) != 1:
        problems.append(f"multiple traceIds: {trace_ids}")
    ids = [span["spanId"] for span in spans]
    if len(ids) != len(set(ids)):
        problems.append("duplicate spanIds")
    roots, _children = span_tree(spans)
    if len(roots) != 1:
        problems.append(
            f"expected a single root, got {[s['spanId'] for s in roots]}")
    for span in spans:
        if span["endS"] < span["startS"]:
            problems.append(f"span {span['spanId']} ends before it starts")
    return problems
