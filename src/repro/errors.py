"""Exception hierarchy for the repro simulator.

The paper (Sec. III-B) distinguishes *tooling* errors (assembler / compiler
syntax errors, reported with line/column so the editor can highlight them,
Figs. 6-7) from *simulation* exceptions (division by zero, unauthorized
memory access) which are generated during execution and checked when the
instruction is committed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class ConfigError(ReproError):
    """Invalid processor / memory / predictor configuration."""


class SourceError(ReproError):
    """An error in user source code, carrying an editor-highlightable span.

    Parameters
    ----------
    message:
        Human readable description.
    line, column:
        1-based position of the offending token (0 when unknown).
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(message)
        self.message = message
        self.line = line
        self.column = column

    def to_json(self) -> dict:
        """Editor payload used by the web client to underline the error."""
        return {"message": self.message, "line": self.line, "column": self.column}

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.line:
            return f"{self.line}:{self.column}: {self.message}"
        return self.message


class AsmSyntaxError(SourceError):
    """Syntax error in RISC-V assembly input (Fig. 7)."""


class CSyntaxError(SourceError):
    """Syntax error in C input (Fig. 6)."""


class CTypeError(SourceError):
    """Semantic / type error in C input."""


class SimulationException(ReproError):
    """Raised *architecturally* by an executing instruction.

    These are recorded on the in-flight instruction and only surface when the
    instruction commits (mis-speculated faulting instructions are squashed
    silently, matching Sec. III-B).
    """

    kind = "generic"

    def __init__(self, message: str, pc: int = -1):
        super().__init__(message)
        self.message = message
        self.pc = pc


class MemoryAccessError(SimulationException):
    """Access to an address outside the allocated memory array."""

    kind = "memory"


class DivisionByZeroError(SimulationException):
    """Integer division by zero (RISC-V defines a result; the simulator
    still reports it as a runtime diagnostic, as the paper does)."""

    kind = "div0"


class ExpressionError(ReproError):
    """Malformed ``interpretableAs`` expression in an instruction definition."""
