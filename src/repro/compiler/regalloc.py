"""Linear-scan register allocation.

Live intervals are computed over the flat instruction list ([first
occurrence, last occurrence] per temp) and conservatively widened across
backward branches so loop-carried values stay live for the whole loop.
Temporaries that are live across a call are restricted to callee-saved
registers; everything else may also use caller-saved (t/ft) registers.
Temps that do not receive a register are spilled to stack slots (at O0 the
allocator is invoked with empty register pools, producing the classic
spill-everything code).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.compiler.ir import IRFunction, IRInstr, Temp

#: integer registers handed out by the allocator
INT_CALLEE_SAVED = ["s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9",
                    "s10", "s11"]
INT_CALLER_SAVED = ["t3", "t4", "t5", "t6"]
#: floating point registers handed out by the allocator
FP_CALLEE_SAVED = ["fs0", "fs1", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7",
                   "fs8", "fs9", "fs10", "fs11"]
FP_CALLER_SAVED = ["ft3", "ft4", "ft5", "ft6", "ft7"]


@dataclass
class Interval:
    temp: Temp
    start: int
    end: int
    crosses_call: bool = False
    register: Optional[str] = None
    spilled: bool = False


@dataclass
class Allocation:
    """Result of register allocation for one function."""

    #: temp -> physical register name
    registers: Dict[Temp, str] = field(default_factory=dict)
    #: temp -> spill slot index (slot offsets assigned by the code generator)
    spills: Dict[Temp, int] = field(default_factory=dict)
    #: callee-saved registers actually used (must be saved in the prologue)
    used_callee_saved: List[str] = field(default_factory=list)

    def location(self, temp: Temp):
        if temp in self.registers:
            return ("reg", self.registers[temp])
        return ("spill", self.spills[temp])


def compute_intervals(func: IRFunction) -> List[Interval]:
    """Conservative live intervals with loop widening."""
    first: Dict[Temp, int] = {}
    last: Dict[Temp, int] = {}
    label_pos: Dict[str, int] = {}
    for pos, instr in enumerate(func.body):
        if instr.op == "label":
            label_pos[instr.label] = pos
    # parameters are defined at position -1 (function entry)
    for p in func.params:
        first[p] = -1
        last[p] = -1
    for pos, instr in enumerate(func.body):
        for t in instr.sources():
            first.setdefault(t, pos)
            last[t] = pos
        if instr.dst is not None:
            first.setdefault(instr.dst, pos)
            last[instr.dst] = max(last.get(instr.dst, pos), pos)
    # widen across backward branches
    changed = True
    while changed:
        changed = False
        for pos, instr in enumerate(func.body):
            if instr.op in ("jmp", "bz", "bnz"):
                target = label_pos.get(instr.label, pos)
                if target < pos:  # backward edge spanning [target, pos]
                    for t in list(first):
                        if first[t] <= pos and last[t] >= target:
                            new_start = min(first[t], target)
                            new_end = max(last[t], pos)
                            if new_start != first[t] or new_end != last[t]:
                                first[t], last[t] = new_start, new_end
                                changed = True
    call_positions = [pos for pos, i in enumerate(func.body)
                      if i.op == "call"]
    intervals = []
    for t in first:
        crosses = any(first[t] < cp < last[t] for cp in call_positions)
        intervals.append(Interval(t, first[t], last[t], crosses))
    intervals.sort(key=lambda iv: (iv.start, iv.end))
    return intervals


def allocate(func: IRFunction, enable_registers: bool = True) -> Allocation:
    """Run linear scan; with ``enable_registers=False`` everything spills."""
    intervals = compute_intervals(func)
    alloc = Allocation()
    if not enable_registers:
        for iv in intervals:
            alloc.spills[iv.temp] = len(alloc.spills)
        return alloc

    pools = {
        (False, True): list(INT_CALLEE_SAVED),    # int, callee-saved
        (False, False): list(INT_CALLER_SAVED),   # int, caller-saved
        (True, True): list(FP_CALLEE_SAVED),
        (True, False): list(FP_CALLER_SAVED),
    }
    active: List[Interval] = []
    used_callee: Set[str] = set()

    def expire(current_start: int) -> None:
        for iv in list(active):
            if iv.end < current_start:
                active.remove(iv)
                key = (iv.temp.is_float,
                       iv.register in INT_CALLEE_SAVED
                       or iv.register in FP_CALLEE_SAVED)
                pools[key].append(iv.register)

    for iv in intervals:
        expire(iv.start)
        is_float = iv.temp.is_float
        # prefer caller-saved for short-lived temps, callee-saved when the
        # value lives across a call (caller-saved would be clobbered)
        candidates = []
        if not iv.crosses_call:
            candidates.append((is_float, False))
        candidates.append((is_float, True))
        register = None
        for key in candidates:
            if pools[key]:
                register = pools[key].pop(0)
                if key[1]:
                    used_callee.add(register)
                break
        if register is None:
            # spill the interval with the furthest end among candidates
            competitor = None
            for act in active:
                if act.temp.is_float != is_float:
                    continue
                if iv.crosses_call:
                    in_callee = (act.register in INT_CALLEE_SAVED
                                 or act.register in FP_CALLEE_SAVED)
                    if not in_callee:
                        continue
                if competitor is None or act.end > competitor.end:
                    competitor = act
            if competitor is not None and competitor.end > iv.end:
                iv.register = competitor.register
                alloc.registers[iv.temp] = competitor.register
                active.remove(competitor)
                competitor.register = None
                competitor.spilled = True
                del alloc.registers[competitor.temp]
                alloc.spills[competitor.temp] = len(alloc.spills)
                active.append(iv)
            else:
                iv.spilled = True
                alloc.spills[iv.temp] = len(alloc.spills)
            continue
        iv.register = register
        alloc.registers[iv.temp] = register
        active.append(iv)

    alloc.used_callee_saved = sorted(used_callee)
    return alloc
