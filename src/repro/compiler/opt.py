"""IR optimization passes.

The four optimization levels mirror the paper's GCC integration ("various
optimization levels", Sec. II-B): each level adds passes whose effect is
directly observable in the simulator's runtime statistics:

* O0 — no optimization (and stack-resident locals, see irgen);
* O1 — constant folding, algebraic simplification, dead-code elimination,
  control-flow cleanup;
* O2 — O1 + copy/constant propagation, local common-subexpression
  elimination, strength reduction (mul/div/rem by powers of two);
* O3 — O2 + inlining of small leaf functions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple, Union

from repro.compiler.ir import (
    IRFunction, IRInstr, IRUnit, Operand, StackSlot, Temp, fresh_label,
)
from repro.isa.bits import to_int32, to_uint32, float32_round

_SIDE_EFFECT_OPS = {"store", "call", "ret", "jmp", "bz", "bnz", "label"}

_FOLD_INT = {
    "add": lambda a, b: to_int32(a + b),
    "sub": lambda a, b: to_int32(a - b),
    "mul": lambda a, b: to_int32(a * b),
    "and": lambda a, b: to_int32(a & b),
    "or": lambda a, b: to_int32(a | b),
    "xor": lambda a, b: to_int32(a ^ b),
    "sll": lambda a, b: to_int32(to_uint32(a) << (b & 31)),
    "srl": lambda a, b: to_int32(to_uint32(a) >> (b & 31)),
    "sra": lambda a, b: to_int32(to_int32(a) >> (b & 31)),
}
_FOLD_FLOAT = {
    "fadd": lambda a, b: float32_round(a + b),
    "fsub": lambda a, b: float32_round(a - b),
    "fmul": lambda a, b: float32_round(a * b),
}
_FOLD_CMP = {
    "eq": lambda a, b: int(to_int32(a) == to_int32(b)),
    "ne": lambda a, b: int(to_int32(a) != to_int32(b)),
    "lt": lambda a, b: int(to_int32(a) < to_int32(b)),
    "le": lambda a, b: int(to_int32(a) <= to_int32(b)),
    "gt": lambda a, b: int(to_int32(a) > to_int32(b)),
    "ge": lambda a, b: int(to_int32(a) >= to_int32(b)),
    "ltu": lambda a, b: int(to_uint32(a) < to_uint32(b)),
    "leu": lambda a, b: int(to_uint32(a) <= to_uint32(b)),
    "gtu": lambda a, b: int(to_uint32(a) > to_uint32(b)),
    "geu": lambda a, b: int(to_uint32(a) >= to_uint32(b)),
    "feq": lambda a, b: int(a == b),
    "flt": lambda a, b: int(a < b),
    "fle": lambda a, b: int(a <= b),
}


def count_uses(body: List[IRInstr]) -> Dict[Temp, int]:
    """Number of reads of every temp (shared with the code generator)."""
    uses: Dict[Temp, int] = {}
    for instr in body:
        for src in instr.sources():
            uses[src] = uses.get(src, 0) + 1
    return uses


def _is_power_of_two(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


# ---------------------------------------------------------------------------
# constant folding + algebraic simplification (+ strength reduction at O2)
# ---------------------------------------------------------------------------
def constant_fold(func: IRFunction, strength_reduce: bool = False) -> bool:
    """Block-local constant propagation and folding; returns True on change."""
    changed = False
    consts: Dict[Temp, Union[int, float]] = {}

    def resolve(x: Operand) -> Operand:
        if isinstance(x, Temp) and x in consts:
            return consts[x]
        return x

    new_body: List[IRInstr] = []
    for instr in func.body:
        if instr.op == "label":
            consts.clear()  # block boundary: control may join here
            new_body.append(instr)
            continue
        # propagate known constants into operand slots
        a, b = resolve(instr.a), resolve(instr.b)
        if a is not instr.a or b is not instr.b:
            # mul/div/rem have no immediate machine forms; do not inflate
            # them with constants both sides handle below anyway
            instr.a, instr.b = a, b
            changed = True
        if instr.args:
            new_args = [resolve(x) for x in instr.args]
            if new_args != instr.args:
                instr.args = new_args
                changed = True

        if instr.op == "li":
            consts[instr.dst] = instr.a
            new_body.append(instr)
            continue
        if instr.op == "mov":
            if isinstance(instr.a, (int, float)):
                instr = IRInstr(op="li", dst=instr.dst, a=instr.a,
                                line=instr.line)
                changed = True
                consts[instr.dst] = instr.a
            else:
                consts.pop(instr.dst, None)
            new_body.append(instr)
            continue

        folded: Optional[IRInstr] = None
        if instr.op == "bin" and isinstance(instr.a, (int, float)) \
                and isinstance(instr.b, (int, float)):
            folded = _fold_bin(instr)
        elif instr.op == "cmp" and isinstance(instr.a, (int, float)) \
                and isinstance(instr.b, (int, float)):
            fn = _FOLD_CMP.get(instr.sub_op)
            if fn is not None:
                folded = IRInstr(op="li", dst=instr.dst,
                                 a=fn(instr.a, instr.b), line=instr.line)
        elif instr.op == "cvt" and isinstance(instr.a, (int, float)):
            value = {"i2f": lambda v: float32_round(float(to_int32(int(v)))),
                     "u2f": lambda v: float32_round(float(to_uint32(int(v)))),
                     "f2i": lambda v: int(v),
                     "f2u": lambda v: int(v) & 0xFFFFFFFF,
                     }[instr.sub_op](instr.a)
            folded = IRInstr(op="li", dst=instr.dst, a=value, line=instr.line)
        elif instr.op == "neg" and isinstance(instr.a, int):
            folded = IRInstr(op="li", dst=instr.dst, a=to_int32(-instr.a),
                             line=instr.line)
        elif instr.op == "bnot" and isinstance(instr.a, int):
            folded = IRInstr(op="li", dst=instr.dst, a=to_int32(~instr.a),
                             line=instr.line)
        elif instr.op == "fneg" and isinstance(instr.a, float):
            folded = IRInstr(op="li", dst=instr.dst, a=-instr.a,
                             line=instr.line)
        elif instr.op == "bz" and isinstance(instr.a, (int, float)):
            folded = IRInstr(op="jmp", label=instr.label, line=instr.line) \
                if not instr.a else IRInstr(op="nopmark", line=instr.line)
        elif instr.op == "bnz" and isinstance(instr.a, (int, float)):
            folded = IRInstr(op="jmp", label=instr.label, line=instr.line) \
                if instr.a else IRInstr(op="nopmark", line=instr.line)

        if folded is None and instr.op == "bin":
            folded = _simplify_bin(instr, strength_reduce)

        if folded is not None:
            changed = True
            if folded.op == "nopmark":
                continue
            instr = folded
        if instr.op == "li":
            consts[instr.dst] = instr.a
        elif instr.dst is not None:
            consts.pop(instr.dst, None)
        new_body.append(instr)
    func.body = new_body
    return changed


def _fold_bin(instr: IRInstr) -> Optional[IRInstr]:
    sub, a, b = instr.sub_op, instr.a, instr.b
    if sub in _FOLD_INT:
        return IRInstr(op="li", dst=instr.dst,
                       a=_FOLD_INT[sub](int(a), int(b)), line=instr.line)
    if sub in _FOLD_FLOAT:
        return IRInstr(op="li", dst=instr.dst,
                       a=_FOLD_FLOAT[sub](float(a), float(b)),
                       line=instr.line)
    if sub in ("div", "rem", "divu", "remu") and int(b) != 0:
        a, b = int(a), int(b)
        if sub == "div":
            value = to_int32(int(a / b)) if b else 0
        elif sub == "rem":
            value = to_int32(a - int(a / b) * b)
        elif sub == "divu":
            value = to_int32(to_uint32(a) // to_uint32(b))
        else:
            value = to_int32(to_uint32(a) % to_uint32(b))
        return IRInstr(op="li", dst=instr.dst, a=value, line=instr.line)
    if sub == "fdiv" and float(b) != 0.0:
        return IRInstr(op="li", dst=instr.dst,
                       a=float32_round(float(a) / float(b)), line=instr.line)
    return None


def _simplify_bin(instr: IRInstr, strength_reduce: bool) -> Optional[IRInstr]:
    """Algebraic identities and (optionally) strength reduction."""
    sub, a, b = instr.sub_op, instr.a, instr.b
    # put the constant on the right for commutative ops
    if sub in ("add", "mul", "and", "or", "xor") \
            and isinstance(a, int) and isinstance(b, Temp):
        a, b = b, a
        instr.a, instr.b = a, b
    if not isinstance(b, int):
        return None
    if sub == "add" and b == 0:
        return IRInstr(op="mov", dst=instr.dst, a=a, line=instr.line)
    if sub == "sub" and b == 0:
        return IRInstr(op="mov", dst=instr.dst, a=a, line=instr.line)
    if sub in ("sll", "srl", "sra") and b == 0:
        return IRInstr(op="mov", dst=instr.dst, a=a, line=instr.line)
    if sub == "mul":
        if b == 0:
            return IRInstr(op="li", dst=instr.dst, a=0, line=instr.line)
        if b == 1:
            return IRInstr(op="mov", dst=instr.dst, a=a, line=instr.line)
        if strength_reduce and _is_power_of_two(b):
            return IRInstr(op="bin", sub_op="sll", dst=instr.dst, a=a,
                           b=b.bit_length() - 1, line=instr.line)
    if sub in ("div", "divu") and b == 1:
        return IRInstr(op="mov", dst=instr.dst, a=a, line=instr.line)
    if strength_reduce and sub == "divu" and _is_power_of_two(b):
        return IRInstr(op="bin", sub_op="srl", dst=instr.dst, a=a,
                       b=b.bit_length() - 1, line=instr.line)
    if strength_reduce and sub == "remu" and _is_power_of_two(b):
        return IRInstr(op="bin", sub_op="and", dst=instr.dst, a=a,
                       b=b - 1, line=instr.line)
    if sub in ("and",) and b == 0:
        return IRInstr(op="li", dst=instr.dst, a=0, line=instr.line)
    if sub in ("or", "xor") and b == 0:
        return IRInstr(op="mov", dst=instr.dst, a=a, line=instr.line)
    return None


# ---------------------------------------------------------------------------
# copy propagation (block local)
# ---------------------------------------------------------------------------
def copy_propagate(func: IRFunction) -> bool:
    changed = False
    copies: Dict[Temp, Temp] = {}

    def resolve(x: Operand) -> Operand:
        while isinstance(x, Temp) and x in copies:
            x = copies[x]
        return x

    for instr in func.body:
        if instr.op == "label":
            copies.clear()
            continue
        for attr in ("a", "b", "c"):
            value = getattr(instr, attr)
            resolved = resolve(value)
            if resolved is not value:
                setattr(instr, attr, resolved)
                changed = True
        if instr.args:
            new_args = [resolve(x) for x in instr.args]
            if new_args != instr.args:
                instr.args = new_args
                changed = True
        if instr.dst is not None:
            # the destination is redefined: kill copies through it
            copies.pop(instr.dst, None)
            stale = [k for k, v in copies.items() if v == instr.dst]
            for k in stale:
                del copies[k]
        if instr.op == "mov" and isinstance(instr.a, Temp) \
                and instr.dst != instr.a:
            copies[instr.dst] = instr.a
    return changed


# ---------------------------------------------------------------------------
# local common subexpression elimination
# ---------------------------------------------------------------------------
def local_cse(func: IRFunction) -> bool:
    changed = False
    available: Dict[Tuple, Temp] = {}
    for instr in func.body:
        if instr.op in ("label", "call"):
            available.clear()  # calls may change globals reachable via loads
            continue
        if instr.op == "store":
            # a store may alias any prior load: drop load-derived entries
            stale = [k for k in available if k[0] == "load"]
            for k in stale:
                del available[k]
            continue
        if instr.op in ("bin", "cmp", "cvt", "la", "laddr", "load",
                        "neg", "bnot", "fneg"):
            key = (instr.op, instr.sub_op, instr.symbol, instr.a, instr.b,
                   instr.size, instr.signed)
            prev = available.get(key)
            if prev is not None and prev != instr.dst:
                func.body[func.body.index(instr)] = IRInstr(
                    op="mov", dst=instr.dst, a=prev, line=instr.line)
                changed = True
                continue
            if instr.dst is not None:
                # invalidate expressions that read the overwritten temp
                stale = [k for k in available
                         if instr.dst in (k[3], k[4]) or
                         available[k] == instr.dst]
                for k in stale:
                    del available[k]
                available[key] = instr.dst
        elif instr.dst is not None:
            stale = [k for k in available
                     if instr.dst in (k[3], k[4]) or available[k] == instr.dst]
            for k in stale:
                del available[k]
    return changed


# ---------------------------------------------------------------------------
# dead code elimination
# ---------------------------------------------------------------------------
def dead_code_elim(func: IRFunction) -> bool:
    changed = False
    while True:
        uses = count_uses(func.body)
        new_body = []
        removed = False
        for instr in func.body:
            if instr.op in ("li", "mov", "bin", "cmp", "cvt", "la", "laddr",
                            "neg", "bnot", "fneg", "load") \
                    and instr.dst is not None \
                    and uses.get(instr.dst, 0) == 0:
                removed = True
                continue
            if instr.op == "mov" and instr.dst == instr.a:
                removed = True
                continue
            new_body.append(instr)
        func.body = new_body
        changed |= removed
        if not removed:
            return changed


# ---------------------------------------------------------------------------
# control-flow cleanup
# ---------------------------------------------------------------------------
def cleanup_cfg(func: IRFunction) -> bool:
    changed = False
    # remove unreachable instructions after an unconditional jump / ret
    new_body: List[IRInstr] = []
    skipping = False
    for instr in func.body:
        if instr.op == "label":
            skipping = False
        if skipping:
            changed = True
            continue
        new_body.append(instr)
        if instr.op in ("jmp", "ret"):
            skipping = True
    func.body = new_body
    # remove jumps to the immediately following label
    new_body = []
    for i, instr in enumerate(func.body):
        if instr.op == "jmp":
            j = i + 1
            while j < len(func.body) and func.body[j].op == "label":
                if func.body[j].label == instr.label:
                    break
                j += 1
            if j < len(func.body) and func.body[j].op == "label" \
                    and func.body[j].label == instr.label:
                changed = True
                continue
        new_body.append(instr)
    func.body = new_body
    # drop labels that are never referenced
    referenced: Set[str] = {i.label for i in func.body
                            if i.op in ("jmp", "bz", "bnz")}
    new_body = [i for i in func.body
                if i.op != "label" or i.label in referenced]
    if len(new_body) != len(func.body):
        changed = True
    func.body = new_body
    return changed


# ---------------------------------------------------------------------------
# inlining (O3)
# ---------------------------------------------------------------------------
_INLINE_MAX_INSTRS = 24


def _inlinable(func: IRFunction) -> bool:
    if len(func.body) > _INLINE_MAX_INSTRS:
        return False
    for instr in func.body:
        if instr.op == "call":
            return False  # leaf functions only
    return not func.slots  # no stack objects (keeps frames simple)


def inline_calls(unit: IRUnit, func: IRFunction) -> bool:
    """Inline qualifying callees into *func*; returns True on change."""
    changed = False
    new_body: List[IRInstr] = []
    for instr in func.body:
        if instr.op != "call":
            new_body.append(instr)
            continue
        callee = unit.function(instr.symbol)
        if callee is None or callee.name == func.name \
                or not _inlinable(callee):
            new_body.append(instr)
            continue
        changed = True
        end_label = fresh_label(f"inl_{callee.name}")
        # fresh temps for the callee's temp space
        mapping: Dict[Temp, Temp] = {}

        def remap(x: Operand) -> Operand:
            if isinstance(x, Temp):
                if x not in mapping:
                    mapping[x] = func.new_temp(x.is_float)
                return mapping[x]
            return x

        # bind arguments
        for param, arg in zip(callee.params, instr.args):
            new_body.append(IRInstr(op="mov", dst=remap(param), a=arg,
                                    line=instr.line))
        label_map: Dict[str, str] = {}

        def remap_label(name: str) -> str:
            if name not in label_map:
                label_map[name] = fresh_label("inl")
            return label_map[name]

        for cinstr in callee.body:
            if cinstr.op == "ret":
                if cinstr.a is not None and instr.dst is not None:
                    new_body.append(IRInstr(op="mov", dst=instr.dst,
                                            a=remap(cinstr.a),
                                            line=instr.line))
                new_body.append(IRInstr(op="jmp", label=end_label,
                                        line=instr.line))
                continue
            clone = IRInstr(
                op=cinstr.op, dst=remap(cinstr.dst) if cinstr.dst else None,
                a=remap(cinstr.a) if cinstr.a is not None else None,
                b=remap(cinstr.b) if cinstr.b is not None else None,
                c=remap(cinstr.c) if cinstr.c is not None else None,
                sub_op=cinstr.sub_op, symbol=cinstr.symbol,
                label=remap_label(cinstr.label) if cinstr.label else "",
                args=[remap(x) for x in cinstr.args],
                size=cinstr.size, signed=cinstr.signed, line=instr.line)
            new_body.append(clone)
        new_body.append(IRInstr(op="label", label=end_label, line=instr.line))
    func.body = new_body
    return changed


# ---------------------------------------------------------------------------
# pass driver
# ---------------------------------------------------------------------------
def optimize(unit: IRUnit, level: int) -> IRUnit:
    """Run the pass pipeline for the given optimization level."""
    if level <= 0:
        return unit
    for func in unit.functions:
        if level >= 3:
            inline_calls(unit, func)
        for _ in range(8):  # iterate to (practical) fixpoint
            changed = constant_fold(func, strength_reduce=level >= 2)
            if level >= 2:
                changed |= copy_propagate(func)
                changed |= local_cse(func)
            changed |= dead_code_elim(func)
            changed |= cleanup_cfg(func)
            if not changed:
                break
    return unit
