"""AST -> IR lowering.

Locals whose address is never taken (and that are not arrays) live in
temporaries; arrays and address-taken locals get stack slots.  At O0 *all*
named variables are stack-resident, reproducing the naive code shape users
expect from an unoptimized compile.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple, Union

from repro.compiler import cast
from repro.compiler.cast import (
    Assign, Binary, Block, Break, CType, Call, Cast, Conditional, Continue,
    Expr, ExprStmt, FloatLit, For, Function, GlobalVar, Ident, If, Index,
    IntLit, Return, SizeOf, Stmt, StrLit, TranslationUnit, Unary, VarDecl,
    While, INT, FLOAT, UNSIGNED,
)
from repro.compiler.ir import (
    GlobalData, IRFunction, IRInstr, IRUnit, Operand, StackSlot, Temp,
    fresh_label,
)
from repro.errors import CTypeError

_ASSIGN_BINOP = {
    "+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
    "<<=": "<<", ">>=": ">>", "&=": "&", "|=": "|", "^=": "^",
}

_CMP_MAP = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le",
            ">": "gt", ">=": "ge"}
_CMP_UNSIGNED = {"lt": "ltu", "le": "leu", "gt": "gtu", "ge": "geu",
                 "eq": "eq", "ne": "ne"}
_CMP_FLOAT = {"eq": "feq", "lt": "flt", "le": "fle"}


def _const_value(expr: Expr) -> Optional[Union[int, float]]:
    """Evaluate a constant initializer expression (globals)."""
    if isinstance(expr, IntLit):
        return expr.value
    if isinstance(expr, FloatLit):
        return expr.value
    if isinstance(expr, Unary) and expr.op == "-":
        inner = _const_value(expr.operand)
        return None if inner is None else -inner
    if isinstance(expr, Cast):
        inner = _const_value(expr.operand)
        if inner is None:
            return None
        return float(inner) if expr.target.is_float else int(inner)
    return None


class _LValue:
    """Either a register-resident local (temp) or a memory location."""

    __slots__ = ("kind", "temp", "addr", "offset", "size", "signed", "is_float")

    def __init__(self, kind: str, temp: Optional[Temp] = None,
                 addr: Optional[Temp] = None, offset: int = 0,
                 size: int = 4, signed: bool = True, is_float: bool = False):
        self.kind = kind          # 'temp' | 'mem'
        self.temp = temp
        self.addr = addr
        self.offset = offset
        self.size = size
        self.signed = signed
        self.is_float = is_float


class IRGen:
    def __init__(self, unit: TranslationUnit, opt_level: int = 1):
        self.unit = unit
        self.opt_level = opt_level
        self.ir = IRUnit()
        self._string_labels: Dict[str, str] = {}

    # ==================================================================
    def generate(self) -> IRUnit:
        for g in self.unit.globals:
            self.ir.globals.append(self._global(g))
        for f in self.unit.functions:
            if f.body is not None:
                self.ir.functions.append(self._function(f))
        return self.ir

    # ------------------------------------------------------------------
    def _global(self, g: GlobalVar) -> GlobalData:
        ctype = g.ctype
        if g.extern:
            return GlobalData(g.name, ctype.size, max(4, ctype.element().size
                              if ctype.is_array else ctype.size),
                              values=None, extern=True)
        align = 4 if not ctype.is_array else max(4, ctype.element().size)
        if ctype.is_array:
            elem = ctype.element()
            values: Optional[List] = None
            if g.init_list is not None:
                values = []
                for item in g.init_list:
                    value = _const_value(item)
                    if value is None:
                        raise CTypeError(
                            f"initializer of '{g.name}' is not constant",
                            g.line)
                    values.append((elem.size, value, elem.is_float))
                # zero-fill the tail
                for _ in range(ctype.array - len(g.init_list)):
                    values.append((elem.size, 0.0 if elem.is_float else 0,
                                   elem.is_float))
            return GlobalData(g.name, ctype.size, align, values,
                              elem.is_float)
        value = 0
        if g.init is not None:
            const = _const_value(g.init)
            if const is None:
                raise CTypeError(
                    f"initializer of '{g.name}' is not constant", g.line)
            value = const
        if ctype.is_float:
            return GlobalData(g.name, 4, 4, [(4, float(value), True)], True)
        return GlobalData(g.name, ctype.size, align,
                          [(ctype.size, int(value), False)])

    # ==================================================================
    def _function(self, func: Function) -> IRFunction:
        self.func = func
        self.out = IRFunction(name=func.name, line=func.line,
                              returns_float=func.return_type.is_float,
                              returns_void=(func.return_type.base == "void"
                                            and func.return_type.pointer == 0))
        self.env: Dict[str, Union[Temp, str]] = {}  # unique name -> temp | slot
        self.types: Dict[str, CType] = {}
        self.line = func.line
        self._loop_stack: List[Tuple[str, str]] = []  # (break, continue)

        stack_resident = self._stack_resident_names(func)

        # parameters arrive in argument registers; copy into temps/slots
        for p in func.params:
            self.types[p.name] = p.ctype
            ptemp = self.out.new_temp(p.ctype.decay().is_float)
            self.out.params.append(ptemp)
            self.out.param_names.append(p.name)
            if p.name in stack_resident:
                slot = StackSlot(p.name, max(4, p.ctype.decay().size), 4,
                                 p.ctype.decay().is_float)
                self.out.slots[p.name] = slot
                self.env[p.name] = p.name
                self._emit("store", a=ptemp, b=None, symbol=p.name,
                           size=p.ctype.decay().size)
            else:
                self.env[p.name] = ptemp

        self._stack_resident = stack_resident
        self._stmt(func.body)
        # implicit return (for void functions falling off the end)
        self._emit("ret", a=None)
        return self.out

    # ------------------------------------------------------------------
    def _stack_resident_names(self, func: Function) -> set:
        """Locals that must live in memory: arrays, address-taken, or all at O0."""
        names = set()
        taken = set()

        def walk_expr(expr: Optional[Expr]) -> None:
            if expr is None:
                return
            if isinstance(expr, Unary):
                if expr.op == "&" and isinstance(expr.operand, Ident):
                    kind, unique = getattr(expr.operand, "binding",
                                           ("", expr.operand.name))
                    if kind in ("local", "param"):
                        taken.add(unique)
                walk_expr(expr.operand)
            elif isinstance(expr, Binary):
                walk_expr(expr.left)
                walk_expr(expr.right)
            elif isinstance(expr, Assign):
                walk_expr(expr.target)
                walk_expr(expr.value)
            elif isinstance(expr, Conditional):
                walk_expr(expr.cond)
                walk_expr(expr.then)
                walk_expr(expr.otherwise)
            elif isinstance(expr, Call):
                for arg in expr.args:
                    walk_expr(arg)
            elif isinstance(expr, Index):
                walk_expr(expr.base)
                walk_expr(expr.index)
            elif isinstance(expr, Cast):
                walk_expr(expr.operand)
            elif isinstance(expr, SizeOf):
                walk_expr(getattr(expr, "operand_expr", None))

        def walk_stmt(stmt: Optional[Stmt]) -> None:
            if stmt is None:
                return
            if isinstance(stmt, Block):
                for s in stmt.body:
                    walk_stmt(s)
            elif isinstance(stmt, VarDecl):
                unique = getattr(stmt, "unique_name", stmt.name)
                if stmt.ctype.is_array or self.opt_level == 0:
                    names.add(unique)
                walk_expr(stmt.init)
                for item in stmt.init_list or []:
                    walk_expr(item)
            elif isinstance(stmt, ExprStmt):
                walk_expr(stmt.expr)
            elif isinstance(stmt, If):
                walk_expr(stmt.cond)
                walk_stmt(stmt.then)
                walk_stmt(stmt.otherwise)
            elif isinstance(stmt, While):
                walk_expr(stmt.cond)
                walk_stmt(stmt.body)
            elif isinstance(stmt, For):
                walk_stmt(stmt.init)
                walk_expr(stmt.cond)
                walk_expr(stmt.post)
                walk_stmt(stmt.body)
            elif isinstance(stmt, Return):
                walk_expr(stmt.value)

        walk_stmt(func.body)
        if self.opt_level == 0:
            for p in func.params:
                names.add(p.name)
        names |= taken
        return names

    # ------------------------------------------------------------------
    def _emit(self, op: str, **kw) -> IRInstr:
        instr = IRInstr(op=op, line=self.line, **kw)
        self.out.body.append(instr)
        return instr

    def _label(self, name: str) -> None:
        self.out.body.append(IRInstr(op="label", label=name, line=self.line))

    # ==================================================================
    # statements
    # ==================================================================
    def _stmt(self, stmt: Stmt) -> None:
        self.line = stmt.line or self.line
        if isinstance(stmt, Block):
            for s in stmt.body:
                self._stmt(s)
        elif isinstance(stmt, VarDecl):
            self._var_decl(stmt)
        elif isinstance(stmt, ExprStmt):
            if stmt.expr is not None:
                self._value(stmt.expr)
        elif isinstance(stmt, If):
            self._if(stmt)
        elif isinstance(stmt, While):
            self._while(stmt)
        elif isinstance(stmt, For):
            self._for(stmt)
        elif isinstance(stmt, Return):
            if stmt.value is None:
                self._emit("ret", a=None)
            else:
                value = self._value(stmt.value)
                value = self._coerce(value, stmt.value.ctype,
                                     self.func.return_type)
                self._emit("ret", a=value)
        elif isinstance(stmt, Break):
            self._emit("jmp", label=self._loop_stack[-1][0])
        elif isinstance(stmt, Continue):
            self._emit("jmp", label=self._loop_stack[-1][1])

    def _var_decl(self, stmt: VarDecl) -> None:
        unique = getattr(stmt, "unique_name", stmt.name)
        self.types[unique] = stmt.ctype
        if unique in self._stack_resident:
            size = stmt.ctype.size if stmt.ctype.size else 4
            align = max(4, stmt.ctype.element().size) if stmt.ctype.is_array else 4
            self.out.slots[unique] = StackSlot(unique, max(4, size), align,
                                               stmt.ctype.decay().is_float)
            self.env[unique] = unique
            if stmt.init is not None:
                value = self._value(stmt.init)
                value = self._coerce(value, stmt.init.ctype, stmt.ctype)
                addr = self.out.new_temp()
                self._emit("laddr", dst=addr, symbol=unique)
                self._emit("store", a=value, b=addr, c=0,
                           size=stmt.ctype.size)
            elif stmt.init_list is not None:
                elem = stmt.ctype.element()
                addr = self.out.new_temp()
                self._emit("laddr", dst=addr, symbol=unique)
                for i, item in enumerate(stmt.init_list):
                    value = self._value(item)
                    value = self._coerce(value, item.ctype, elem)
                    self._emit("store", a=value, b=addr, c=i * elem.size,
                               size=elem.size)
        else:
            temp = self.out.new_temp(stmt.ctype.decay().is_float)
            self.env[unique] = temp
            if stmt.init is not None:
                value = self._value(stmt.init)
                value = self._coerce(value, stmt.init.ctype, stmt.ctype)
                self._emit("mov", dst=temp, a=value)
            else:
                self._emit("li", dst=temp,
                           a=0.0 if temp.is_float else 0)

    def _if(self, stmt: If) -> None:
        else_label = fresh_label("else")
        end_label = fresh_label("endif")
        self._cond_jump(stmt.cond, invert=True,
                        target=else_label if stmt.otherwise else end_label)
        self._stmt(stmt.then)
        if stmt.otherwise is not None:
            self._emit("jmp", label=end_label)
            self._label(else_label)
            self._stmt(stmt.otherwise)
        self._label(end_label)

    def _while(self, stmt: While) -> None:
        head = fresh_label("while")
        end = fresh_label("endwhile")
        body = fresh_label("whilebody")
        self._loop_stack.append((end, head))
        if stmt.do_while:
            self._label(body)
            self._stmt(stmt.body)
            self._label(head)
            self._cond_jump(stmt.cond, invert=False, target=body)
        else:
            self._label(head)
            self._cond_jump(stmt.cond, invert=True, target=end)
            self._stmt(stmt.body)
            self._emit("jmp", label=head)
        self._label(end)
        self._loop_stack.pop()

    def _for(self, stmt: For) -> None:
        head = fresh_label("for")
        cont = fresh_label("forpost")
        end = fresh_label("endfor")
        if stmt.init is not None:
            self._stmt(stmt.init)
        self._loop_stack.append((end, cont))
        self._label(head)
        if stmt.cond is not None:
            self._cond_jump(stmt.cond, invert=True, target=end)
        self._stmt(stmt.body)
        self._label(cont)
        if stmt.post is not None:
            self._value(stmt.post)
        self._emit("jmp", label=head)
        self._label(end)
        self._loop_stack.pop()

    # ------------------------------------------------------------------
    def _cond_jump(self, expr: Expr, invert: bool, target: str) -> None:
        """Branch to *target* when expr is false (invert) / true."""
        self.line = expr.line or self.line
        if isinstance(expr, Unary) and expr.op == "!":
            self._cond_jump(expr.operand, not invert, target)
            return
        if isinstance(expr, Binary) and expr.op == "&&":
            if invert:
                self._cond_jump(expr.left, True, target)
                self._cond_jump(expr.right, True, target)
            else:
                skip = fresh_label("and")
                self._cond_jump(expr.left, True, skip)
                self._cond_jump(expr.right, False, target)
                self._label(skip)
            return
        if isinstance(expr, Binary) and expr.op == "||":
            if invert:
                skip = fresh_label("or")
                self._cond_jump(expr.left, False, skip)
                self._cond_jump(expr.right, True, target)
                self._label(skip)
            else:
                self._cond_jump(expr.left, False, target)
                self._cond_jump(expr.right, False, target)
            return
        value = self._value(expr)
        value = self._to_int_cond(value, expr.ctype)
        self._emit("bz" if invert else "bnz", a=value, label=target)

    def _to_int_cond(self, value: Operand, ctype: Optional[CType]) -> Operand:
        """Floats compare against 0.0 to form an int condition."""
        if ctype is not None and ctype.decay().is_float:
            zero = self.out.new_temp(True)
            self._emit("li", dst=zero, a=0.0)
            cond = self.out.new_temp()
            self._emit("cmp", sub_op="feq", dst=cond, a=value, b=zero)
            inv = self.out.new_temp()
            self._emit("cmp", sub_op="eq", dst=inv, a=cond, b=0)
            return inv
        return value

    # ==================================================================
    # expressions
    # ==================================================================
    def _value(self, expr: Expr) -> Operand:
        self.line = expr.line or self.line
        if isinstance(expr, IntLit):
            return expr.value
        if isinstance(expr, FloatLit):
            return expr.value
        if isinstance(expr, StrLit):
            label = self._string_labels.get(expr.value)
            if label is None:
                label = fresh_label("LC")
                self._string_labels[expr.value] = label
                self.ir.strings[label] = expr.value
            dst = self.out.new_temp()
            self._emit("la", dst=dst, symbol=label)
            return dst
        if isinstance(expr, Ident):
            return self._ident_value(expr)
        if isinstance(expr, Call):
            return self._call(expr)
        if isinstance(expr, Assign):
            return self._assign(expr)
        if isinstance(expr, Binary):
            return self._binary(expr)
        if isinstance(expr, Unary):
            return self._unary(expr)
        if isinstance(expr, Conditional):
            return self._conditional(expr)
        if isinstance(expr, Index):
            lv = self._index_lvalue(expr)
            return self._load_lvalue(lv)
        if isinstance(expr, Cast):
            value = self._value(expr.operand)
            return self._coerce(value, expr.operand.ctype, expr.target)
        if isinstance(expr, SizeOf):
            return expr.target.size
        raise CTypeError(f"cannot lower {type(expr).__name__}", expr.line)

    def _ident_value(self, expr: Ident) -> Operand:
        kind, unique = expr.binding
        if kind == "global":
            gtype = expr.ctype
            addr = self.out.new_temp()
            self._emit("la", dst=addr, symbol=unique)
            if gtype.is_array:
                return addr  # decays to a pointer
            dst = self.out.new_temp(gtype.is_float)
            self._emit("load", dst=dst, a=addr, b=0, size=gtype.size,
                       signed=gtype.load_signed)
            return dst
        binding = self.env[unique]
        if isinstance(binding, Temp):
            return binding
        # stack-resident local / param
        ltype = self.types[unique]
        addr = self.out.new_temp()
        self._emit("laddr", dst=addr, symbol=binding)
        if ltype.is_array:
            return addr
        dst = self.out.new_temp(ltype.decay().is_float)
        self._emit("load", dst=dst, a=addr, b=0, size=ltype.decay().size,
                   signed=ltype.load_signed)
        return dst

    # ------------------------------------------------------------------
    def _lvalue(self, expr: Expr) -> _LValue:
        if isinstance(expr, Ident):
            kind, unique = expr.binding
            ctype = expr.ctype
            if kind == "global":
                addr = self.out.new_temp()
                self._emit("la", dst=addr, symbol=unique)
                return _LValue("mem", addr=addr, size=ctype.size,
                               signed=ctype.load_signed,
                               is_float=ctype.is_float)
            binding = self.env[unique]
            if isinstance(binding, Temp):
                return _LValue("temp", temp=binding,
                               is_float=binding.is_float)
            addr = self.out.new_temp()
            self._emit("laddr", dst=addr, symbol=binding)
            dtype = ctype.decay()
            return _LValue("mem", addr=addr, size=dtype.size,
                           signed=ctype.load_signed, is_float=dtype.is_float)
        if isinstance(expr, Index):
            return self._index_lvalue(expr)
        if isinstance(expr, Unary) and expr.op == "*":
            addr = self._value(expr.operand)
            addr = self._materialize(addr, False)
            elem = expr.ctype
            return _LValue("mem", addr=addr, size=elem.size,
                           signed=elem.load_signed, is_float=elem.is_float)
        raise CTypeError("expression is not an lvalue", expr.line)

    def _index_lvalue(self, expr: Index) -> _LValue:
        base = self._value(expr.base)
        base = self._materialize(base, False)
        elem = expr.ctype
        index = self._value(expr.index)
        if isinstance(index, int):
            addr = base
            offset = index * elem.size
            return _LValue("mem", addr=addr, offset=offset, size=elem.size,
                           signed=elem.load_signed, is_float=elem.is_float)
        scaled = self.out.new_temp()
        self._emit("bin", sub_op="mul", dst=scaled, a=index, b=elem.size)
        addr = self.out.new_temp()
        self._emit("bin", sub_op="add", dst=addr, a=base, b=scaled)
        return _LValue("mem", addr=addr, size=elem.size,
                       signed=elem.load_signed, is_float=elem.is_float)

    def _load_lvalue(self, lv: _LValue) -> Operand:
        if lv.kind == "temp":
            return lv.temp
        dst = self.out.new_temp(lv.is_float)
        self._emit("load", dst=dst, a=lv.addr, b=lv.offset, size=lv.size,
                   signed=lv.signed)
        return dst

    def _store_lvalue(self, lv: _LValue, value: Operand) -> None:
        if lv.kind == "temp":
            self._emit("mov", dst=lv.temp, a=value)
        else:
            value = self._materialize(value, lv.is_float)
            self._emit("store", a=value, b=lv.addr, c=lv.offset, size=lv.size)

    # ------------------------------------------------------------------
    def _assign(self, expr: Assign) -> Operand:
        lv = self._lvalue(expr.target)
        if expr.op == "=":
            value = self._value(expr.value)
            value = self._coerce(value, expr.value.ctype, expr.target.ctype)
            self._store_lvalue(lv, value)
            return value if lv.kind == "mem" else lv.temp
        # compound assignment: load, combine, store
        binop = _ASSIGN_BINOP[expr.op]
        current = self._load_lvalue(lv)
        synthetic = Binary(line=expr.line, op=binop, left=expr.target,
                           right=expr.value)
        synthetic.ctype = expr.target.ctype
        result = self._binary_values(
            binop, current, expr.target.ctype,
            self._value(expr.value), expr.value.ctype, expr.line)
        result = self._coerce(result, self._binary_type(
            binop, expr.target.ctype, expr.value.ctype), expr.target.ctype)
        self._store_lvalue(lv, result)
        return result

    # ------------------------------------------------------------------
    def _binary_type(self, op: str, lt: CType, rt: CType) -> CType:
        lt, rt = lt.decay(), rt.decay()
        if op in ("==", "!=", "<", "<=", ">", ">=", "&&", "||"):
            return INT
        if lt.is_float or rt.is_float:
            return FLOAT
        if lt.is_pointer:
            return lt
        if rt.is_pointer:
            return rt
        if lt.is_unsigned or rt.is_unsigned:
            return UNSIGNED
        return INT

    def _binary(self, expr: Binary) -> Operand:
        if expr.op == ",":
            self._value(expr.left)
            return self._value(expr.right)
        if expr.op in ("&&", "||"):
            # value context: produce 0/1 via control flow
            result = self.out.new_temp()
            false_l = fresh_label("sc0")
            end_l = fresh_label("scend")
            self._cond_jump(expr, invert=True, target=false_l)
            self._emit("li", dst=result, a=1)
            self._emit("jmp", label=end_l)
            self._label(false_l)
            self._emit("li", dst=result, a=0)
            self._label(end_l)
            return result
        left = self._value(expr.left)
        right = self._value(expr.right)
        return self._binary_values(expr.op, left, expr.left.ctype,
                                   right, expr.right.ctype, expr.line)

    def _binary_values(self, op: str, left: Operand, lt: CType,
                       right: Operand, rt: CType, line: int) -> Operand:
        ltd, rtd = lt.decay(), rt.decay()
        # pointer arithmetic: scale the integer side by the element size
        if op in ("+", "-") and (ltd.is_pointer or rtd.is_pointer):
            if ltd.is_pointer and rtd.is_pointer:  # pointer difference
                diff = self.out.new_temp()
                self._emit("bin", sub_op="sub", dst=diff, a=left, b=right)
                out = self.out.new_temp()
                self._emit("bin", sub_op="div", dst=out, a=diff,
                           b=ltd.element().size)
                return out
            if rtd.is_pointer:  # int + ptr
                left, right = right, left
                ltd, rtd = rtd, ltd
            elem_size = ltd.element().size
            if elem_size != 1:
                if isinstance(right, int):
                    right = right * elem_size
                else:
                    scaled = self.out.new_temp()
                    self._emit("bin", sub_op="mul", dst=scaled, a=right,
                               b=elem_size)
                    right = scaled
            out = self.out.new_temp()
            self._emit("bin", sub_op="add" if op == "+" else "sub",
                       dst=out, a=left, b=right)
            return out

        common = self._binary_type(op, lt, rt)
        if op in _CMP_MAP:
            cmp_common = FLOAT if (ltd.is_float or rtd.is_float) else (
                UNSIGNED if (ltd.is_unsigned or rtd.is_unsigned) else INT)
            left = self._coerce(left, lt, cmp_common)
            right = self._coerce(right, rt, cmp_common)
            sub = _CMP_MAP[op]
            if cmp_common.is_float:
                dst = self.out.new_temp()
                if sub in ("eq", "lt", "le"):
                    self._emit("cmp", sub_op=_CMP_FLOAT[sub], dst=dst,
                               a=left, b=right)
                elif sub == "ne":
                    tmp = self.out.new_temp()
                    self._emit("cmp", sub_op="feq", dst=tmp, a=left, b=right)
                    self._emit("cmp", sub_op="eq", dst=dst, a=tmp, b=0)
                elif sub == "gt":
                    self._emit("cmp", sub_op="flt", dst=dst, a=right, b=left)
                else:  # ge
                    self._emit("cmp", sub_op="fle", dst=dst, a=right, b=left)
                return dst
            if cmp_common.is_unsigned:
                sub = _CMP_UNSIGNED[sub]
            dst = self.out.new_temp()
            self._emit("cmp", sub_op=sub, dst=dst, a=left, b=right)
            return dst

        left = self._coerce(left, lt, common)
        right = self._coerce(right, rt, common)
        if common.is_float:
            sub = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}.get(op)
            if sub is None:
                raise CTypeError(f"invalid float operator '{op}'", line)
            dst = self.out.new_temp(True)
            self._emit("bin", sub_op=sub, dst=dst, a=left, b=right)
            return dst
        unsigned = common.is_unsigned
        sub = {
            "+": "add", "-": "sub", "*": "mul",
            "/": "divu" if unsigned else "div",
            "%": "remu" if unsigned else "rem",
            "&": "and", "|": "or", "^": "xor",
            "<<": "sll", ">>": "srl" if unsigned else "sra",
        }[op]
        dst = self.out.new_temp()
        self._emit("bin", sub_op=sub, dst=dst, a=left, b=right)
        return dst

    # ------------------------------------------------------------------
    def _unary(self, expr: Unary) -> Operand:
        if expr.op == "&":
            operand = expr.operand
            if isinstance(operand, Ident):
                kind, unique = operand.binding
                if kind == "global":
                    dst = self.out.new_temp()
                    self._emit("la", dst=dst, symbol=unique)
                    return dst
                binding = self.env[unique]
                dst = self.out.new_temp()
                self._emit("laddr", dst=dst, symbol=binding)
                return dst
            lv = self._lvalue(operand)
            if lv.offset:
                dst = self.out.new_temp()
                self._emit("bin", sub_op="add", dst=dst, a=lv.addr,
                           b=lv.offset)
                return dst
            return lv.addr
        if expr.op == "*":
            lv = self._lvalue(expr)
            return self._load_lvalue(lv)
        if expr.op in ("++", "--"):
            lv = self._lvalue(expr.operand)
            old = self._load_lvalue(lv)
            otype = expr.operand.ctype.decay()
            step: Operand = otype.element().size if otype.is_pointer else 1
            if otype.is_float:
                one = self.out.new_temp(True)
                self._emit("li", dst=one, a=1.0)
                new = self.out.new_temp(True)
                self._emit("bin", sub_op="fadd" if expr.op == "++" else "fsub",
                           dst=new, a=old, b=one)
            else:
                new = self.out.new_temp()
                self._emit("bin",
                           sub_op="add" if expr.op == "++" else "sub",
                           dst=new, a=old, b=step)
            if expr.postfix:
                # preserve the old value before the store overwrites the temp
                if lv.kind == "temp":
                    saved = self.out.new_temp(lv.temp.is_float)
                    self._emit("mov", dst=saved, a=old)
                    self._store_lvalue(lv, new)
                    return saved
                self._store_lvalue(lv, new)
                return old
            self._store_lvalue(lv, new)
            return new
        operand = self._value(expr.operand)
        otype = expr.operand.ctype.decay()
        if expr.op == "-":
            if otype.is_float:
                dst = self.out.new_temp(True)
                self._emit("fneg", dst=dst, a=operand)
                return dst
            dst = self.out.new_temp()
            self._emit("neg", dst=dst, a=operand)
            return dst
        if expr.op == "~":
            dst = self.out.new_temp()
            self._emit("bnot", dst=dst, a=operand)
            return dst
        if expr.op == "!":
            operand = self._to_int_cond(operand, expr.operand.ctype)
            dst = self.out.new_temp()
            self._emit("cmp", sub_op="eq", dst=dst, a=operand, b=0)
            return dst
        raise CTypeError(f"unsupported unary '{expr.op}'", expr.line)

    # ------------------------------------------------------------------
    def _conditional(self, expr: Conditional) -> Operand:
        is_float = expr.ctype.decay().is_float
        result = self.out.new_temp(is_float)
        else_l = fresh_label("celse")
        end_l = fresh_label("cend")
        self._cond_jump(expr.cond, invert=True, target=else_l)
        then = self._coerce(self._value(expr.then), expr.then.ctype,
                            expr.ctype)
        self._emit("mov", dst=result, a=then)
        self._emit("jmp", label=end_l)
        self._label(else_l)
        otherwise = self._coerce(self._value(expr.otherwise),
                                 expr.otherwise.ctype, expr.ctype)
        self._emit("mov", dst=result, a=otherwise)
        self._label(end_l)
        return result

    # ------------------------------------------------------------------
    def _call(self, expr: Call) -> Operand:
        func = None
        for f in self.unit.functions:
            if f.name == expr.name:
                func = f
                break
        args: List[Operand] = []
        for arg, param in zip(expr.args, func.params):
            value = self._value(arg)
            value = self._coerce(value, arg.ctype, param.ctype)
            args.append(self._materialize(value,
                                          param.ctype.decay().is_float))
        rtype = func.return_type
        if rtype.base == "void" and rtype.pointer == 0:
            self._emit("call", dst=None, symbol=expr.name, args=args)
            return 0
        dst = self.out.new_temp(rtype.is_float)
        self._emit("call", dst=dst, symbol=expr.name, args=args)
        return dst

    # ------------------------------------------------------------------
    def _materialize(self, value: Operand, is_float: bool) -> Temp:
        if isinstance(value, Temp):
            return value
        dst = self.out.new_temp(is_float)
        self._emit("li", dst=dst,
                   a=float(value) if is_float else int(value))
        return dst

    def _coerce(self, value: Operand, from_type: Optional[CType],
                to_type: CType) -> Operand:
        if from_type is None:
            return value
        src, dst_t = from_type.decay(), to_type.decay()
        if src.is_float == dst_t.is_float:
            if not dst_t.is_float and dst_t.base == "char" \
                    and dst_t.pointer == 0 and not isinstance(value, int):
                # narrowing to char: mask to 8 bits
                out = self.out.new_temp()
                self._emit("bin", sub_op="and", dst=out, a=value, b=0xFF)
                return out
            if isinstance(value, float) and not dst_t.is_float:
                return int(value)
            if isinstance(value, int) and dst_t.is_float:
                return float(value)
            return value
        if dst_t.is_float:
            if isinstance(value, (int, float)):
                return float(value)
            out = self.out.new_temp(True)
            self._emit("cvt", sub_op="u2f" if src.is_unsigned else "i2f",
                       dst=out, a=value)
            return out
        # float -> integral
        if isinstance(value, (int, float)):
            return int(value)
        out = self.out.new_temp()
        self._emit("cvt", sub_op="f2u" if dst_t.is_unsigned else "f2i",
                   dst=out, a=value)
        return out


def lower(unit: TranslationUnit, opt_level: int = 1) -> IRUnit:
    """Lower a type-checked translation unit to IR."""
    return IRGen(unit, opt_level).generate()
