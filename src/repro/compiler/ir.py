"""Three-address intermediate representation.

A function is a flat list of :class:`IRInstr` over an infinite set of typed
temporaries.  Control flow uses labels and (conditional) jumps, which keeps
the optimization passes and the linear-scan register allocator simple while
still exposing every classic optimization the paper's O-level comparison
teaches.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union


@dataclass(frozen=True)
class Temp:
    """A virtual register."""

    index: int
    is_float: bool = False

    def __repr__(self) -> str:
        return f"{'f' if self.is_float else 't'}%{self.index}"


Operand = Union[Temp, int, float]

#: binary operation names understood by the optimizer and code generator
BIN_OPS = {
    "add", "sub", "mul", "div", "divu", "rem", "remu",
    "and", "or", "xor", "sll", "srl", "sra",
    "fadd", "fsub", "fmul", "fdiv",
}
#: comparison operation names (result is an int 0/1)
CMP_OPS = {
    "eq", "ne", "lt", "le", "gt", "ge",
    "ltu", "leu", "gtu", "geu",
    "feq", "flt", "fle",
}


@dataclass
class IRInstr:
    """One IR instruction.

    ``op`` determines which fields are meaningful:

    ========  =====================================================
    op        fields
    ========  =====================================================
    li        dst, a (int or float constant)
    mov       dst, a
    bin       sub_op, dst, a, b
    cmp       sub_op, dst, a, b
    neg/bnot  dst, a                        (arith / bitwise negate)
    fneg      dst, a
    cvt       sub_op in {i2f, u2f, f2i, f2u}; dst, a
    la        dst, symbol
    laddr     dst, symbol (stack slot name)
    load      dst, a (address), b (byte offset), size, signed
    store     a (value), b (address), c (byte offset), size
    label     label
    jmp       label
    bz        a (condition), label          (branch if zero)
    bnz       a (condition), label          (branch if non-zero)
    call      dst (or None), symbol, args
    ret       a (or None)
    ========  =====================================================
    """

    op: str
    dst: Optional[Temp] = None
    a: Optional[Operand] = None
    b: Optional[Operand] = None
    c: Optional[Operand] = None
    sub_op: str = ""
    symbol: str = ""
    label: str = ""
    args: List[Operand] = field(default_factory=list)
    size: int = 4
    signed: bool = True
    line: int = 0

    def sources(self) -> List[Temp]:
        """Temporaries read by this instruction."""
        out = [x for x in (self.a, self.b, self.c) if isinstance(x, Temp)]
        out.extend(x for x in self.args if isinstance(x, Temp))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.op]
        if self.sub_op:
            parts.append(f".{self.sub_op}")
        if self.dst is not None:
            parts.append(f"{self.dst} <-")
        for x in (self.a, self.b, self.c):
            if x is not None:
                parts.append(str(x))
        if self.symbol:
            parts.append(f"@{self.symbol}")
        if self.label:
            parts.append(f"->{self.label}")
        if self.args:
            parts.append(str(self.args))
        return " ".join(parts)


@dataclass
class StackSlot:
    """A named stack object (array / address-taken local / spill)."""

    name: str
    size: int
    align: int = 4
    is_float: bool = False


@dataclass
class IRFunction:
    name: str
    params: List[Temp] = field(default_factory=list)
    param_names: List[str] = field(default_factory=list)
    body: List[IRInstr] = field(default_factory=list)
    slots: Dict[str, StackSlot] = field(default_factory=dict)
    returns_float: bool = False
    returns_void: bool = False
    temp_count: int = 0
    line: int = 0

    def new_temp(self, is_float: bool = False) -> Temp:
        t = Temp(self.temp_count, is_float)
        self.temp_count += 1
        return t

    def dump(self) -> str:
        """Human-readable listing (useful in tests and debugging)."""
        lines = [f"func {self.name}({', '.join(map(str, self.params))}):"]
        for instr in self.body:
            prefix = "" if instr.op == "label" else "    "
            lines.append(prefix + repr(instr))
        return "\n".join(lines)


@dataclass
class GlobalData:
    """One global object to be emitted into the data segment."""

    name: str
    size: int
    align: int
    #: list of (size, value) words for initialized data; None -> .zero
    values: Optional[List] = None
    is_float: bool = False
    extern: bool = False


@dataclass
class IRUnit:
    functions: List[IRFunction] = field(default_factory=list)
    globals: List[GlobalData] = field(default_factory=list)
    strings: Dict[str, str] = field(default_factory=dict)  # label -> text

    def function(self, name: str) -> Optional[IRFunction]:
        for f in self.functions:
            if f.name == name:
                return f
        return None


_label_counter = itertools.count(1)


def fresh_label(stem: str = "L") -> str:
    """Globally unique label (compiler-generated labels start with '.')."""
    return f".{stem}{next(_label_counter)}"
