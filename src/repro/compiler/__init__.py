"""C compiler: a from-scratch C-subset -> RV32IMF cross-compiler.

This substitutes for the paper's GCC integration (Sec. III-C) in offline
environments.  It supports the constructs the paper's teaching examples
need — ``int`` / ``unsigned`` / ``char`` / ``float``, pointers, arrays,
globals (incl. ``extern`` arrays filled from the Memory-settings window),
functions with recursion, the full statement and expression repertoire —
and four optimization levels whose codegen quality differences are visible
in the simulator's runtime statistics:

* **O0** — naive stack-machine code: every value round-trips through the
  stack frame;
* **O1** — register allocation, constant folding, algebraic simplification
  and dead-code elimination;
* **O2** — O1 plus copy/constant propagation, local common-subexpression
  elimination and strength reduction;
* **O3** — O2 plus inlining of small leaf functions.

The emitted assembly carries ``.loc`` directives, the machine-readable form
of the paper's C <-> assembly line links (Fig. 5).
"""

from repro.compiler.driver import CompileResult, compile_c

__all__ = ["compile_c", "CompileResult"]
