"""Recursive-descent parser for the C subset."""

from __future__ import annotations

from typing import List, Optional

from repro.compiler import cast
from repro.compiler.cast import (
    Assign, Binary, Block, Break, CType, Call, Cast, Conditional, Continue,
    Expr, ExprStmt, FloatLit, For, Function, GlobalVar, Ident, If, Index,
    IntLit, Param, Return, SizeOf, Stmt, StrLit, TranslationUnit, Unary,
    VarDecl, While,
)
from repro.compiler.clexer import CToken, tokenize_c
from repro.errors import CSyntaxError

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "<<=", ">>=", "&=", "|=", "^="}

# binary operator precedence (higher binds tighter)
_BIN_PREC = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_TYPE_KEYWORDS = {"int", "unsigned", "char", "float", "void", "const", "static"}


class CParser:
    def __init__(self, source: str):
        self.tokens = tokenize_c(source)
        self.pos = 0

    # -- token helpers ---------------------------------------------------
    def peek(self, ahead: int = 0) -> CToken:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def next(self) -> CToken:
        tok = self.peek()
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def at(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[CToken]:
        if self.at(kind, text):
            return self.next()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> CToken:
        tok = self.peek()
        if not self.at(kind, text):
            want = text or kind
            raise CSyntaxError(f"expected '{want}', found '{tok.text or 'EOF'}'",
                               tok.line, tok.column)
        return self.next()

    # -- types -------------------------------------------------------------
    def _at_type(self) -> bool:
        tok = self.peek()
        return tok.kind == "kw" and tok.text in _TYPE_KEYWORDS

    def parse_type(self) -> CType:
        while self.accept("kw", "const") or self.accept("kw", "static"):
            pass
        tok = self.peek()
        if tok.kind != "kw" or tok.text not in ("int", "unsigned", "char",
                                                "float", "void"):
            raise CSyntaxError(f"expected type name, found '{tok.text}'",
                               tok.line, tok.column)
        self.next()
        base = tok.text
        if base == "unsigned":
            self.accept("kw", "int")  # 'unsigned int'
        while self.accept("kw", "const"):
            pass
        pointer = 0
        while self.accept("op", "*"):
            pointer += 1
            while self.accept("kw", "const"):
                pass
        return CType(base, pointer)

    # -- top level -----------------------------------------------------------
    def parse(self) -> TranslationUnit:
        unit = TranslationUnit()
        while not self.at("eof"):
            extern = bool(self.accept("kw", "extern"))
            start = self.peek()
            ctype = self.parse_type()
            name_tok = self.expect("ident")
            if self.at("op", "("):
                if extern:
                    raise CSyntaxError("extern functions are not supported",
                                       start.line, start.column)
                unit.functions.append(self._function(ctype, name_tok))
            else:
                unit.globals.extend(
                    self._global_decl(ctype, name_tok, extern))
        return unit

    def _function(self, return_type: CType, name_tok: CToken) -> Function:
        self.expect("op", "(")
        params: List[Param] = []
        if not self.at("op", ")"):
            if self.at("kw", "void") and self.peek(1).text == ")":
                self.next()
            else:
                while True:
                    ptype = self.parse_type()
                    ptok = self.expect("ident")
                    # array parameters decay to pointers
                    if self.accept("op", "["):
                        self.accept("int")
                        self.expect("op", "]")
                        ptype = CType(ptype.base, ptype.pointer + 1)
                    params.append(Param(ptok.text, ptype, ptok.line))
                    if not self.accept("op", ","):
                        break
        self.expect("op", ")")
        if self.accept("op", ";"):
            return Function(name_tok.text, return_type, params, None,
                            name_tok.line)
        body = self.block()
        return Function(name_tok.text, return_type, params, body,
                        name_tok.line)

    def _global_decl(self, ctype: CType, name_tok: CToken,
                     extern: bool) -> List[GlobalVar]:
        out: List[GlobalVar] = []
        tok = name_tok
        current = ctype
        while True:
            gtype = current
            if self.accept("op", "["):
                size_tok = self.accept("int")
                self.expect("op", "]")
                count = int(size_tok.value) if size_tok else 0
                gtype = CType(current.base, current.pointer, count)
            init = None
            init_list = None
            if self.accept("op", "="):
                if self.at("op", "{"):
                    init_list = self._init_list()
                    if gtype.is_array and gtype.array == 0:
                        gtype = CType(gtype.base, gtype.pointer, len(init_list))
                else:
                    init = self.assignment()
            out.append(GlobalVar(tok.text, gtype, init, init_list, extern,
                                 tok.line))
            if not self.accept("op", ","):
                break
            tok = self.expect("ident")
        self.expect("op", ";")
        return out

    def _init_list(self) -> List[Expr]:
        self.expect("op", "{")
        items: List[Expr] = []
        if not self.at("op", "}"):
            while True:
                items.append(self.assignment())
                if not self.accept("op", ","):
                    break
                if self.at("op", "}"):  # trailing comma
                    break
        self.expect("op", "}")
        return items

    # -- statements -----------------------------------------------------------
    def block(self) -> Block:
        start = self.expect("op", "{")
        body: List[Stmt] = []
        while not self.at("op", "}"):
            if self.at("eof"):
                raise CSyntaxError("unterminated block", start.line,
                                   start.column)
            body.append(self.statement())
        self.expect("op", "}")
        return Block(line=start.line, body=body)

    def statement(self) -> Stmt:
        tok = self.peek()
        if self.at("op", "{"):
            return self.block()
        if self.at("op", ";"):
            self.next()
            return ExprStmt(line=tok.line, expr=None)
        if self._at_type():
            return self._local_decl()
        if self.at("kw", "if"):
            return self._if()
        if self.at("kw", "while"):
            return self._while()
        if self.at("kw", "do"):
            return self._do_while()
        if self.at("kw", "for"):
            return self._for()
        if self.at("kw", "return"):
            self.next()
            value = None if self.at("op", ";") else self.expression()
            self.expect("op", ";")
            return Return(line=tok.line, value=value)
        if self.at("kw", "break"):
            self.next()
            self.expect("op", ";")
            return Break(line=tok.line)
        if self.at("kw", "continue"):
            self.next()
            self.expect("op", ";")
            return Continue(line=tok.line)
        expr = self.expression()
        self.expect("op", ";")
        return ExprStmt(line=tok.line, expr=expr)

    def _local_decl(self) -> Stmt:
        start = self.peek()
        ctype = self.parse_type()
        decls: List[Stmt] = []
        while True:
            tok = self.expect("ident")
            vtype = ctype
            if self.accept("op", "["):
                size_tok = self.accept("int")
                self.expect("op", "]")
                count = int(size_tok.value) if size_tok else 0
                vtype = CType(ctype.base, ctype.pointer, count)
            init = None
            init_list = None
            if self.accept("op", "="):
                if self.at("op", "{"):
                    init_list = self._init_list()
                    if vtype.is_array and vtype.array == 0:
                        vtype = CType(vtype.base, vtype.pointer,
                                      len(init_list))
                else:
                    init = self.assignment()
            decls.append(VarDecl(line=tok.line, name=tok.text, ctype=vtype,
                                 init=init, init_list=init_list))
            if not self.accept("op", ","):
                break
        self.expect("op", ";")
        if len(decls) == 1:
            return decls[0]
        return Block(line=start.line, body=decls, transparent=True)

    def _if(self) -> Stmt:
        tok = self.expect("kw", "if")
        self.expect("op", "(")
        cond = self.expression()
        self.expect("op", ")")
        then = self.statement()
        otherwise = self.statement() if self.accept("kw", "else") else None
        return If(line=tok.line, cond=cond, then=then, otherwise=otherwise)

    def _while(self) -> Stmt:
        tok = self.expect("kw", "while")
        self.expect("op", "(")
        cond = self.expression()
        self.expect("op", ")")
        body = self.statement()
        return While(line=tok.line, cond=cond, body=body)

    def _do_while(self) -> Stmt:
        tok = self.expect("kw", "do")
        body = self.statement()
        self.expect("kw", "while")
        self.expect("op", "(")
        cond = self.expression()
        self.expect("op", ")")
        self.expect("op", ";")
        return While(line=tok.line, cond=cond, body=body, do_while=True)

    def _for(self) -> Stmt:
        tok = self.expect("kw", "for")
        self.expect("op", "(")
        if self.at("op", ";"):
            self.next()
            init: Optional[Stmt] = None
        elif self._at_type():
            init = self._local_decl()
        else:
            init = ExprStmt(line=self.peek().line, expr=self.expression())
            self.expect("op", ";")
        cond = None if self.at("op", ";") else self.expression()
        self.expect("op", ";")
        post = None if self.at("op", ")") else self.expression()
        self.expect("op", ")")
        body = self.statement()
        return For(line=tok.line, init=init, cond=cond, post=post, body=body)

    # -- expressions -------------------------------------------------------
    def expression(self) -> Expr:
        expr = self.assignment()
        while self.accept("op", ","):
            right = self.assignment()
            expr = Binary(line=expr.line, op=",", left=expr, right=right)
        return expr

    def assignment(self) -> Expr:
        left = self.conditional()
        tok = self.peek()
        if tok.kind == "op" and tok.text in _ASSIGN_OPS:
            self.next()
            value = self.assignment()
            return Assign(line=tok.line, op=tok.text, target=left, value=value)
        return left

    def conditional(self) -> Expr:
        cond = self.binary(1)
        if self.accept("op", "?"):
            then = self.expression()
            self.expect("op", ":")
            otherwise = self.conditional()
            return Conditional(line=cond.line, cond=cond, then=then,
                               otherwise=otherwise)
        return cond

    def binary(self, min_prec: int) -> Expr:
        left = self.unary()
        while True:
            tok = self.peek()
            prec = _BIN_PREC.get(tok.text) if tok.kind == "op" else None
            if prec is None or prec < min_prec:
                return left
            self.next()
            right = self.binary(prec + 1)
            left = Binary(line=tok.line, op=tok.text, left=left, right=right)

    def unary(self) -> Expr:
        tok = self.peek()
        if tok.kind == "op" and tok.text in ("-", "+", "!", "~", "*", "&"):
            self.next()
            operand = self.unary()
            if tok.text == "+":
                return operand
            return Unary(line=tok.line, op=tok.text, operand=operand)
        if tok.kind == "op" and tok.text in ("++", "--"):
            self.next()
            operand = self.unary()
            return Unary(line=tok.line, op=tok.text, operand=operand)
        if tok.kind == "kw" and tok.text == "sizeof":
            self.next()
            self.expect("op", "(")
            if self._at_type():
                target = self.parse_type()
                if self.accept("op", "["):
                    size_tok = self.expect("int")
                    self.expect("op", "]")
                    target = CType(target.base, target.pointer,
                                   int(size_tok.value))
            else:
                expr = self.expression()
                target = None
                # sizeof(expr): resolved by the type checker
                self.expect("op", ")")
                node = SizeOf(line=tok.line, target=None)
                node.operand_expr = expr  # type: ignore[attr-defined]
                return node
            self.expect("op", ")")
            return SizeOf(line=tok.line, target=target)
        # cast: '(' type ')' unary
        if tok.kind == "op" and tok.text == "(" and \
                self.peek(1).kind == "kw" and \
                self.peek(1).text in ("int", "unsigned", "char", "float", "void"):
            self.next()
            target = self.parse_type()
            self.expect("op", ")")
            operand = self.unary()
            return Cast(line=tok.line, target=target, operand=operand)
        return self.postfix()

    def postfix(self) -> Expr:
        expr = self.primary()
        while True:
            tok = self.peek()
            if self.accept("op", "["):
                index = self.expression()
                self.expect("op", "]")
                expr = Index(line=tok.line, base=expr, index=index)
            elif tok.kind == "op" and tok.text in ("++", "--"):
                self.next()
                expr = Unary(line=tok.line, op=tok.text, operand=expr,
                             postfix=True)
            else:
                return expr

    def primary(self) -> Expr:
        tok = self.next()
        if tok.kind == "int" or tok.kind == "char":
            return IntLit(line=tok.line, value=int(tok.value))
        if tok.kind == "float":
            return FloatLit(line=tok.line, value=float(tok.value))
        if tok.kind == "string":
            return StrLit(line=tok.line, value=str(tok.value))
        if tok.kind == "ident":
            if self.at("op", "("):
                self.next()
                args: List[Expr] = []
                if not self.at("op", ")"):
                    while True:
                        args.append(self.assignment())
                        if not self.accept("op", ","):
                            break
                self.expect("op", ")")
                return Call(line=tok.line, name=tok.text, args=args)
            return Ident(line=tok.line, name=tok.text)
        if tok.kind == "op" and tok.text == "(":
            expr = self.expression()
            self.expect("op", ")")
            return expr
        raise CSyntaxError(f"unexpected token '{tok.text or 'EOF'}'",
                           tok.line, tok.column)


def parse_c(source: str) -> TranslationUnit:
    """Parse C source into a :class:`TranslationUnit`."""
    return CParser(source).parse()
