"""Compiler driver: C source -> RV32IMF assembly.

The web client packages C source and POSTs it to the server; the server
runs the compiler and returns the assembly together with any errors and the
C <-> assembly line map (Sec. III-C).  This module is that pipeline:
parse -> type-check -> lower -> optimize -> codegen (-> filter).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.asm.filter import filter_assembly
from repro.compiler.codegen import generate
from repro.compiler.cparser import parse_c
from repro.compiler.irgen import lower
from repro.compiler.opt import optimize
from repro.compiler.sema import check
from repro.errors import CSyntaxError, CTypeError, SourceError


@dataclass
class CompileResult:
    """Outcome of one compilation."""

    success: bool
    assembly: str = ""
    #: structured editor diagnostics (Fig. 6): message / line / column
    errors: List[dict] = field(default_factory=list)
    #: asm line number (1-based) -> C line number, from .loc directives
    line_map: Dict[int, int] = field(default_factory=dict)
    opt_level: int = 0

    def to_json(self) -> dict:
        return {
            "success": self.success,
            "assembly": self.assembly,
            "errors": self.errors,
            "lineMap": {str(k): v for k, v in self.line_map.items()},
            "optLevel": self.opt_level,
        }


def _build_line_map(assembly: str) -> Dict[int, int]:
    """Associate each assembly line with the most recent ``.loc`` C line."""
    mapping: Dict[int, int] = {}
    current = 0
    for number, line in enumerate(assembly.split("\n"), start=1):
        stripped = line.strip()
        if stripped.startswith(".loc"):
            parts = stripped.split()
            if len(parts) >= 3 and parts[2].isdigit():
                current = int(parts[2])
            continue
        if current and stripped and not stripped.endswith(":") \
                and not stripped.startswith("."):
            mapping[number] = current
    return mapping


def compile_c(source: str, opt_level: int = 1,
              run_filter: bool = False) -> CompileResult:
    """Compile a C translation unit to RISC-V assembly.

    Parameters
    ----------
    opt_level:
        0-3, matching the GUI's four optimization levels.
    run_filter:
        Apply the assembler-output cleanup filter (Sec. III-C) to the
        emitted code.  Off by default so ``.loc`` links are preserved
        unmodified for the editor; the filter keeps ``.loc`` anyway.
    """
    if not 0 <= opt_level <= 3:
        raise ValueError(f"optimization level must be 0..3, got {opt_level}")
    try:
        unit = parse_c(source)
        check(unit)
        ir = lower(unit, opt_level)
        ir = optimize(ir, opt_level)
        assembly = generate(ir, opt_level)
    except (CSyntaxError, CTypeError) as exc:
        return CompileResult(success=False, errors=[exc.to_json()],
                             opt_level=opt_level)
    if run_filter:
        assembly = filter_assembly(assembly)
    return CompileResult(
        success=True,
        assembly=assembly,
        line_map=_build_line_map(assembly),
        opt_level=opt_level,
    )
