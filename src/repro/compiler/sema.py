"""Semantic analysis: name resolution, type checking, implicit conversions.

Besides validating the program, the checker *annotates* the AST:

* every expression node gets its ``ctype``;
* identifier uses get a ``binding`` attribute (``local`` / ``param`` /
  ``global`` / ``func``) with the resolved unique name — block-scoped
  variables that shadow outer ones are alpha-renamed (``name$2``) so later
  stages work with one flat namespace per function;
* each function gets a ``locals_map`` (unique name -> CType).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.compiler import cast
from repro.compiler.cast import (
    Assign, Binary, Block, Break, CType, Call, Cast, Conditional, Continue,
    Expr, ExprStmt, FloatLit, For, Function, GlobalVar, Ident, If, Index,
    IntLit, Return, SizeOf, Stmt, StrLit, TranslationUnit, Unary, VarDecl,
    While, INT, UNSIGNED, CHAR, FLOAT, VOID,
)
from repro.errors import CTypeError

_BUILTINS: Dict[str, Tuple[CType, List[CType]]] = {}


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.names: Dict[str, Tuple[str, str, CType]] = {}  # name -> (kind, unique, ctype)

    def define(self, name: str, kind: str, unique: str, ctype: CType,
               line: int) -> None:
        if name in self.names:
            raise CTypeError(f"redefinition of '{name}'", line)
        self.names[name] = (kind, unique, ctype)

    def lookup(self, name: str):
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


def _promote(t: CType) -> CType:
    """Integer promotion: char -> int."""
    if t.base == "char" and t.pointer == 0 and not t.is_array:
        return INT
    return t


def _common_type(a: CType, b: CType, line: int) -> CType:
    """Usual arithmetic conversions."""
    a, b = _promote(a.decay()), _promote(b.decay())
    if a.is_float or b.is_float:
        return FLOAT
    if a.is_pointer:
        return a
    if b.is_pointer:
        return b
    if a.is_unsigned or b.is_unsigned:
        return UNSIGNED
    return INT


def _is_lvalue(expr: Expr) -> bool:
    if isinstance(expr, Ident):
        return getattr(expr, "binding", ("", ""))[0] != "func"
    if isinstance(expr, Index):
        return True
    if isinstance(expr, Unary) and expr.op == "*":
        return True
    return False


class TypeChecker:
    def __init__(self, unit: TranslationUnit):
        self.unit = unit
        self.globals = _Scope()
        self.functions: Dict[str, Function] = {}
        self._counter = 0

    # ------------------------------------------------------------------
    def check(self) -> TranslationUnit:
        for g in self.unit.globals:
            if g.ctype.base == "void" and g.ctype.pointer == 0:
                raise CTypeError(f"variable '{g.name}' declared void", g.line)
            self.globals.define(g.name, "global", g.name, g.ctype, g.line)
            if g.init is not None:
                self._expr(g.init, self.globals)
            if g.init_list is not None:
                for item in g.init_list:
                    self._expr(item, self.globals)
        for f in self.unit.functions:
            if f.name in self.functions and \
                    self.functions[f.name].body is not None and f.body is not None:
                raise CTypeError(f"redefinition of function '{f.name}'", f.line)
            if f.name not in self.functions or f.body is not None:
                self.functions[f.name] = f
        for f in self.unit.functions:
            if f.body is not None:
                self._function(f)
        return self.unit

    # ------------------------------------------------------------------
    def _unique(self, name: str) -> str:
        self._counter += 1
        return f"{name}${self._counter}"

    def _function(self, func: Function) -> None:
        scope = _Scope(self.globals)
        func.locals_map = {}  # type: ignore[attr-defined]
        for p in func.params:
            if p.ctype.base == "void" and p.ctype.pointer == 0:
                raise CTypeError(f"parameter '{p.name}' declared void", p.line)
            scope.define(p.name, "param", p.name, p.ctype, p.line)
        self._loop_depth = 0
        self._current = func
        self._stmt(func.body, scope)

    # ------------------------------------------------------------------
    def _stmt(self, stmt: Stmt, scope: _Scope) -> None:
        if isinstance(stmt, Block):
            inner = scope if stmt.transparent else _Scope(scope)
            for s in stmt.body:
                self._stmt(s, inner)
        elif isinstance(stmt, VarDecl):
            if stmt.ctype.base == "void" and stmt.ctype.pointer == 0 \
                    and not stmt.ctype.is_array:
                raise CTypeError(f"variable '{stmt.name}' declared void",
                                 stmt.line)
            unique = stmt.name if scope.lookup(stmt.name) is None \
                else self._unique(stmt.name)
            scope.define(stmt.name, "local", unique, stmt.ctype, stmt.line)
            stmt.unique_name = unique  # type: ignore[attr-defined]
            self._current.locals_map[unique] = stmt.ctype
            if stmt.init is not None:
                itype = self._expr(stmt.init, scope)
                self._check_assignable(stmt.ctype, itype, stmt.line)
            if stmt.init_list is not None:
                if not stmt.ctype.is_array:
                    raise CTypeError(
                        f"initializer list for non-array '{stmt.name}'",
                        stmt.line)
                if len(stmt.init_list) > stmt.ctype.array:
                    raise CTypeError(
                        f"too many initializers for '{stmt.name}'", stmt.line)
                for item in stmt.init_list:
                    self._expr(item, scope)
        elif isinstance(stmt, ExprStmt):
            if stmt.expr is not None:
                self._expr(stmt.expr, scope)
        elif isinstance(stmt, If):
            self._scalar(self._expr(stmt.cond, scope), stmt.line)
            self._stmt(stmt.then, scope)
            if stmt.otherwise is not None:
                self._stmt(stmt.otherwise, scope)
        elif isinstance(stmt, While):
            self._scalar(self._expr(stmt.cond, scope), stmt.line)
            self._loop_depth += 1
            self._stmt(stmt.body, scope)
            self._loop_depth -= 1
        elif isinstance(stmt, For):
            inner = _Scope(scope)
            if stmt.init is not None:
                self._stmt(stmt.init, inner)
            if stmt.cond is not None:
                self._scalar(self._expr(stmt.cond, inner), stmt.line)
            if stmt.post is not None:
                self._expr(stmt.post, inner)
            self._loop_depth += 1
            self._stmt(stmt.body, inner)
            self._loop_depth -= 1
        elif isinstance(stmt, Return):
            ret = self._current.return_type
            if stmt.value is None:
                if ret.base != "void" or ret.pointer:
                    raise CTypeError(
                        f"'{self._current.name}' must return a value", stmt.line)
            else:
                vtype = self._expr(stmt.value, scope)
                if ret.base == "void" and ret.pointer == 0:
                    raise CTypeError(
                        f"void function '{self._current.name}' returns a value",
                        stmt.line)
                self._check_assignable(ret, vtype, stmt.line)
        elif isinstance(stmt, (Break, Continue)):
            if self._loop_depth == 0:
                kw = "break" if isinstance(stmt, Break) else "continue"
                raise CTypeError(f"'{kw}' outside of a loop", stmt.line)
        else:  # pragma: no cover - parser produces no other nodes
            raise CTypeError(f"unsupported statement {type(stmt).__name__}",
                             stmt.line)

    # ------------------------------------------------------------------
    def _scalar(self, ctype: CType, line: int) -> None:
        t = ctype.decay()
        if t.base == "void" and t.pointer == 0:
            raise CTypeError("condition must be scalar", line)

    def _check_assignable(self, target: CType, value: CType, line: int) -> None:
        t, v = target.decay(), value.decay()
        if t.is_pointer and v.is_pointer:
            return  # permissive pointer compatibility
        if t.is_pointer and v.is_integral:
            return  # e.g. p = 0
        if t.is_integral and v.is_pointer:
            return
        if (t.is_integral or t.is_float) and (v.is_integral or v.is_float):
            return
        raise CTypeError(f"cannot assign '{v}' to '{t}'", line)

    # ------------------------------------------------------------------
    def _expr(self, expr: Expr, scope: _Scope) -> CType:
        ctype = self._expr_inner(expr, scope)
        expr.ctype = ctype
        return ctype

    def _expr_inner(self, expr: Expr, scope: _Scope) -> CType:
        if isinstance(expr, IntLit):
            return INT
        if isinstance(expr, FloatLit):
            return FLOAT
        if isinstance(expr, StrLit):
            return CType("char", 1)
        if isinstance(expr, Ident):
            entry = scope.lookup(expr.name)
            if entry is None:
                if expr.name in self.functions:
                    expr.binding = ("func", expr.name)
                    return self.functions[expr.name].return_type
                raise CTypeError(f"undeclared identifier '{expr.name}'",
                                 expr.line)
            kind, unique, ctype = entry
            expr.binding = (kind, unique)
            return ctype
        if isinstance(expr, Call):
            func = self.functions.get(expr.name)
            if func is None:
                raise CTypeError(f"call to undeclared function '{expr.name}'",
                                 expr.line)
            if len(expr.args) != len(func.params):
                raise CTypeError(
                    f"'{expr.name}' expects {len(func.params)} argument(s), "
                    f"got {len(expr.args)}", expr.line)
            for arg, param in zip(expr.args, func.params):
                atype = self._expr(arg, scope)
                self._check_assignable(param.ctype, atype, expr.line)
            return func.return_type
        if isinstance(expr, Assign):
            ttype = self._expr(expr.target, scope)
            if not _is_lvalue(expr.target):
                raise CTypeError("assignment target is not an lvalue",
                                 expr.line)
            if ttype.is_array:
                raise CTypeError("cannot assign to an array", expr.line)
            vtype = self._expr(expr.value, scope)
            self._check_assignable(ttype, vtype, expr.line)
            return ttype
        if isinstance(expr, Binary):
            if expr.op == ",":
                self._expr(expr.left, scope)
                return self._expr(expr.right, scope)
            ltype = self._expr(expr.left, scope).decay()
            rtype = self._expr(expr.right, scope).decay()
            if expr.op in ("&&", "||"):
                self._scalar(ltype, expr.line)
                self._scalar(rtype, expr.line)
                return INT
            if expr.op in ("==", "!=", "<", "<=", ">", ">="):
                return INT
            if expr.op in ("%", "&", "|", "^", "<<", ">>"):
                if ltype.is_float or rtype.is_float:
                    raise CTypeError(
                        f"invalid float operand to '{expr.op}'", expr.line)
            if expr.op in ("+", "-") and (ltype.is_pointer or rtype.is_pointer):
                if ltype.is_pointer and rtype.is_pointer:
                    if expr.op == "-":
                        return INT  # pointer difference
                    raise CTypeError("cannot add two pointers", expr.line)
                return ltype if ltype.is_pointer else rtype
            return _common_type(ltype, rtype, expr.line)
        if isinstance(expr, Unary):
            otype = self._expr(expr.operand, scope)
            if expr.op == "&":
                if not _is_lvalue(expr.operand) and not otype.is_array:
                    raise CTypeError("cannot take address of rvalue",
                                     expr.line)
                base = otype.element() if otype.is_array else otype
                return CType(base.base, base.pointer + 1)
            if expr.op == "*":
                dtype = otype.decay()
                if not dtype.is_pointer:
                    raise CTypeError(f"cannot dereference '{otype}'",
                                     expr.line)
                return dtype.element()
            if expr.op == "!":
                self._scalar(otype, expr.line)
                return INT
            if expr.op == "~":
                if otype.decay().is_float:
                    raise CTypeError("invalid float operand to '~'", expr.line)
                return _promote(otype)
            if expr.op in ("++", "--"):
                if not _is_lvalue(expr.operand):
                    raise CTypeError(f"'{expr.op}' needs an lvalue", expr.line)
                return otype.decay()
            # unary minus
            return _promote(otype.decay())
        if isinstance(expr, Conditional):
            self._scalar(self._expr(expr.cond, scope), expr.line)
            ttype = self._expr(expr.then, scope)
            otype = self._expr(expr.otherwise, scope)
            return _common_type(ttype, otype, expr.line)
        if isinstance(expr, Index):
            btype = self._expr(expr.base, scope).decay()
            itype = self._expr(expr.index, scope).decay()
            if not btype.is_pointer:
                raise CTypeError(f"cannot index '{btype}'", expr.line)
            if not itype.is_integral:
                raise CTypeError("array index must be integral", expr.line)
            return btype.element()
        if isinstance(expr, Cast):
            self._expr(expr.operand, scope)
            return expr.target
        if isinstance(expr, SizeOf):
            operand = getattr(expr, "operand_expr", None)
            if operand is not None:
                expr.target = self._expr(operand, scope)
            return UNSIGNED
        raise CTypeError(f"unsupported expression {type(expr).__name__}",
                         expr.line)  # pragma: no cover


def check(unit: TranslationUnit) -> TranslationUnit:
    """Run semantic analysis over a parsed translation unit."""
    return TypeChecker(unit).check()
