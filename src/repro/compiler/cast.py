"""Abstract syntax tree and the C-subset type model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


# ---------------------------------------------------------------------------
# types
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CType:
    """A type in the C subset: int / unsigned / char / float / void,
    pointers to them, and fixed-size arrays."""

    base: str                      # 'int' | 'unsigned' | 'char' | 'float' | 'void'
    pointer: int = 0               # levels of indirection
    array: Optional[int] = None    # element count for array types

    @property
    def is_pointer(self) -> bool:
        return self.pointer > 0 and self.array is None

    @property
    def is_array(self) -> bool:
        return self.array is not None

    @property
    def is_float(self) -> bool:
        return self.base == "float" and self.pointer == 0 and not self.is_array

    @property
    def is_integral(self) -> bool:
        return not self.is_float and not self.is_array and self.base != "void"

    @property
    def is_unsigned(self) -> bool:
        return (self.base in ("unsigned", "char") and self.pointer == 0) \
            or self.pointer > 0

    def element(self) -> "CType":
        """Type of an element (array) or pointee (pointer)."""
        if self.is_array:
            return CType(self.base, self.pointer)
        if self.pointer:
            return CType(self.base, self.pointer - 1)
        raise ValueError(f"{self} has no element type")

    def decay(self) -> "CType":
        """Array-to-pointer decay."""
        if self.is_array:
            return CType(self.base, self.pointer + 1)
        return self

    @property
    def size(self) -> int:
        """Size in bytes."""
        if self.is_array:
            return self.array * self.element().size
        if self.pointer:
            return 4
        return {"int": 4, "unsigned": 4, "float": 4, "char": 1, "void": 0}[self.base]

    @property
    def load_signed(self) -> bool:
        return self.base == "int" and self.pointer == 0

    def __str__(self) -> str:
        out = self.base + "*" * self.pointer
        if self.is_array:
            out += f"[{self.array}]"
        return out


INT = CType("int")
UNSIGNED = CType("unsigned")
CHAR = CType("char")
FLOAT = CType("float")
VOID = CType("void")


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------
@dataclass
class Expr:
    line: int = 0
    ctype: Optional[CType] = None  # filled by the type checker


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class StrLit(Expr):
    value: str = ""
    label: str = ""  # assigned during codegen (rodata)


@dataclass
class Ident(Expr):
    name: str = ""


@dataclass
class Unary(Expr):
    op: str = ""          # - ! ~ * & ++ -- (pre), p++ p-- (post)
    operand: Optional[Expr] = None
    postfix: bool = False


@dataclass
class Binary(Expr):
    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Assign(Expr):
    op: str = "="         # = += -= *= /= %= <<= >>= &= |= ^=
    target: Optional[Expr] = None
    value: Optional[Expr] = None


@dataclass
class Conditional(Expr):
    cond: Optional[Expr] = None
    then: Optional[Expr] = None
    otherwise: Optional[Expr] = None


@dataclass
class Call(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    base: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class Cast(Expr):
    target: Optional[CType] = None
    operand: Optional[Expr] = None


@dataclass
class SizeOf(Expr):
    target: Optional[CType] = None


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------
@dataclass
class Stmt:
    line: int = 0


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class Block(Stmt):
    body: List[Stmt] = field(default_factory=list)
    #: True for synthetic groups (multi-declarator statements) that must NOT
    #: open a new lexical scope
    transparent: bool = False


@dataclass
class VarDecl(Stmt):
    name: str = ""
    ctype: CType = INT
    init: Optional[Expr] = None
    #: array initializer list for local/global arrays
    init_list: Optional[List[Expr]] = None


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then: Optional[Stmt] = None
    otherwise: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Optional[Expr] = None
    body: Optional[Stmt] = None
    #: True for do-while (body runs before first test)
    do_while: bool = False


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    post: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# ---------------------------------------------------------------------------
# top level
# ---------------------------------------------------------------------------
@dataclass
class Param:
    name: str
    ctype: CType
    line: int = 0


@dataclass
class Function:
    name: str
    return_type: CType
    params: List[Param]
    body: Optional[Block]      # None for a declaration/prototype
    line: int = 0


@dataclass
class GlobalVar:
    name: str
    ctype: CType
    init: Optional[Expr] = None
    init_list: Optional[List[Expr]] = None
    extern: bool = False
    line: int = 0


@dataclass
class TranslationUnit:
    functions: List[Function] = field(default_factory=list)
    globals: List[GlobalVar] = field(default_factory=list)
