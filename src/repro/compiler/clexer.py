"""C lexer with precise source positions (for Fig. 6 error highlighting)."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import CSyntaxError

KEYWORDS = {
    "int", "unsigned", "char", "float", "void", "if", "else", "while",
    "for", "do", "return", "break", "continue", "extern", "sizeof",
    "const", "static",
}

# longest-match-first operator list
OPERATORS = [
    "<<=", ">>=", "...",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "->",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "?", ":", ";", ",", "(", ")", "[", "]", "{", "}", ".",
]

_OP_RE = "|".join(re.escape(op) for op in OPERATORS)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<float>(\d+\.\d*|\.\d+)([eE][-+]?\d+)?[fF]?|\d+[eE][-+]?\d+[fF]?|\d+[fF])
  | (?P<int>0[xX][0-9a-fA-F]+|0[bB][01]+|\d+)
  | (?P<char>'(\\.|[^'\\])')
  | (?P<string>"(\\.|[^"\\])*")
  | (?P<ident>[A-Za-z_]\w*)
  | (?P<op>%s)
    """ % _OP_RE,
    re.VERBOSE | re.DOTALL,
)

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\",
            "'": "'", '"': '"', "a": "\a", "b": "\b", "f": "\f", "v": "\v"}


@dataclass(frozen=True)
class CToken:
    kind: str           # 'int' | 'float' | 'char' | 'string' | 'ident' | 'kw' | 'op' | 'eof'
    text: str
    line: int
    column: int
    value: object = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind}({self.text!r})"


def _unescape(body: str, line: int, col: int) -> str:
    out, i = [], 0
    while i < len(body):
        if body[i] == "\\":
            if i + 1 >= len(body):
                raise CSyntaxError("dangling escape", line, col)
            nxt = body[i + 1]
            if nxt == "x":
                match = re.match(r"[0-9a-fA-F]{1,2}", body[i + 2:])
                if not match:
                    raise CSyntaxError("invalid \\x escape", line, col)
                out.append(chr(int(match.group(0), 16)))
                i += 2 + len(match.group(0))
                continue
            out.append(_ESCAPES.get(nxt, nxt))
            i += 2
        else:
            out.append(body[i])
            i += 1
    return "".join(out)


def tokenize_c(source: str) -> List[CToken]:
    """Tokenize C source; raises :class:`CSyntaxError` with position."""
    tokens: List[CToken] = []
    line = 1
    line_start = 0
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            col = pos - line_start + 1
            raise CSyntaxError(
                f"unexpected character {source[pos]!r}", line, col)
        kind = match.lastgroup
        raw = match.group(0)
        col = pos - line_start + 1
        pos = match.end()
        if kind in ("ws", "comment"):
            newlines = raw.count("\n")
            if newlines:
                line += newlines
                line_start = match.start() + raw.rfind("\n") + 1
            continue
        if kind == "int":
            tokens.append(CToken("int", raw, line, col, int(raw, 0)))
        elif kind == "float":
            tokens.append(CToken("float", raw, line, col,
                                 float(raw.rstrip("fF"))))
        elif kind == "char":
            decoded = _unescape(raw[1:-1], line, col)
            tokens.append(CToken("char", raw, line, col, ord(decoded)))
        elif kind == "string":
            tokens.append(CToken("string", raw, line, col,
                                 _unescape(raw[1:-1], line, col)))
        elif kind == "ident":
            if raw in KEYWORDS:
                tokens.append(CToken("kw", raw, line, col, raw))
            else:
                tokens.append(CToken("ident", raw, line, col, raw))
        else:
            tokens.append(CToken("op", raw, line, col, raw))
    tokens.append(CToken("eof", "", line, pos - line_start + 1))
    return tokens
