"""IR -> RV32IMF assembly code generation.

Calling convention (standard RISC-V ILP32): integer arguments in a0-a7,
float arguments in fa0-fa7, return value in a0/fa0, ra holds the return
address, sp is the stack pointer.  Scratch registers t0-t2 / ft0-ft2 are
reserved for spill traffic and constant materialization; the allocator hands
out the remaining t/s/ft/fs registers.

``.loc <line>`` directives are emitted whenever the source line changes —
the machine-readable version of the paper's C <-> assembly highlighting
(Fig. 5), consumed by the assembler into per-instruction ``c_line`` links.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from repro.compiler.ir import GlobalData, IRFunction, IRInstr, IRUnit, Operand, Temp
from repro.compiler.opt import count_uses
from repro.compiler.regalloc import Allocation, allocate
from repro.errors import CTypeError

_INT_SCRATCH = ("t0", "t1")
_ADDR_SCRATCH = "t2"
_FP_SCRATCH = ("ft0", "ft1", "ft2")

_BIN_INSTR = {
    "add": "add", "sub": "sub", "mul": "mul", "div": "div", "divu": "divu",
    "rem": "rem", "remu": "remu", "and": "and", "or": "or", "xor": "xor",
    "sll": "sll", "srl": "srl", "sra": "sra",
    "fadd": "fadd.s", "fsub": "fsub.s", "fmul": "fmul.s", "fdiv": "fdiv.s",
}
_IMM_FORM = {"add": "addi", "and": "andi", "or": "ori", "xor": "xori",
             "sll": "slli", "srl": "srli", "sra": "srai"}

#: branch mnemonic when the comparison is TRUE
_CMP_BRANCH_TRUE = {
    "eq": "beq", "ne": "bne", "lt": "blt", "le": "ble", "gt": "bgt",
    "ge": "bge", "ltu": "bltu", "leu": "bleu", "gtu": "bgtu", "geu": "bgeu",
}
#: branch mnemonic when the comparison is FALSE
_CMP_BRANCH_FALSE = {
    "eq": "bne", "ne": "beq", "lt": "bge", "le": "bgt", "gt": "ble",
    "ge": "blt", "ltu": "bgeu", "leu": "bgtu", "gtu": "bleu", "geu": "bltu",
}

_LOAD_INSTR = {(1, True): "lb", (1, False): "lbu", (2, True): "lh",
               (2, False): "lhu", (4, True): "lw", (4, False): "lw"}
_STORE_INSTR = {1: "sb", 2: "sh", 4: "sw"}


def _float_bits(value: float) -> int:
    return struct.unpack("<I", struct.pack("<f", value))[0]


class CodeGen:
    def __init__(self, unit: IRUnit, opt_level: int = 1):
        self.unit = unit
        self.opt_level = opt_level
        self.lines: List[str] = []
        self._last_loc = -1

    # ------------------------------------------------------------------
    def emit(self, text: str, indent: bool = True) -> None:
        self.lines.append(("    " + text) if indent else text)

    def loc(self, line: int) -> None:
        if line > 0 and line != self._last_loc:
            self.emit(f".loc 1 {line}")
            self._last_loc = line

    # ------------------------------------------------------------------
    def generate(self) -> str:
        self.emit(".text", indent=False)
        for func in self.unit.functions:
            self._function(func)
        if self.unit.globals or self.unit.strings:
            self.emit("", indent=False)
            self.emit(".data", indent=False)
            for g in self.unit.globals:
                self._global(g)
            for label, text in self.unit.strings.items():
                self.emit(f"{label}:", indent=False)
                escaped = text.replace("\\", "\\\\").replace('"', '\\"') \
                    .replace("\n", "\\n").replace("\t", "\\t")
                self.emit(f'.asciiz "{escaped}"')
        return "\n".join(self.lines) + "\n"

    def _global(self, g: GlobalData) -> None:
        if g.extern:
            return  # storage supplied by the Memory-settings window
        if g.align > 1:
            self.emit(f".align {max(2, g.align.bit_length() - 1)}")
        self.emit(f"{g.name}:", indent=False)
        if g.values is None:
            self.emit(f".zero {g.size}")
            return
        for size, value, is_float in g.values:
            if is_float:
                self.emit(f".float {float(value)}")
            elif size == 1:
                self.emit(f".byte {int(value)}")
            elif size == 2:
                self.emit(f".hword {int(value)}")
            else:
                self.emit(f".word {int(value)}")

    # ==================================================================
    def _function(self, func: IRFunction) -> None:
        self._last_loc = -1
        alloc = allocate(func, enable_registers=self.opt_level >= 1)
        self.alloc = alloc
        self.func = func
        self.uses = count_uses(func.body)

        # ---------- frame layout ---------------------------------------
        offset = 0
        self.spill_offsets: Dict[int, int] = {}
        for slot_index in sorted(set(alloc.spills.values())):
            self.spill_offsets[slot_index] = offset
            offset += 4
        self.slot_offsets: Dict[str, int] = {}
        for name, slot in func.slots.items():
            align = max(4, slot.align)
            offset = (offset + align - 1) // align * align
            self.slot_offsets[name] = offset
            offset += max(4, slot.size)
        self.saved_regs: List[str] = list(alloc.used_callee_saved)
        has_call = any(i.op == "call" for i in func.body)
        save_list = self.saved_regs + (["ra"] if has_call else [])
        self.reg_save_offsets: Dict[str, int] = {}
        for reg in save_list:
            self.reg_save_offsets[reg] = offset
            offset += 4
        frame = (offset + 15) // 16 * 16
        self.frame = frame
        self.epilogue_label = f".Lret_{func.name}"

        # ---------- prologue --------------------------------------------
        self.emit("", indent=False)
        self.emit(f"{func.name}:", indent=False)
        self.loc(func.line)
        if frame:
            self.emit(f"addi sp, sp, -{frame}")
        for reg, off in self.reg_save_offsets.items():
            op = "fsw" if reg.startswith("f") else "sw"
            self.emit(f"{op} {reg}, {off}(sp)")
        # move incoming arguments into their allocated homes
        int_idx = fp_idx = 0
        for ptemp in func.params:
            if ptemp.is_float:
                src = f"fa{fp_idx}"
                fp_idx += 1
            else:
                src = f"a{int_idx}"
                int_idx += 1
            self._write_from_reg(ptemp, src)

        # ---------- body --------------------------------------------------
        body = func.body
        skip_next = False
        for idx, instr in enumerate(body):
            if skip_next:
                skip_next = False
                continue
            nxt = body[idx + 1] if idx + 1 < len(body) else None
            if self._fuse_cmp_branch(instr, nxt):
                skip_next = True
                continue
            self._instr(instr)

        # ---------- epilogue ----------------------------------------------
        self.emit(f"{self.epilogue_label}:", indent=False)
        for reg, off in self.reg_save_offsets.items():
            op = "flw" if reg.startswith("f") else "lw"
            self.emit(f"{op} {reg}, {off}(sp)")
        if frame:
            self.emit(f"addi sp, sp, {frame}")
        self.emit("ret")

    # ==================================================================
    # operand access helpers
    # ==================================================================
    def _read(self, x: Operand, scratch: str) -> str:
        """Return a register holding the value of *x* (may use *scratch*)."""
        if isinstance(x, bool):
            x = int(x)
        if isinstance(x, int):
            if x == 0:
                return "x0"
            self.emit(f"li {scratch}, {x}")
            return scratch
        if isinstance(x, float):
            bits = _float_bits(x)
            int_scratch = "t0" if scratch.startswith("f") else scratch
            if bits == 0:
                self.emit(f"fmv.w.x {scratch}, x0")
            else:
                self.emit(f"li {int_scratch}, {bits}")
                self.emit(f"fmv.w.x {scratch}, {int_scratch}")
            return scratch
        kind, where = self.alloc.location(x)
        if kind == "reg":
            return where
        off = self.spill_offsets[where]
        op = "flw" if x.is_float else "lw"
        self.emit(f"{op} {scratch}, {off}(sp)")
        return scratch

    def _dst(self, dst: Temp) -> Tuple[str, bool]:
        """(register to compute into, needs-store-to-spill-slot?)."""
        kind, where = self.alloc.location(dst)
        if kind == "reg":
            return where, False
        return ("ft2" if dst.is_float else "t1"), True

    def _finish_dst(self, dst: Temp, reg: str, pending: bool) -> None:
        if pending:
            off = self.spill_offsets[self.alloc.spills[dst]]
            op = "fsw" if dst.is_float else "sw"
            self.emit(f"{op} {reg}, {off}(sp)")

    def _write_from_reg(self, dst: Temp, src_reg: str) -> None:
        kind, where = self.alloc.location(dst)
        if kind == "reg":
            if where != src_reg:
                op = "fmv.s" if dst.is_float else "mv"
                self.emit(f"{op} {where}, {src_reg}")
        else:
            off = self.spill_offsets[where]
            op = "fsw" if dst.is_float else "sw"
            self.emit(f"{op} {src_reg}, {off}(sp)")

    # ==================================================================
    # instruction lowering
    # ==================================================================
    def _fuse_cmp_branch(self, instr: IRInstr, nxt: Optional[IRInstr]) -> bool:
        """Fuse ``cmp`` + ``bz/bnz`` into a single conditional branch."""
        if self.opt_level < 1 or nxt is None:
            return False
        if instr.op != "cmp" or instr.sub_op.startswith("f"):
            return False
        if nxt.op not in ("bz", "bnz") or nxt.a != instr.dst:
            return False
        if self.uses.get(instr.dst, 0) != 1:
            return False
        self.loc(instr.line)
        a = self._read(instr.a, _INT_SCRATCH[0])
        b = self._read(instr.b, _INT_SCRATCH[1])
        table = _CMP_BRANCH_TRUE if nxt.op == "bnz" else _CMP_BRANCH_FALSE
        self.emit(f"{table[instr.sub_op]} {a}, {b}, {nxt.label}")
        return True

    def _instr(self, instr: IRInstr) -> None:
        self.loc(instr.line)
        op = instr.op
        if op == "label":
            self.emit(f"{instr.label}:", indent=False)
            return
        if op == "jmp":
            self.emit(f"j {instr.label}")
            return
        if op in ("bz", "bnz"):
            reg = self._read(instr.a, _INT_SCRATCH[0])
            self.emit(f"{'beqz' if op == 'bz' else 'bnez'} {reg}, {instr.label}")
            return
        if op == "li":
            dst, pending = self._dst(instr.dst)
            if instr.dst.is_float:
                bits = _float_bits(float(instr.a))
                if bits == 0:
                    self.emit(f"fmv.w.x {dst}, x0")
                else:
                    self.emit(f"li t0, {bits}")
                    self.emit(f"fmv.w.x {dst}, t0")
            else:
                self.emit(f"li {dst}, {int(instr.a)}")
            self._finish_dst(instr.dst, dst, pending)
            return
        if op == "mov":
            src = self._read(instr.a, _FP_SCRATCH[0] if instr.dst.is_float
                             else _INT_SCRATCH[0])
            self._write_from_reg(instr.dst, src)
            return
        if op == "bin":
            self._bin(instr)
            return
        if op == "cmp":
            self._cmp(instr)
            return
        if op == "neg":
            a = self._read(instr.a, _INT_SCRATCH[0])
            dst, pending = self._dst(instr.dst)
            self.emit(f"sub {dst}, x0, {a}")
            self._finish_dst(instr.dst, dst, pending)
            return
        if op == "bnot":
            a = self._read(instr.a, _INT_SCRATCH[0])
            dst, pending = self._dst(instr.dst)
            self.emit(f"xori {dst}, {a}, -1")
            self._finish_dst(instr.dst, dst, pending)
            return
        if op == "fneg":
            a = self._read(instr.a, _FP_SCRATCH[0])
            dst, pending = self._dst(instr.dst)
            self.emit(f"fneg.s {dst}, {a}")
            self._finish_dst(instr.dst, dst, pending)
            return
        if op == "cvt":
            self._cvt(instr)
            return
        if op == "la":
            dst, pending = self._dst(instr.dst)
            self.emit(f"la {dst}, {instr.symbol}")
            self._finish_dst(instr.dst, dst, pending)
            return
        if op == "laddr":
            dst, pending = self._dst(instr.dst)
            self.emit(f"addi {dst}, sp, {self.slot_offsets[instr.symbol]}")
            self._finish_dst(instr.dst, dst, pending)
            return
        if op == "load":
            self._load(instr)
            return
        if op == "store":
            self._store(instr)
            return
        if op == "call":
            self._call(instr)
            return
        if op == "ret":
            if instr.a is not None:
                if self.func.returns_float:
                    reg = self._read(instr.a, _FP_SCRATCH[0])
                    if reg != "fa0":
                        self.emit(f"fmv.s fa0, {reg}")
                else:
                    reg = self._read(instr.a, _INT_SCRATCH[0])
                    if reg != "a0":
                        self.emit(f"mv a0, {reg}")
            self.emit(f"j {self.epilogue_label}")
            return
        raise CTypeError(f"codegen: unhandled IR op '{op}'", instr.line)

    # ------------------------------------------------------------------
    def _bin(self, instr: IRInstr) -> None:
        sub = instr.sub_op
        is_float = sub.startswith("f")
        if is_float:
            a = self._read(instr.a, _FP_SCRATCH[0])
            b = self._read(instr.b, _FP_SCRATCH[1])
            dst, pending = self._dst(instr.dst)
            self.emit(f"{_BIN_INSTR[sub]} {dst}, {a}, {b}")
            self._finish_dst(instr.dst, dst, pending)
            return
        # immediate forms where the ISA has them
        if isinstance(instr.b, int) and sub in _IMM_FORM:
            imm = instr.b
            in_range = (0 <= imm <= 31) if sub in ("sll", "srl", "sra") \
                else (-2048 <= imm <= 2047)
            if in_range:
                a = self._read(instr.a, _INT_SCRATCH[0])
                dst, pending = self._dst(instr.dst)
                self.emit(f"{_IMM_FORM[sub]} {dst}, {a}, {imm}")
                self._finish_dst(instr.dst, dst, pending)
                return
        if isinstance(instr.a, int) and sub == "sub" \
                and -2048 <= -instr.a <= 2047 and instr.a == 0:
            pass  # handled by generic path (sub from x0)
        a = self._read(instr.a, _INT_SCRATCH[0])
        b = self._read(instr.b, _INT_SCRATCH[1])
        dst, pending = self._dst(instr.dst)
        self.emit(f"{_BIN_INSTR[sub]} {dst}, {a}, {b}")
        self._finish_dst(instr.dst, dst, pending)

    def _cmp(self, instr: IRInstr) -> None:
        sub = instr.sub_op
        if sub.startswith("f"):
            a = self._read(instr.a, _FP_SCRATCH[0])
            b = self._read(instr.b, _FP_SCRATCH[1])
            dst, pending = self._dst(instr.dst)
            mnem = {"feq": "feq.s", "flt": "flt.s", "fle": "fle.s"}[sub]
            self.emit(f"{mnem} {dst}, {a}, {b}")
            self._finish_dst(instr.dst, dst, pending)
            return
        a = self._read(instr.a, _INT_SCRATCH[0])
        dst, pending = self._dst(instr.dst)
        # special-case comparison against zero (seqz/snez idioms)
        if isinstance(instr.b, int) and instr.b == 0 and sub in ("eq", "ne"):
            self.emit(f"{'seqz' if sub == 'eq' else 'snez'} {dst}, {a}")
            self._finish_dst(instr.dst, dst, pending)
            return
        b = self._read(instr.b, _INT_SCRATCH[1])
        slt = "sltu" if sub in ("ltu", "leu", "gtu", "geu") else "slt"
        if sub in ("lt", "ltu"):
            self.emit(f"{slt} {dst}, {a}, {b}")
        elif sub in ("gt", "gtu"):
            self.emit(f"{slt} {dst}, {b}, {a}")
        elif sub in ("ge", "geu"):
            self.emit(f"{slt} {dst}, {a}, {b}")
            self.emit(f"xori {dst}, {dst}, 1")
        elif sub in ("le", "leu"):
            self.emit(f"{slt} {dst}, {b}, {a}")
            self.emit(f"xori {dst}, {dst}, 1")
        elif sub == "eq":
            self.emit(f"xor {dst}, {a}, {b}")
            self.emit(f"seqz {dst}, {dst}")
        else:  # ne
            self.emit(f"xor {dst}, {a}, {b}")
            self.emit(f"snez {dst}, {dst}")
        self._finish_dst(instr.dst, dst, pending)

    def _cvt(self, instr: IRInstr) -> None:
        sub = instr.sub_op
        if sub in ("i2f", "u2f"):
            a = self._read(instr.a, _INT_SCRATCH[0])
            dst, pending = self._dst(instr.dst)
            mnem = "fcvt.s.w" if sub == "i2f" else "fcvt.s.wu"
            self.emit(f"{mnem} {dst}, {a}")
        else:
            a = self._read(instr.a, _FP_SCRATCH[0])
            dst, pending = self._dst(instr.dst)
            mnem = "fcvt.w.s" if sub == "f2i" else "fcvt.wu.s"
            self.emit(f"{mnem} {dst}, {a}")
        self._finish_dst(instr.dst, dst, pending)

    def _load(self, instr: IRInstr) -> None:
        addr = self._read(instr.a, _ADDR_SCRATCH)
        offset = int(instr.b or 0)
        if not -2048 <= offset <= 2047:
            self.emit(f"li t0, {offset}")
            self.emit(f"add {_ADDR_SCRATCH}, {addr}, t0")
            addr, offset = _ADDR_SCRATCH, 0
        dst, pending = self._dst(instr.dst)
        if instr.dst.is_float:
            self.emit(f"flw {dst}, {offset}({addr})")
        else:
            mnem = _LOAD_INSTR[(instr.size, instr.signed)]
            self.emit(f"{mnem} {dst}, {offset}({addr})")
        self._finish_dst(instr.dst, dst, pending)

    def _store(self, instr: IRInstr) -> None:
        is_float = isinstance(instr.a, Temp) and instr.a.is_float \
            or isinstance(instr.a, float)
        value = self._read(instr.a,
                           _FP_SCRATCH[0] if is_float else _INT_SCRATCH[0])
        if instr.b is None:  # store into a named slot (parameter homing)
            offset = self.slot_offsets[instr.symbol]
            addr = "sp"
        else:
            addr = self._read(instr.b, _ADDR_SCRATCH)
            offset = int(instr.c or 0)
            if not -2048 <= offset <= 2047:
                self.emit(f"li t1, {offset}")
                self.emit(f"add {_ADDR_SCRATCH}, {addr}, t1")
                addr, offset = _ADDR_SCRATCH, 0
        if is_float:
            self.emit(f"fsw {value}, {offset}({addr})")
        else:
            self.emit(f"{_STORE_INSTR[instr.size]} {value}, {offset}({addr})")

    def _call(self, instr: IRInstr) -> None:
        int_idx = fp_idx = 0
        for arg in instr.args:
            is_float = isinstance(arg, Temp) and arg.is_float \
                or isinstance(arg, float)
            if is_float:
                target = f"fa{fp_idx}"
                fp_idx += 1
                reg = self._read(arg, target)
                if reg != target:
                    self.emit(f"fmv.s {target}, {reg}")
            else:
                target = f"a{int_idx}"
                int_idx += 1
                reg = self._read(arg, target)
                if reg != target:
                    self.emit(f"mv {target}, {reg}")
        self.emit(f"call {instr.symbol}")
        if instr.dst is not None:
            self._write_from_reg(instr.dst,
                                 "fa0" if instr.dst.is_float else "a0")


def generate(unit: IRUnit, opt_level: int = 1) -> str:
    """Emit assembly for an (optimized) IR unit."""
    return CodeGen(unit, opt_level).generate()
