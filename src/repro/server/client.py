"""HTTP client for the simulation server (used by the CLI and load tests)."""

from __future__ import annotations

import gzip
import http.client
import json
from typing import Optional

from repro.server.protocol import ApiError


class SimClient:
    """Thin JSON-over-HTTP client.

    Each client owns one keep-alive connection (a simulated "user" in the
    load test); it is not thread-safe — use one per thread.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8045,
                 use_gzip: bool = True, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.use_gzip = use_gzip
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def request(self, method: str, path: str,
                payload: Optional[dict] = None,
                retry_stale: bool = True) -> dict:
        """One JSON request/response exchange.

        ``retry_stale=False`` disables the transparent once-retry on a
        broken keep-alive connection — callers with their own retry
        policy (the remote sweep backend) must see the first transport
        failure, not a silently re-sent request that could execute the
        same job twice.
        """
        body = None
        headers = {"Accept": "application/json"}
        if self.use_gzip:
            headers["Accept-Encoding"] = "gzip"
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        conn = self._connection()
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        except (http.client.HTTPException, OSError):
            # stale keep-alive connection: retry once on a fresh one
            self.close()
            if not retry_stale:
                raise
            conn = self._connection()
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        if response.getheader("Content-Encoding", "") == "gzip":
            raw = gzip.decompress(raw)
        data = json.loads(raw.decode("utf-8")) if raw else {}
        if response.status >= 400:
            raise ApiError(data.get("error", f"HTTP {response.status}"),
                           status=response.status)
        return data

    # -- convenience wrappers ---------------------------------------------
    def health(self) -> dict:
        return self.request("GET", "/health")

    def schema(self) -> dict:
        return self.request("GET", "/schema")

    def compile(self, code: str, optimize_level: int = 1) -> dict:
        return self.request("POST", "/compile",
                            {"code": code, "optimizeLevel": optimize_level})

    def parse_asm(self, code: str, **kw) -> dict:
        return self.request("POST", "/parseAsm", {"code": code, **kw})

    def simulate(self, code: str, **kw) -> dict:
        return self.request("POST", "/simulate", {"code": code, **kw})

    def session_new(self, code: str, **kw) -> str:
        out = self.request("POST", "/session/new", {"code": code, **kw})
        if not out.get("success"):
            raise ApiError(f"session creation failed: {out.get('errors')}")
        return out["sessionId"]

    def session_step(self, session_id: str, cycles: int = 1,
                     delta: bool = False) -> dict:
        """Step a session.  With ``delta=True`` the server sends only what
        changed since the last served view (protocol v2); patch it onto the
        previous full state with
        :func:`repro.sim.state.apply_snapshot_delta`."""
        return self.request("POST", "/session/step",
                            {"sessionId": session_id, "cycles": cycles,
                             "delta": "encoded" if delta else False})

    def session_state(self, session_id: str) -> dict:
        return self.request("POST", "/session/state",
                            {"sessionId": session_id})

    def session_seek(self, session_id: str, cycle: int) -> dict:
        return self.request("POST", "/session/seek",
                            {"sessionId": session_id, "cycle": cycle})

    def session_memory(self, session_id: str, **kw) -> dict:
        """Memory view: pass ``symbol=`` or ``address=``/``size=``, plus an
        optional ``dtype=`` and ``sinceVersion=`` (unchanged check)."""
        return self.request("POST", "/session/memory",
                            {"sessionId": session_id, **kw})

    def session_close(self, session_id: str) -> dict:
        return self.request("POST", "/session/close",
                            {"sessionId": session_id})

    # -- design-space sweeps (repro.explore) ----------------------------
    def explore_submit(self, spec: dict, workers: Optional[int] = None,
                       metric: str = "cycles",
                       job_timeout_s: Optional[float] = None) -> dict:
        """Queue a sweep; returns ``{"sweepId", "jobs", "workers"}``."""
        payload: dict = {"spec": spec, "metric": metric}
        if workers is not None:
            payload["workers"] = workers
        if job_timeout_s is not None:
            payload["jobTimeoutS"] = job_timeout_s
        return self.request("POST", "/explore/submit", payload)

    def explore_status(self, sweep_id: str) -> dict:
        return self.request("POST", "/explore/status", {"sweepId": sweep_id})

    def explore_result(self, sweep_id: str, metric: str = "cycles") -> dict:
        """Records + comparison report of a finished sweep (409 while it
        is still queued/running — poll :meth:`explore_status` first)."""
        return self.request("POST", "/explore/result",
                            {"sweepId": sweep_id, "metric": metric})

    # -- distributed sweep worker (protocol v4) -------------------------
    def worker_execute(self, job_payload: dict) -> dict:
        """Run one planned sweep job on a remote sweep worker.

        Returns the worker's ``{"ok", "value" | "kind"/"error", ...}``
        reply.  The stale-connection retry is off: the caller
        (:class:`repro.explore.backend.RemoteBackend`) owns retry policy,
        and a transparently re-sent job could execute twice."""
        return self.request("POST", "/worker/execute",
                            {"payload": job_payload}, retry_stale=False)
