"""HTTP client for the simulation server (used by the CLI and load tests)."""

from __future__ import annotations

import gzip
import http.client
import json
from typing import Optional

from repro.server.protocol import ApiError


class SimClient:
    """Thin JSON-over-HTTP client.

    Each client owns one keep-alive connection (a simulated "user" in the
    load test); it is not thread-safe — use one per thread.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8045,
                 use_gzip: bool = True, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.use_gzip = use_gzip
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def request(self, method: str, path: str,
                payload: Optional[dict] = None,
                retry_stale: bool = True) -> dict:
        """One JSON request/response exchange.

        ``retry_stale=False`` disables the transparent once-retry on a
        broken keep-alive connection — callers with their own retry
        policy (the remote sweep backend) must see the first transport
        failure, not a silently re-sent request that could execute the
        same job twice.
        """
        body = None
        headers = {"Accept": "application/json"}
        if self.use_gzip:
            headers["Accept-Encoding"] = "gzip"
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        conn = self._connection()
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        except (http.client.HTTPException, OSError):
            # stale keep-alive connection: retry once on a fresh one
            self.close()
            if not retry_stale:
                raise
            conn = self._connection()
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        if response.getheader("Content-Encoding", "") == "gzip":
            raw = gzip.decompress(raw)
        data = json.loads(raw.decode("utf-8")) if raw else {}
        if response.status >= 400:
            raise ApiError(data.get("error", f"HTTP {response.status}"),
                           status=response.status)
        return data

    # -- convenience wrappers ---------------------------------------------
    def health(self) -> dict:
        return self.request("GET", "/health")

    def schema(self) -> dict:
        return self.request("GET", "/schema")

    def compile(self, code: str, optimize_level: int = 1) -> dict:
        return self.request("POST", "/compile",
                            {"code": code, "optimizeLevel": optimize_level})

    def parse_asm(self, code: str, **kw) -> dict:
        return self.request("POST", "/parseAsm", {"code": code, **kw})

    def simulate(self, code: str, **kw) -> dict:
        return self.request("POST", "/simulate", {"code": code, **kw})

    def session_new(self, code: str, **kw) -> str:
        out = self.request("POST", "/session/new", {"code": code, **kw})
        if not out.get("success"):
            raise ApiError(f"session creation failed: {out.get('errors')}")
        return out["sessionId"]

    def session_step(self, session_id: str, cycles: int = 1,
                     delta: bool = False) -> dict:
        """Step a session.  With ``delta=True`` the server sends only what
        changed since the last served view (protocol v2); patch it onto the
        previous full state with
        :func:`repro.sim.state.apply_snapshot_delta`."""
        return self.request("POST", "/session/step",
                            {"sessionId": session_id, "cycles": cycles,
                             "delta": "encoded" if delta else False})

    def session_state(self, session_id: str) -> dict:
        return self.request("POST", "/session/state",
                            {"sessionId": session_id})

    def session_seek(self, session_id: str, cycle: int) -> dict:
        """Jump the session to an absolute cycle.

        The response's ``fastForward`` field (protocol v6) reports how
        many cycles of the move the server served uninstrumented via
        checkpoint-seeded fast-forward (0 = stepped / checkpoint replay
        only)."""
        return self.request("POST", "/session/seek",
                            {"sessionId": session_id, "cycle": cycle})

    def session_memory(self, session_id: str, **kw) -> dict:
        """Memory view: pass ``symbol=`` or ``address=``/``size=``, plus an
        optional ``dtype=`` and ``sinceVersion=`` (unchanged check)."""
        return self.request("POST", "/session/memory",
                            {"sessionId": session_id, **kw})

    def session_close(self, session_id: str) -> dict:
        return self.request("POST", "/session/close",
                            {"sessionId": session_id})

    # -- design-space sweeps (repro.explore) ----------------------------
    def explore_submit(self, spec: dict, workers: Optional[int] = None,
                       metric: str = "cycles",
                       job_timeout_s: Optional[float] = None,
                       backend: Optional[str] = None,
                       trace: Optional[bool] = None) -> dict:
        """Queue a sweep; returns ``{"sweepId", "jobs", "workers"}``.

        ``backend`` picks the server-side execution backend:
        ``"serial"``, ``"process"``, or ``"fleet"`` (the server's
        registered worker fleet — protocol v5); ``None`` keeps the
        historical ``workers`` inference.  ``trace=False`` opts the
        sweep out of span collection (protocol v7; default on)."""
        payload: dict = {"spec": spec, "metric": metric}
        if workers is not None:
            payload["workers"] = workers
        if job_timeout_s is not None:
            payload["jobTimeoutS"] = job_timeout_s
        if backend is not None:
            payload["backend"] = backend
        if trace is not None:
            payload["trace"] = trace
        return self.request("POST", "/explore/submit", payload)

    def explore_status(self, sweep_id: str) -> dict:
        return self.request("POST", "/explore/status", {"sweepId": sweep_id})

    def explore_result(self, sweep_id: str, metric: str = "cycles") -> dict:
        """Records + comparison report of a finished sweep (409 while it
        is still queued/running — poll :meth:`explore_status` first)."""
        return self.request("POST", "/explore/result",
                            {"sweepId": sweep_id, "metric": metric})

    def explore_cancel(self, sweep_id: str,
                       reason: Optional[str] = None) -> dict:
        """Cancel a queued/running sweep (protocol v5): queued sweeps are
        dequeued, running ones drain and stop in-flight jobs within one
        cancel-check stride."""
        payload: dict = {"sweepId": sweep_id}
        if reason is not None:
            payload["reason"] = reason
        return self.request("POST", "/explore/cancel", payload)

    def explore_events(self, sweep_id: str, from_seq: int = 0) -> dict:
        """One poll of a sweep's progress-event log."""
        return self.request("POST", "/explore/events",
                            {"sweepId": sweep_id, "fromSeq": from_seq})

    def explore_stream(self, sweep_id: str, from_seq: int = 0,
                       timeout: Optional[float] = None):
        """Follow a sweep live: yields progress-event dicts from the
        chunked ``GET /explore/stream`` until the terminal event.

        Uses a dedicated connection (the stream occupies it for the
        sweep's whole lifetime) with a generous default timeout —
        events can be minutes apart on a long sweep."""
        conn = http.client.HTTPConnection(
            self.host, self.port,
            timeout=timeout if timeout is not None else 600.0)
        try:
            conn.request("GET",
                         f"/explore/stream?sweepId={sweep_id}"
                         f"&fromSeq={int(from_seq)}",
                         headers={"Accept": "application/x-ndjson"})
            response = conn.getresponse()
            if response.status >= 400:
                raw = response.read()
                data = json.loads(raw.decode("utf-8")) if raw else {}
                raise ApiError(data.get("error",
                                        f"HTTP {response.status}"),
                               status=response.status)
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            conn.close()

    # -- telemetry plane (protocol v7) ----------------------------------
    def metrics(self) -> dict:
        """Telemetry scrape: counters, gauges, histograms (JSON)."""
        return self.request("GET", "/metrics")

    def metrics_text(self) -> str:
        """Prometheus text exposition of the same scrape.

        Uses a dedicated plain-text exchange (the shared :meth:`request`
        path assumes JSON bodies)."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("GET", "/metrics?format=prometheus",
                         headers={"Accept": "text/plain"})
            response = conn.getresponse()
            raw = response.read()
            if response.status >= 400:
                raise ApiError(f"HTTP {response.status}",
                               status=response.status)
            return raw.decode("utf-8")
        finally:
            conn.close()

    def trace(self, sweep_id: str) -> dict:
        """One sweep's span tree (``GET /trace/<sweepId>``): root sweep
        span, queue wait, and per-job dispatch/compile/simulate/record
        spans — renderable with
        :func:`repro.viz.render_span_waterfall` or exportable as
        NDJSON."""
        return self.request("GET", "/trace" + f"/{sweep_id}")

    # -- fleet registry (protocol v5) -----------------------------------
    def fleet_register(self, url: str, capacity: int = 1,
                       cache: Optional[dict] = None) -> dict:
        """Register (or heartbeat) a worker in the server's fleet
        registry; *url* is the worker's address as reachable from the
        server."""
        payload: dict = {"url": url, "capacity": capacity}
        if cache is not None:
            payload["cache"] = cache
        return self.request("POST", "/fleet/register", payload)

    def fleet_status(self) -> dict:
        """Worker-registry snapshot (health rows, exclusion reasons)."""
        return self.request("GET", "/fleet/status")

    # -- distributed sweep worker (protocol v4/v5) ----------------------
    def worker_execute(self, job_payload: dict,
                       cancel_id: Optional[str] = None) -> dict:
        """Run one planned sweep job on a remote sweep worker.

        Returns the worker's ``{"ok", "value" | "kind"/"error", ...}``
        reply.  The stale-connection retry is off: the caller
        (:class:`repro.explore.backend.RemoteBackend`) owns retry policy,
        and a transparently re-sent job could execute twice.
        *cancel_id* makes the job cooperatively cancellable via
        :meth:`worker_cancel` from another connection."""
        payload: dict = {"payload": job_payload}
        if cancel_id is not None:
            payload["cancelId"] = cancel_id
        return self.request("POST", "/worker/execute", payload,
                            retry_stale=False)

    def worker_cancel(self, cancel_id: str,
                      reason: Optional[str] = None) -> dict:
        """Fire the cancel token of an in-flight ``worker_execute``."""
        payload: dict = {"cancelId": cancel_id}
        if reason is not None:
            payload["reason"] = reason
        return self.request("POST", "/worker/cancel", payload)

    def worker_status(self) -> dict:
        """Worker health: artifact-cache stats + active-job gauge."""
        return self.request("GET", "/worker/status")

    # -- artifact data plane (protocol v8) -------------------------------
    def artifact(self, key: str) -> dict:
        """Fetch one content-addressed artifact by its SHA-256 key
        (``GET /artifact/<key>``): compiled assembly, a registered
        program spec, or a compile-on-demand recipe result.  Raises
        :class:`ApiError` 404 for keys the server does not know."""
        return self.request("GET", "/artifact" + f"/{key}")

    def artifact_prefetch(self, artifacts: list) -> dict:
        """Announce artifact references for background warm-up on a
        worker (``POST /artifact/prefetch``); *artifacts* is a list of
        ``{sourceKey, compileKey?, fetchFrom}`` references as produced
        by :meth:`repro.explore.artifacts.ArtifactCache.register_program`."""
        return self.request("POST", "/artifact/prefetch",
                            {"artifacts": artifacts})

    # -- result warehouse (protocol v9) ----------------------------------
    def warehouse_query(self, sweep: Optional[str] = None,
                        program: Optional[str] = None,
                        axes: Optional[dict] = None,
                        since: Optional[float] = None,
                        until: Optional[float] = None,
                        metrics: Optional[list] = None,
                        limit: Optional[int] = None) -> dict:
        """Query the cross-run result warehouse (``/warehouse/query``):
        rows filtered by sweep id/name, program, axis point values, or
        ingest-time range, plus min/p50/p90/max summaries for *metrics*."""
        payload = {key: value for key, value in
                   (("sweep", sweep), ("program", program), ("axes", axes),
                    ("since", since), ("until", until),
                    ("metrics", metrics), ("limit", limit))
                   if value is not None}
        return self.request("POST", "/warehouse/query", payload)

    def warehouse_pareto(self, x: str = "cycles", y: str = "energy",
                         sweep: Optional[str] = None,
                         program: Optional[str] = None,
                         axes: Optional[dict] = None) -> dict:
        """Direction-aware Pareto frontier over the metric pair (x, y)
        across the warehouse (``/warehouse/pareto``), with per-point
        dominated counts — renderable with
        :func:`repro.viz.render_pareto_frontier`."""
        payload: dict = {"x": x, "y": y}
        payload.update({key: value for key, value in
                        (("sweep", sweep), ("program", program),
                         ("axes", axes))
                        if value is not None})
        return self.request("POST", "/warehouse/pareto", payload)

    def warehouse_regressions(self, sweep: Optional[str] = None,
                              tolerance: Optional[float] = None,
                              metrics: Optional[list] = None) -> dict:
        """Regression-sentinel diff against the pinned baseline sweep
        (``/warehouse/regressions``); raises :class:`ApiError` 409 until
        a baseline is pinned via :meth:`warehouse_baseline`."""
        payload = {key: value for key, value in
                   (("sweep", sweep), ("tolerance", tolerance),
                    ("metrics", metrics))
                   if value is not None}
        return self.request("POST", "/warehouse/regressions", payload)

    def warehouse_baseline(self, sweep_id: str) -> dict:
        """Pin *sweep_id* as the warehouse regression baseline
        (``POST /warehouse/baseline``)."""
        return self.request("POST", "/warehouse/baseline",
                            {"sweepId": sweep_id})
