"""Interactive simulation sessions.

The web client holds a session per open simulator tab; each session wraps a
:class:`repro.sim.simulation.Simulation` and supports forward steps,
backward steps (deterministic re-run, Sec. III-B) and cycle seeking.
Sessions are identified by opaque ids and evicted after a TTL.
"""

from __future__ import annotations

import threading
import time
import uuid
from typing import Dict, Optional, Sequence

from repro.core.config import CpuConfig
from repro.memory.layout import MemoryLocation
from repro.sim.simulation import Simulation


class Session:
    def __init__(self, simulation: Simulation):
        self.id = uuid.uuid4().hex[:16]
        self.simulation = simulation
        self.created = time.monotonic()
        self.last_used = self.created
        self.lock = threading.Lock()
        #: cycle of the last state payload served to this session's client —
        #: the base the next delta payload is computed against (None until a
        #: first full state has been served)
        self.view_cycle: Optional[int] = None

    def touch(self) -> None:
        self.last_used = time.monotonic()

    # -- delta-serving state views (hold ``lock`` while calling) ---------
    def serve_state(self) -> dict:
        """Full snapshot; establishes the delta base for later requests."""
        state = self.simulation.snapshot()
        self.view_cycle = state["cycle"]
        return state

    def serve_delta(self) -> dict:
        """Delta against the last served view (full when no base exists or
        time moved backwards); see ``Simulation.snapshot_delta``."""
        delta = self.simulation.snapshot_delta(since_cycle=self.view_cycle)
        self.view_cycle = (delta["state"]["cycle"]
                          if delta["format"] == "full" else delta["cycle"])
        return delta

    def serve_delta_json(self) -> str:
        """Pre-serialized :meth:`serve_delta` assembled from the state
        engine's fragment caches (``Simulation.snapshot_delta_json``)."""
        text = self.simulation.snapshot_delta_json(since_cycle=self.view_cycle)
        self.view_cycle = self.simulation.cycle
        return text


class SessionManager:
    """Thread-safe registry of live sessions."""

    def __init__(self, ttl_s: float = 600.0, max_sessions: int = 256):
        self.ttl_s = ttl_s
        self.max_sessions = max_sessions
        self._sessions: Dict[str, Session] = {}
        self._lock = threading.Lock()

    def create(self, source: str, config: Optional[CpuConfig] = None,
               entry: Optional[object] = None,
               memory_locations: Sequence[MemoryLocation] = ()) -> Session:
        simulation = Simulation.from_source(
            source, config=config, entry=entry,
            memory_locations=memory_locations)
        session = Session(simulation)
        with self._lock:
            self._evict_locked()
            if len(self._sessions) >= self.max_sessions:
                oldest = min(self._sessions.values(),
                             key=lambda s: s.last_used)
                del self._sessions[oldest.id]
            self._sessions[session.id] = session
        return session

    def get(self, session_id: str) -> Optional[Session]:
        with self._lock:
            session = self._sessions.get(session_id)
            if session is not None:
                session.touch()
            return session

    def close(self, session_id: str) -> bool:
        with self._lock:
            return self._sessions.pop(session_id, None) is not None

    def _evict_locked(self) -> None:
        now = time.monotonic()
        stale = [sid for sid, s in self._sessions.items()
                 if now - s.last_used > self.ttl_s]
        for sid in stale:
            del self._sessions[sid]

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)
