"""JSON API protocol layer (transport-independent request handlers).

Endpoints mirror the paper's server API:

========================  ===================================================
``POST /compile``         C source -> assembly (+ errors, C<->asm line map)
``POST /parseAsm``        syntax-check assembly (editor squiggles, Fig. 7)
``POST /simulate``        batch run: code + architecture -> statistics (CLI)
``POST /session/new``     create an interactive session
``POST /session/step``    advance (or step back, negative cycles) a session
``POST /session/state``   full processor snapshot of a session
``POST /session/seek``    jump to an absolute cycle (log navigation)
``POST /session/close``   drop a session
``POST /explore/submit``  queue a design-space sweep (repro.explore)
``POST /explore/status``  sweep progress (state, jobs completed/failed)
``POST /explore/result``  per-run records + comparison report
``POST /explore/cancel``  cancel a queued/running sweep (fires its token)
``POST /explore/events``  one poll of a sweep's progress-event log
``GET  /explore/stream``  chunked NDJSON live event stream (HTTP layer)
``POST /fleet/register``  worker registration + heartbeat (repro.fleet)
``GET  /fleet/status``    worker-registry snapshot (health rows)
``POST /worker/execute``  run one planned sweep job (distributed sweeps)
``POST /worker/cancel``   fire the cancel token of an in-flight job
``GET  /worker/status``   artifact-cache stats + active-job gauge
``GET  /warehouse/query`` cross-run result warehouse: rows + summaries
``GET  /warehouse/pareto``  Pareto frontier over any metric pair
``GET  /warehouse/regressions``  sentinel diff vs the pinned baseline
``POST /warehouse/baseline``  pin a sweep as the regression baseline
``GET  /metrics``         telemetry scrape (JSON; Prometheus text at HTTP)
``GET  /trace/<sweepId>`` one sweep's span tree (queue/dispatch/compile/...)
``GET  /schema``          machine-readable endpoint list
``GET  /health``          liveness probe (+ fleet health rows)
========================  ===================================================

Handlers receive/return plain dicts; the HTTP layer (or the in-process test
harness) does (de)serialization, so the JSON cost the paper measures can be
benchmarked separately from the simulation cost.

Session work (``session/step`` and friends) does **not** run on the
calling (HTTP) thread: it is dispatched onto a
:class:`repro.explore.pool.KeyedThreadPool` keyed by session id — the same
pool abstraction the experiment engine uses for sweeps.  Per-key FIFO
queues keep each session's requests strictly ordered while a heavy session
occupies at most one executor, so concurrent sessions cannot block each
other behind it.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence
from urllib.parse import parse_qs

from repro.asm.parser import Assembler
from repro.compiler.driver import compile_c
from repro.core.config import CpuConfig
from repro.errors import (AsmSyntaxError, ConfigError, MemoryAccessError,
                          ReproError, SourceError)
from repro.explore.artifacts import ArtifactCache, ArtifactUnavailable
from repro.explore.pool import CANCELLED_MESSAGE, KeyedThreadPool
from repro.explore.report import MetricError
from repro.explore.service import ExploreManager
from repro.explore.spec import SweepSpecError
from repro.explore.warehouse import (BaselineMissing, ResultWarehouse,
                                     WarehouseError)
from repro.fleet.cancel import CancelRegistry
from repro.fleet.registry import WorkerRegistry
from repro.fleet.scheduler import FleetError, FleetScheduler
from repro.memory.layout import MemoryLocation, decode_values
from repro.obs.metrics import default_registry, render_prometheus
from repro.server.session import SessionManager
from repro.sim.simulation import DEFAULT_CANCEL_STRIDE
from repro.sim.state import SNAPSHOT_SCHEMA_VERSION, RawJson

#: wire-protocol version served by this module.  v2 added delta state
#: payloads (``/session/step`` with ``"delta": true``), the
#: ``/session/memory`` view, checkpointed seeking, and strict cycle-count
#: validation.  v3 adds the ``/explore/*`` design-space sweep endpoints
#: and moves session simulation onto a worker pool.  v4 adds the
#: ``/worker/execute`` sweep-worker endpoint (distributed sweeps fan jobs
#: out to a fleet of these servers), checkpoint-ring memory gauges on the
#: ``session/*`` payloads, and the enriched ``/explore/status`` (wall-time
#: summary, queued/running job ids).  v5 adds the fleet-orchestration
#: surface: ``/fleet/register`` heartbeats + fleet health rows in
#: ``/health``, server-owned ``"backend": "fleet"`` sweeps on
#: ``/explore/submit``, cooperative cancellation (``/explore/cancel`` ->
#: ``/worker/cancel`` -> the simulation's cancel-stride check), live
#: progress (``/explore/events`` + chunked ``/explore/stream``), and
#: ``/worker/status`` cache metrics.  v6 adds the ``fastForward`` field
#: on ``/session/seek`` responses: the cycles of the move served by the
#: uninstrumented fast path (checkpoint-seeded fast-forward through the
#: superblock trace tier), 0 when the move was stepped or replayed from a
#: nearby checkpoint.  v7 adds the telemetry plane: ``GET /metrics``
#: (registry scrape; JSON here, Prometheus text exposition at the HTTP
#: layer via ``?format=prometheus``), ``GET /trace/<sweepId>`` (one
#: sweep's span tree — queue wait, dispatch, per-job compile/simulate/
#: record), trace-context propagation through ``/explore/submit`` job
#: payloads and ``/worker/execute`` (whose replies gain ``spans``), the
#: ``"trace"`` opt-out on submit, and ``lastHeartbeatAgeS`` on fleet
#: health rows.  v8 adds the fleet artifact data plane:
#: ``GET /artifact/<key>`` serves content-addressed compile/assembly
#: artifacts out of the server's cache, ``POST /artifact/prefetch``
#: warm-pushes a sweep's key-set to a worker at first dispatch,
#: ``/worker/execute`` payloads may carry an ``artifactRef``
#: (``{sourceKey, compileKey?, fetchFrom}``) instead of the inline
#: program — unresolvable references answer ``kind:
#: "artifactUnavailable"`` and the dispatcher re-sends the job inline —
#: and heartbeat cache stats gain the advertised compiled-key set used
#: for peer-worker fetch hints.  v9 adds the cross-run result warehouse:
#: every sweep that finishes ``done`` is ingested into an indexed,
#: append-only store; ``GET /warehouse/query`` filters rows by
#: sweep/program/axis value/ingest time and serves shared nearest-rank
#: metric summaries, ``GET /warehouse/pareto`` extracts direction-aware
#: Pareto frontiers over any metric pair, ``POST /warehouse/baseline``
#: pins a baseline sweep, and ``GET /warehouse/regressions`` diffs
#: matching configs (by record label) against it, flagging metric
#: deltas beyond a tolerance (409 until a baseline is pinned).  The
#: warehouse GETs accept their filters as query strings; POST bodies
#: work identically.  v1-v8 clients keep working.
PROTOCOL_VERSION = 9

#: executors session work is dispatched onto (per-session FIFO queues keep
#: request order; the count bounds how many sessions simulate at once)
DEFAULT_SESSION_WORKERS = 8

#: upper bound for one step request; larger forward runs should be issued
#: as repeated (batched) step requests so sessions stay responsive and a
#: typo cannot pin a worker for minutes
MAX_STEP_CYCLES = 100_000

#: fallback upper bound for an absolute seek target; the effective bound
#: is the session's own ``max_cycles`` budget (the simulation halts there,
#: so any larger target would only pin a worker replaying a halted machine)
MAX_SEEK_CYCLE = 10_000_000


class ApiError(Exception):
    """Protocol-level error with an HTTP-ish status code."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.message = message
        self.status = status

    def to_json(self) -> dict:
        return {"error": self.message, "status": self.status}


def _parse_memory_locations(payload: dict) -> List[MemoryLocation]:
    locations = payload.get("memory", [])
    try:
        return [MemoryLocation.from_json(d) for d in locations]
    except (ConfigError, KeyError, TypeError) as exc:
        raise ApiError(f"invalid memory configuration: {exc}") from exc


def _parse_config(payload: dict) -> Optional[CpuConfig]:
    data = payload.get("config")
    if data is None:
        return None
    try:
        if isinstance(data, str):
            return CpuConfig.preset(data)
        return CpuConfig.from_json(data)
    except ConfigError as exc:
        raise ApiError(f"invalid architecture configuration: {exc}") from exc


SCHEMA = {
    "protocolVersion": PROTOCOL_VERSION,
    "snapshotSchema": SNAPSHOT_SCHEMA_VERSION,
    "endpoints": [
        {"method": "POST", "path": "/compile",
         "body": {"code": "C source", "optimizeLevel": "0..3"}},
        {"method": "POST", "path": "/parseAsm", "body": {"code": "assembly"}},
        {"method": "POST", "path": "/simulate",
         "body": {"code": "assembly", "config": "architecture JSON or preset",
                  "entry": "label/address?", "memory": "[MemoryLocation]?",
                  "maxCycles": "int?", "fullState": "bool?"}},
        {"method": "POST", "path": "/session/new",
         "body": {"code": "assembly", "config": "...", "entry": "...",
                  "memory": "..."}},
        {"method": "POST", "path": "/session/step",
         "body": {"sessionId": "id",
                  "cycles": "non-zero int (negative = backward), "
                            f"|cycles| <= {MAX_STEP_CYCLES}",
                  "delta": "bool | 'encoded'? (serve a delta against the "
                           "last view; 'encoded' = pre-serialized)"}},
        {"method": "POST", "path": "/session/state",
         "body": {"sessionId": "id"}},
        {"method": "POST", "path": "/session/seek",
         "body": {"sessionId": "id", "cycle": "int >= 0"}},
        {"method": "POST", "path": "/session/memory",
         "body": {"sessionId": "id", "address": "int? (or 'symbol')",
                  "symbol": "label/array name?", "size": "bytes?",
                  "dtype": "word/float/... (typed values view)?",
                  "sinceVersion": "int? (unchanged check)"}},
        {"method": "POST", "path": "/session/close",
         "body": {"sessionId": "id"}},
        {"method": "POST", "path": "/explore/submit",
         "body": {"spec": "sweep spec JSON (see repro.explore.spec)",
                  "workers": "int? (0 = serial)",
                  "backend": "serial/process/fleet? (default inferred "
                             "from workers; 'fleet' runs on registered "
                             "fleet workers)",
                  "metric": "ranking metric? (default 'cycles')",
                  "jobTimeoutS": "number? per-job wall-clock budget",
                  "trace": "bool? (default true) collect the sweep's "
                           "span tree for GET /trace/<sweepId>"}},
        {"method": "POST", "path": "/explore/status",
         "body": {"sweepId": "id"}},
        {"method": "POST", "path": "/explore/result",
         "body": {"sweepId": "id", "metric": "ranking metric?"}},
        {"method": "POST", "path": "/explore/cancel",
         "body": {"sweepId": "id", "reason": "string?"}},
        {"method": "POST", "path": "/explore/events",
         "body": {"sweepId": "id", "fromSeq": "int? (default 0)"}},
        {"method": "GET", "path": "/explore/stream",
         "query": {"sweepId": "id", "fromSeq": "int? (default 0)"},
         "notes": "chunked NDJSON progress events, ends after the "
                  "terminal event (SimClient.explore_stream)"},
        {"method": "POST", "path": "/fleet/register",
         "body": {"url": "worker host:port (as reachable from this "
                         "server)",
                  "capacity": "int? advertised parallel-job capacity",
                  "cache": "worker artifact-cache stats? "
                           "(surfaced on fleet health rows)"}},
        {"method": "GET", "path": "/fleet/status"},
        {"method": "POST", "path": "/worker/execute",
         "body": {"payload": "one planned sweep-job payload "
                             "(see repro.explore.plan); its 'program' "
                             "may be an artifactRef instead of inline "
                             "source",
                  "cancelId": "string? cooperative-cancel handle "
                              "(fire it via /worker/cancel)"}},
        {"method": "GET", "path": "/artifact/<key>",
         "notes": "content-addressed artifact fetch (data plane): "
                  "compiled assembly, registered program specs, and "
                  "compile recipes served by SHA-256 key; 404 for "
                  "unknown keys (SimClient.artifact)"},
        {"method": "POST", "path": "/artifact/prefetch",
         "body": {"artifacts": "[{sourceKey, compileKey?, fetchFrom}] "
                               "references to warm in the background"}},
        {"method": "POST", "path": "/worker/cancel",
         "body": {"cancelId": "id from the matching /worker/execute",
                  "reason": "string?"}},
        {"method": "GET", "path": "/worker/status"},
        {"method": "GET", "path": "/warehouse/query",
         "query": {"sweep": "sweep id or name?", "program": "program name?",
                   "axes": "'axis=value,...'? (an object in a POST body)",
                   "since": "ingest-time lower bound (epoch seconds)?",
                   "until": "ingest-time upper bound?",
                   "metrics": "comma-separated summary metrics?",
                   "limit": "max rows returned?"},
         "notes": "cross-run result warehouse: filtered records plus "
                  "min/p50/p90/max metric summaries (POST body works "
                  "identically)"},
        {"method": "GET", "path": "/warehouse/pareto",
         "query": {"x": "metric? (default 'cycles')",
                   "y": "metric? (default 'energy')",
                   "sweep": "sweep id or name?", "program": "program?",
                   "axes": "'axis=value,...'?"},
         "notes": "direction-aware Pareto frontier over any metric "
                  "pair, with per-point dominated counts"},
        {"method": "GET", "path": "/warehouse/regressions",
         "query": {"sweep": "diff one sweep? (default: every "
                            "non-baseline sweep)",
                   "tolerance": "relative worse-direction delta? "
                                "(default 0.05)",
                   "metrics": "comma-separated? "
                              "(default cycles,energy,area)"},
         "notes": "regression sentinel: configs matched by label are "
                  "diffed against the pinned baseline sweep; 409 until "
                  "one is pinned via POST /warehouse/baseline"},
        {"method": "POST", "path": "/warehouse/baseline",
         "body": {"sweepId": "ingested sweep to pin as the regression "
                             "baseline"}},
        {"method": "GET", "path": "/metrics",
         "query": {"format": "'prometheus'? (HTTP layer; default JSON)"},
         "notes": "process-wide telemetry scrape: counters, gauges, "
                  "histograms with nearest-rank summaries"},
        {"method": "GET", "path": "/trace/<sweepId>",
         "notes": "one sweep's span tree (root sweep span, queueWait, "
                  "per-job dispatch + worker compile/simulate/record), "
                  "exportable as NDJSON via SimClient.trace"},
        {"method": "GET", "path": "/schema"},
        {"method": "GET", "path": "/health"},
    ],
}

#: route label set for the request counter — unmatched paths collapse to
#: "other" so a 404 scan cannot explode the label cardinality
_COUNTED_ROUTES = frozenset((
    "/", "/schema", "/health", "/compile", "/parseAsm", "/simulate",
    "/session/new", "/session/step", "/session/state", "/session/seek",
    "/session/memory", "/session/close", "/explore/submit",
    "/explore/status", "/explore/result", "/explore/cancel",
    "/explore/events", "/explore/stream", "/fleet/register",
    "/fleet/status", "/worker/execute", "/worker/cancel",
    "/worker/status", "/metrics", "/trace", "/artifact",
    "/artifact/prefetch", "/warehouse/query", "/warehouse/pareto",
    "/warehouse/regressions", "/warehouse/baseline",
))

_REQUESTS = default_registry().counter(
    "repro_requests_total", "API requests handled, by method and route")
_WORKER_JOBS = default_registry().counter(
    "repro_worker_jobs_total", "/worker/execute jobs, by outcome kind")
_WORKER_EXECUTE_SECONDS = default_registry().histogram(
    "repro_worker_execute_seconds", "Wall time of /worker/execute jobs")
_SESSIONS_LIVE = default_registry().gauge(
    "repro_sessions_live", "Interactive sessions currently open")
_SESSION_POOL_PENDING = default_registry().gauge(
    "repro_session_pool_pending",
    "Session-pool tasks queued or running")
_SWEEP_QUEUE = default_registry().gauge(
    "repro_sweep_queue_depth", "Explore-queue depth, by sweep state")
_FLEET_WORKERS = default_registry().gauge(
    "repro_fleet_workers", "Fleet registry population, by liveness")
_HEARTBEAT_AGE = default_registry().gauge(
    "repro_fleet_worker_heartbeat_age_seconds",
    "Seconds since each known worker's last heartbeat")


class Api:
    """All protocol handlers bound to one session manager.

    ``session_workers`` sizes the :class:`KeyedThreadPool` session work
    runs on (threads start lazily, so idle Apis cost nothing); ``explore``
    may inject a pre-configured :class:`ExploreManager` (the HTTP entry
    point passes worker counts through); ``fleet`` a pre-configured
    :class:`WorkerRegistry` (tests inject short TTLs / fake clocks).
    ``cancel_stride`` is the cooperative-cancel check interval (cycles)
    for jobs this server executes via ``/worker/execute``.
    """

    def __init__(self, sessions: Optional[SessionManager] = None,
                 explore: Optional[ExploreManager] = None,
                 session_workers: int = DEFAULT_SESSION_WORKERS,
                 fleet: Optional[WorkerRegistry] = None,
                 cancel_stride: int = DEFAULT_CANCEL_STRIDE):
        # explicit None checks: both managers define __len__, so an empty
        # (still perfectly valid) instance is falsy and `or` would drop it
        self.sessions = sessions if sessions is not None else SessionManager()
        self.explore = explore if explore is not None else ExploreManager()
        self.session_pool = KeyedThreadPool(session_workers,
                                            name="session-worker")
        #: per-server artifact cache consulted by /worker/execute: a
        #: remote sweep worker compiles/assembles each distinct program
        #: once, then serves repeats from memory (see repro.explore.artifacts)
        self.artifacts = ArtifactCache()
        #: the server-owned worker registry behind /fleet/register and
        #: the "fleet" sweep backend
        self.fleet = fleet if fleet is not None else WorkerRegistry()
        if self.explore.scheduler is None:
            self.explore.scheduler = FleetScheduler(
                self.fleet, artifact_store=self.artifacts)
        #: the cross-run result warehouse behind /warehouse/*; attached
        #: to the explore manager so its runner thread ingests every
        #: sweep that finishes done
        self.warehouse = ResultWarehouse()
        if getattr(self.explore, "warehouse", None) is None:
            self.explore.warehouse = self.warehouse
        #: data-plane origin URL ("host:port") fleet dispatches tell
        #: workers to fetch artifacts from; the HTTP server sets it to
        #: its bound address, None keeps dispatches inline
        self.dataplane_origin: Optional[str] = None
        #: in-flight cancellable jobs (/worker/execute <-> /worker/cancel)
        self.cancels = CancelRegistry()
        self.cancel_stride = cancel_stride

    def set_dataplane_origin(self, origin: str) -> None:
        """Announce this server's reachable ``host:port`` as the fleet's
        artifact fetch origin (called by the HTTP layer once bound)."""
        self.dataplane_origin = origin
        scheduler = self.explore.scheduler
        if scheduler is not None and hasattr(scheduler, "origin"):
            scheduler.origin = origin

    def close(self) -> None:
        """Stop the worker pools (tests; server shutdown)."""
        self.session_pool.close()
        self.explore.close()

    # ------------------------------------------------------------------
    def handle(self, method: str, path: str, payload: Optional[dict]) -> dict:
        payload = payload or {}
        path, _sep, query = path.partition("?")   # transports pass the query
        route = (method.upper(), path.rstrip("/") or "/")
        if query and route[1].startswith("/warehouse/"):
            # the warehouse GETs take their filters on the query string;
            # explicit JSON-body keys win over query duplicates
            payload = dict(payload)
            for key, values in parse_qs(query).items():
                payload.setdefault(key, values[0])
        counted = route[1]
        if counted.startswith("/trace"):
            counted = "/trace"
        elif counted.startswith("/artifact") \
                and counted != "/artifact/prefetch":
            counted = "/artifact"
        _REQUESTS.inc(method=route[0],
                      route=counted if counted in _COUNTED_ROUTES
                      else "other")
        if route == ("GET", "/schema"):
            return SCHEMA
        if route == ("GET", "/metrics"):
            return self.metrics_json()
        if route == ("GET", "/trace"):
            raise ApiError("trace requests name a sweep: "
                           "GET /trace/<sweepId>", status=400)
        if route[0] == "GET" and route[1].startswith("/trace/"):
            return self.trace(route[1][len("/trace/"):])
        if route == ("GET", "/artifact"):
            raise ApiError("artifact requests name a key: "
                           "GET /artifact/<key>", status=400)
        if route == ("POST", "/artifact/prefetch"):
            return self.artifact_prefetch(payload)
        if route[0] == "GET" and route[1].startswith("/artifact/"):
            return self.artifact(route[1][len("/artifact/"):])
        if route == ("GET", "/health"):
            return {"status": "ok", "sessions": len(self.sessions),
                    "fleet": self.fleet.snapshot()}
        if route == ("POST", "/compile"):
            return self.compile(payload)
        if route == ("POST", "/parseAsm"):
            return self.parse_asm(payload)
        if route == ("POST", "/simulate"):
            return self.simulate(payload)
        if route == ("POST", "/session/new"):
            return self.session_new(payload)
        if route == ("POST", "/session/step"):
            return self.session_step(payload)
        if route == ("POST", "/session/state"):
            return self.session_state(payload)
        if route == ("POST", "/session/seek"):
            return self.session_seek(payload)
        if route == ("POST", "/session/memory"):
            return self.session_memory(payload)
        if route == ("POST", "/session/close"):
            return self.session_close(payload)
        if route == ("POST", "/explore/submit"):
            return self.explore_submit(payload)
        if route == ("POST", "/explore/status"):
            return self.explore_status(payload)
        if route == ("POST", "/explore/result"):
            return self.explore_result(payload)
        if route == ("POST", "/explore/cancel"):
            return self.explore_cancel(payload)
        if route == ("POST", "/explore/events"):
            return self.explore_events(payload)
        if route in (("GET", "/explore/stream"), ("POST", "/explore/stream")):
            raise ApiError("/explore/stream is a chunked NDJSON stream; "
                           "use SimClient.explore_stream (or poll "
                           "/explore/events)", status=400)
        if route in (("GET", "/warehouse/query"),
                     ("POST", "/warehouse/query")):
            return self.warehouse_query(payload)
        if route in (("GET", "/warehouse/pareto"),
                     ("POST", "/warehouse/pareto")):
            return self.warehouse_pareto(payload)
        if route in (("GET", "/warehouse/regressions"),
                     ("POST", "/warehouse/regressions")):
            return self.warehouse_regressions(payload)
        if route == ("POST", "/warehouse/baseline"):
            return self.warehouse_baseline(payload)
        if route == ("POST", "/fleet/register"):
            return self.fleet_register(payload)
        if route in (("GET", "/fleet/status"), ("POST", "/fleet/status")):
            return self.fleet_status()
        if route == ("POST", "/worker/execute"):
            return self.worker_execute(payload)
        if route == ("POST", "/worker/cancel"):
            return self.worker_cancel(payload)
        if route in (("GET", "/worker/status"), ("POST", "/worker/status")):
            return self.worker_status()
        raise ApiError(f"no such endpoint: {method} {path}", status=404)

    # ------------------------------------------------------------------
    def compile(self, payload: dict) -> dict:
        code = payload.get("code")
        if not isinstance(code, str):
            raise ApiError("'code' (C source string) is required")
        level = int(payload.get("optimizeLevel", 1))
        if not 0 <= level <= 3:
            raise ApiError("optimizeLevel must be 0..3")
        return compile_c(code, level,
                         run_filter=bool(payload.get("filter", False))).to_json()

    def parse_asm(self, payload: dict) -> dict:
        code = payload.get("code")
        if not isinstance(code, str):
            raise ApiError("'code' (assembly string) is required")
        config = _parse_config(payload) or CpuConfig()
        try:
            program = Assembler().assemble(
                code, memory_locations=_parse_memory_locations(payload),
                stack_size=config.memory.call_stack_size)
        except AsmSyntaxError as exc:
            return {"success": False, "errors": [exc.to_json()]}
        return {
            "success": True,
            "errors": [],
            "instructionCount": len(program.instructions),
            "labels": program.labels,
            "symbols": program.symbol_table(),
        }

    def simulate(self, payload: dict) -> dict:
        code = payload.get("code")
        if not isinstance(code, str):
            raise ApiError("'code' (assembly string) is required")
        config = _parse_config(payload)
        from repro.sim.simulation import Simulation
        try:
            simulation = Simulation.from_source(
                code, config=config, entry=payload.get("entry"),
                memory_locations=_parse_memory_locations(payload))
            result = simulation.run(payload.get("maxCycles"))
        except SourceError as exc:
            return {"success": False, "errors": [exc.to_json()]}
        except ReproError as exc:
            raise ApiError(str(exc)) from exc
        out = {"success": True, "result": result.to_json()}
        if payload.get("fullState"):
            out["state"] = simulation.snapshot()
        return out

    # -- sessions -----------------------------------------------------------
    def session_new(self, payload: dict) -> dict:
        code = payload.get("code")
        if not isinstance(code, str):
            raise ApiError("'code' (assembly string) is required")
        try:
            session = self.sessions.create(
                code, config=_parse_config(payload),
                entry=payload.get("entry"),
                memory_locations=_parse_memory_locations(payload))
        except SourceError as exc:
            return {"success": False, "errors": [exc.to_json()]}
        return {"success": True, "sessionId": session.id}

    def _session(self, payload: dict):
        session_id = payload.get("sessionId")
        session = self.sessions.get(session_id) if session_id else None
        if session is None:
            raise ApiError(f"unknown session '{session_id}'", status=404)
        return session

    @staticmethod
    def _parse_int(payload: dict, key: str, default: Optional[int] = None) -> int:
        value = payload.get(key, default)
        if isinstance(value, bool) or not isinstance(value, int):
            raise ApiError(f"'{key}' must be an integer, got {value!r}")
        return value

    @staticmethod
    def _checkpoint_gauge(session) -> dict:
        """Checkpoint-ring memory accounting for session payloads.

        ``bytesRetained`` counts shared frozen page blobs once (see
        ``CheckpointRing.bytes_retained``), so clients — and operators
        sizing ``checkpoint_capacity`` — see the ring's real footprint,
        not capacity x machine size.  Cheap per request: the walk is
        cached per ring generation."""
        ring = session.simulation.checkpoints
        return {"count": len(ring), "capacity": ring.capacity,
                "bytesRetained": ring.bytes_retained()}

    def session_step(self, payload: dict) -> dict:
        session = self._session(payload)
        cycles = self._parse_int(payload, "cycles", default=1)
        if cycles == 0:
            raise ApiError("'cycles' must be a non-zero integer "
                           "(negative = backward)")
        if abs(cycles) > MAX_STEP_CYCLES:
            raise ApiError(f"'cycles' out of range: |{cycles}| exceeds "
                           f"{MAX_STEP_CYCLES} per request")

        def work() -> dict:
            out = {"success": True, "protocolVersion": PROTOCOL_VERSION}
            with session.lock:
                if cycles > 0:
                    session.simulation.step(cycles)
                else:
                    session.simulation.step_back(-cycles)
                delta = payload.get("delta")
                if delta == "encoded":
                    # pre-serialized from the fragment caches; spliced
                    # verbatim into the response body (dumps_raw)
                    out["stateFormat"] = "delta"
                    out["stateDelta"] = RawJson(session.serve_delta_json())
                elif delta:
                    out["stateFormat"] = "delta"
                    out["stateDelta"] = session.serve_delta()
                else:
                    out["stateFormat"] = "full"
                    out["state"] = session.serve_state()
                out["checkpoints"] = self._checkpoint_gauge(session)
            return out

        # simulate on a session executor, not the HTTP thread: the pool's
        # per-key FIFO keeps this session's requests ordered while other
        # sessions proceed on the remaining workers
        return self.session_pool.run(session.id, work)

    def session_state(self, payload: dict) -> dict:
        session = self._session(payload)

        def work() -> dict:
            with session.lock:
                return {"success": True,
                        "protocolVersion": PROTOCOL_VERSION,
                        "stateFormat": "full",
                        "state": session.serve_state(),
                        "checkpoints": self._checkpoint_gauge(session)}

        return self.session_pool.run(session.id, work)

    def session_seek(self, payload: dict) -> dict:
        session = self._session(payload)
        cycle = self._parse_int(payload, "cycle", default=0)
        if cycle < 0:
            raise ApiError("cycle must be >= 0")
        budget = min(session.simulation.config.max_cycles, MAX_SEEK_CYCLE)
        if cycle > budget:
            raise ApiError(f"cycle out of range: {cycle} exceeds the "
                           f"session's cycle budget ({budget})")

        def work() -> dict:
            with session.lock:
                simulation = session.simulation
                simulation.seek(cycle)
                return {"success": True,
                        "protocolVersion": PROTOCOL_VERSION,
                        "stateFormat": "full",
                        "state": session.serve_state(),
                        "fastForward": simulation.last_fast_forward,
                        "checkpoints": self._checkpoint_gauge(session)}

        return self.session_pool.run(session.id, work)

    def session_memory(self, payload: dict) -> dict:
        """Memory pop-up view (Fig. 2), delta-aware.

        Resolves ``symbol`` (an array / label name) or a raw ``address``,
        and serves the region's bytes plus — when ``dtype`` is given or
        derivable from the symbol — the typed element values the memory
        editor shows.  Passing the last seen ``sinceVersion`` back lets the
        client skip unchanged payloads entirely."""
        session = self._session(payload)
        return self.session_pool.run(session.id, self._session_memory_work,
                                     session, payload)

    def _session_memory_work(self, session, payload: dict) -> dict:
        with session.lock:
            simulation = session.simulation
            memory = simulation.cpu.memory
            dtype = payload.get("dtype")
            symbol = payload.get("symbol")
            if symbol is not None:
                found = simulation.program.find_symbol(str(symbol))
                if found is not None:
                    address, size = found.address, found.size
                    dtype = dtype or found.dtype
                else:
                    try:
                        address = simulation.symbol_address(str(symbol))
                    except KeyError:
                        raise ApiError(f"unknown symbol '{symbol}'",
                                       status=404) from None
                    size = self._parse_int(payload, "size", default=4)
            else:
                address = self._parse_int(payload, "address", default=0)
                size = self._parse_int(payload, "size", default=64)
            if size <= 0 or size > memory.capacity:
                raise ApiError(f"invalid size {size}")
            version = memory.version
            if payload.get("sinceVersion") == version:
                return {"success": True, "unchanged": True,
                        "version": version}
            try:
                raw = memory.read_bytes(address, size)
            except MemoryAccessError as exc:
                raise ApiError(str(exc)) from exc
            out = {"success": True, "version": version, "address": address,
                   "size": size, "bytes": raw.hex()}
            if dtype is not None:
                try:
                    out["dtype"] = dtype
                    out["values"] = decode_values(raw, dtype)
                except ConfigError as exc:
                    raise ApiError(str(exc)) from exc
            return out

    def session_close(self, payload: dict) -> dict:
        session_id = payload.get("sessionId", "")
        return {"success": self.sessions.close(session_id)}

    # -- design-space sweeps (repro.explore) ----------------------------
    def explore_submit(self, payload: dict) -> dict:
        spec = payload.get("spec")
        if not isinstance(spec, dict):
            raise ApiError("'spec' (sweep specification object) is required")
        workers = payload.get("workers")
        if workers is not None:
            if isinstance(workers, bool) or not isinstance(workers, int) \
                    or workers < 0:
                raise ApiError("'workers' must be an integer >= 0")
        job_timeout_s = payload.get("jobTimeoutS")
        if job_timeout_s is not None:
            if isinstance(job_timeout_s, bool) \
                    or not isinstance(job_timeout_s, (int, float)) \
                    or job_timeout_s <= 0:
                raise ApiError("'jobTimeoutS' must be a positive number")
        backend = payload.get("backend")
        if backend is not None and not isinstance(backend, str):
            raise ApiError("'backend' must be a string "
                           "(serial/process/fleet)")
        trace = payload.get("trace", True)
        if not isinstance(trace, bool):
            raise ApiError("'trace' must be a boolean")
        try:
            state = self.explore.submit(
                spec, workers=workers,
                metric=str(payload.get("metric", "cycles")),
                job_timeout_s=job_timeout_s, backend=backend,
                trace=trace)
        except FleetError as exc:
            # a fleet submit with no registered workers is the server's
            # (transient) state, not a bad request: 503, retry later
            raise ApiError(str(exc), status=503) from exc
        except (SweepSpecError, MetricError, ConfigError,
                ValueError, TypeError, KeyError) as exc:
            # ValueError/TypeError/KeyError cover malformed field types the
            # spec parser's bare int()/list() conversions trip over — still
            # the client's bad request, never a 500
            raise ApiError(f"invalid sweep: {exc}") from exc
        except OverflowError as exc:
            raise ApiError(str(exc), status=429) from exc
        return {"success": True, "protocolVersion": PROTOCOL_VERSION,
                "sweepId": state.id, "jobs": state.total,
                "workers": state.workers, "backend": state.backend}

    def _sweep(self, payload: dict):
        sweep_id = payload.get("sweepId")
        state = self.explore.get(sweep_id) if sweep_id else None
        if state is None:
            raise ApiError(f"unknown sweep '{sweep_id}'", status=404)
        return state

    def explore_status(self, payload: dict) -> dict:
        out = self._sweep(payload).status_json()
        out["success"] = True
        return out

    def explore_result(self, payload: dict) -> dict:
        state = self._sweep(payload)
        if state.state not in ("done", "failed", "cancelled"):
            raise ApiError(f"sweep '{state.id}' is {state.state}; poll "
                           f"/explore/status until it is done", status=409)
        try:
            out = self.explore.result_json(
                state, metric=str(payload.get("metric", "cycles")))
        except MetricError as exc:
            raise ApiError(str(exc)) from exc
        out["success"] = state.state == "done"
        return out

    def explore_cancel(self, payload: dict) -> dict:
        """Cancel a sweep: dequeues a queued one, fires the cancel token
        of a running one (undispatched jobs drain as ``cancelled``
        records; in-flight fleet jobs get ``/worker/cancel`` and stop
        within one cancel-check stride)."""
        state = self._sweep(payload)
        try:
            out = self.explore.cancel(
                state.id,
                reason=str(payload.get("reason", "client request")))
        except KeyError:  # evicted between lookup and cancel
            raise ApiError(f"unknown sweep '{state.id}'",
                           status=404) from None
        out["success"] = True
        out["sweepId"] = state.id
        out["protocolVersion"] = PROTOCOL_VERSION
        return out

    def explore_events(self, payload: dict) -> dict:
        """One poll of a sweep's progress-event log (the poll-shaped
        sibling of the chunked ``/explore/stream``)."""
        state = self._sweep(payload)
        from_seq = self._parse_int(payload, "fromSeq", default=0)
        if from_seq < 0:
            raise ApiError("'fromSeq' must be >= 0")
        try:
            events, sweep_state = self.explore.events_since(state.id,
                                                            from_seq)
        except KeyError:  # evicted between lookup and poll
            raise ApiError(f"unknown sweep '{state.id}'",
                           status=404) from None
        return {"success": True, "sweepId": state.id, "state": sweep_state,
                "events": events, "nextSeq": from_seq + len(events)}

    def explore_stream(self, sweep_id: str, from_seq: int = 0):
        """Live event generator behind ``GET /explore/stream`` (the HTTP
        layer writes each yielded event as one chunked NDJSON line).
        Raises 404 before the first byte for an unknown sweep."""
        if not sweep_id or self.explore.get(sweep_id) is None:
            raise ApiError(f"unknown sweep '{sweep_id}'", status=404)
        return self.explore.stream(sweep_id, from_seq=max(0, from_seq))

    # -- result warehouse (protocol v9) ---------------------------------
    @staticmethod
    def _warehouse_filters(payload: dict) -> dict:
        """Shared filter parsing for the ``/warehouse/*`` reads.

        Over GET every value arrives as a query-string *string*, so
        ``axes`` accepts a compact ``axis=value[,axis=value...]`` form
        alongside the JSON-body object."""
        filters: dict = {}
        for key in ("sweep", "program"):
            value = payload.get(key)
            if value is None and key == "sweep":
                value = payload.get("sweepId")
            if value is not None:
                if not isinstance(value, str) or not value:
                    raise ApiError(f"'{key}' must be a non-empty string")
                filters[key] = value
        axes = payload.get("axes")
        if axes is not None:
            if isinstance(axes, str):
                parsed = {}
                for part in axes.replace("/", ",").split(","):
                    part = part.strip()
                    if not part:
                        continue
                    name, sep, value = part.partition("=")
                    if not sep or not name:
                        raise ApiError("string 'axes' must be "
                                       "'axis=value[,axis=value...]'")
                    parsed[name] = value
                axes = parsed
            if not isinstance(axes, dict):
                raise ApiError("'axes' must be an object or an "
                               "'axis=value,...' string")
            filters["axes"] = axes
        return filters

    @staticmethod
    def _parse_number(payload: dict, key: str) -> Optional[float]:
        """Optional numeric field, tolerant of query-string strings."""
        value = payload.get(key)
        if value is None:
            return None
        if isinstance(value, str):
            try:
                value = float(value)
            except ValueError:
                raise ApiError(f"'{key}' must be a number") from None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ApiError(f"'{key}' must be a number")
        return float(value)

    @staticmethod
    def _parse_metrics(payload: dict) -> Optional[List[str]]:
        metrics = payload.get("metrics")
        if metrics is None:
            return None
        if isinstance(metrics, str):
            metrics = [m.strip() for m in metrics.split(",") if m.strip()]
        if not isinstance(metrics, list) \
                or not all(isinstance(m, str) and m for m in metrics):
            raise ApiError("'metrics' must be a list of metric names "
                           "(or a comma-separated string)")
        return metrics or None

    def warehouse_query(self, payload: dict) -> dict:
        """``/warehouse/query``: filtered rows + shared metric summaries."""
        filters = self._warehouse_filters(payload)
        since = self._parse_number(payload, "since")
        until = self._parse_number(payload, "until")
        metrics = self._parse_metrics(payload)
        if metrics is not None:
            filters["metrics"] = metrics
        limit = payload.get("limit")
        if limit is not None:
            try:
                limit = int(limit)
            except (TypeError, ValueError):
                raise ApiError("'limit' must be an integer") from None
            if limit < 0:
                raise ApiError("'limit' must be >= 0")
        try:
            out = self.warehouse.query(since=since, until=until,
                                       limit=limit, **filters)
        except (WarehouseError, MetricError) as exc:
            raise ApiError(str(exc)) from exc
        out["success"] = True
        out["protocolVersion"] = PROTOCOL_VERSION
        return out

    def warehouse_pareto(self, payload: dict) -> dict:
        """``/warehouse/pareto``: direction-aware frontier over (x, y)."""
        filters = self._warehouse_filters(payload)
        x = payload.get("x", "cycles")
        y = payload.get("y", "energy")
        if not isinstance(x, str) or not isinstance(y, str):
            raise ApiError("'x' and 'y' must be metric name strings")
        try:
            out = self.warehouse.pareto(x=x, y=y, **filters)
        except (WarehouseError, MetricError) as exc:
            raise ApiError(str(exc)) from exc
        out["success"] = True
        out["protocolVersion"] = PROTOCOL_VERSION
        return out

    def warehouse_regressions(self, payload: dict) -> dict:
        """``/warehouse/regressions``: sentinel diff vs the baseline.

        409 until a baseline sweep is pinned — the one status clients
        (e.g. the ``--follow`` warning) treat as "sentinel not armed"."""
        sweep = payload.get("sweep") or payload.get("sweepId")
        if sweep is not None and (not isinstance(sweep, str) or not sweep):
            raise ApiError("'sweep' must be a non-empty string")
        kwargs: dict = {}
        tolerance = self._parse_number(payload, "tolerance")
        if tolerance is not None:
            kwargs["tolerance"] = tolerance
        metrics = self._parse_metrics(payload)
        if metrics is not None:
            kwargs["metrics"] = metrics
        try:
            out = self.warehouse.regressions(sweep=sweep, **kwargs)
        except BaselineMissing as exc:
            raise ApiError(str(exc), status=409) from exc
        except KeyError:
            raise ApiError(f"unknown sweep '{sweep}' (not ingested)",
                           status=404) from None
        except (WarehouseError, MetricError) as exc:
            raise ApiError(str(exc)) from exc
        out["success"] = True
        out["protocolVersion"] = PROTOCOL_VERSION
        return out

    def warehouse_baseline(self, payload: dict) -> dict:
        """``POST /warehouse/baseline``: pin the regression baseline."""
        sweep_id = payload.get("sweepId") or payload.get("sweep")
        if not isinstance(sweep_id, str) or not sweep_id:
            raise ApiError("'sweepId' (an ingested sweep id) is required")
        try:
            out = self.warehouse.set_baseline(sweep_id)
        except KeyError:
            raise ApiError(f"unknown sweep '{sweep_id}' (the warehouse "
                           f"only pins ingested sweeps)",
                           status=404) from None
        out["success"] = True
        out["protocolVersion"] = PROTOCOL_VERSION
        return out

    # -- fleet registry (protocol v5) -----------------------------------
    def fleet_register(self, payload: dict) -> dict:
        """Worker registration/heartbeat: the worker announces the URL it
        is reachable at, its capacity, and (optionally) its artifact-cache
        stats; re-posting keeps the registration alive (TTL)."""
        url = payload.get("url")
        if not isinstance(url, str) or not url:
            raise ApiError("'url' (worker host:port as reachable from "
                           "this server) is required")
        capacity = payload.get("capacity", 1)
        cache_stats = payload.get("cache")
        if cache_stats is not None and not isinstance(cache_stats, dict):
            raise ApiError("'cache' must be an object (worker cache stats)")
        try:
            ack = self.fleet.register(url, capacity=capacity,
                                      cache_stats=cache_stats)
        except ValueError as exc:
            raise ApiError(str(exc)) from exc
        ack["success"] = True
        ack["protocolVersion"] = PROTOCOL_VERSION
        return ack

    def fleet_status(self) -> dict:
        return {"success": True, "protocolVersion": PROTOCOL_VERSION,
                "fleet": self.fleet.snapshot()}

    # -- distributed sweep worker (protocol v4/v5) ----------------------
    def worker_execute(self, payload: dict) -> dict:
        """Execute one planned sweep job and return its outcome.

        The unit the :class:`repro.explore.backend.RemoteBackend` fans
        out.  The body's ``payload`` is one self-contained job object as
        produced by ``repro.explore.plan``:

        ========================  =========================================
        field                     meaning
        ========================  =========================================
        ``program``               inline program spec (``source`` assembly
                                  or ``c`` + ``optimizeLevel``, plus
                                  ``entry``/``memory``) — **or**, since
                                  protocol v8, ``{"name", "artifactRef":
                                  {sourceKey, compileKey?, optimizeLevel?,
                                  fetchFrom}}`` referencing artifacts by
                                  content key instead of carrying source
        ``config``                resolved architecture JSON
        ``collect``               ``"full"`` embeds the statistics page
        ``maxCycles``             per-job cycle budget override
        ``optimizeLevel``         job-level C opt-level override (axes)
        ``entry``                 job-level entry-point override (axes)
        ``trace``                 trace context (``traceId``/``parentId``)
        ========================  =========================================

        The reply mirrors a pool
        :class:`repro.explore.pool.JobResult` — ``ok`` with the
        deterministic record ``value``, or ``ok: false`` with the same
        ``TypeName: message`` error string every other backend produces,
        so failure records stay byte-identical across backends.  An
        ``artifactRef`` this worker cannot resolve (fetch failed, no
        local tier has it) answers ``kind: "artifactUnavailable"``
        instead of an error — the dispatcher re-sends the job with the
        program inline, so data-plane failures never fail a job.  Jobs
        run on the connection thread (the dispatching backend bounds its
        in-flight window client-side); per-job setup hits this server's
        in-memory artifact cache, so repeated-program grids compile and
        assemble each program once per worker — and with the data plane,
        once per *fleet* (cold workers fetch by hash before compiling).

        A body with a ``cancelId`` makes the job cooperatively
        cancellable: the id is registered while the job runs, and a
        ``POST /worker/cancel`` for it fires a token the simulation
        checks every ``cancel_stride`` cycles — the job then stops
        within one stride and replies ``kind="cancelled"`` instead of
        burning the rest of its cycle budget (the v4 known-limitation
        this closes).  A cancel that arrives *before* the execute
        request is remembered and honored on the first stride check.
        """
        job = payload.get("payload")
        if not isinstance(job, dict):
            raise ApiError("'payload' (one planned sweep-job object, see "
                           "repro.explore.plan) is required")
        cancel_id = payload.get("cancelId")
        if cancel_id is not None and not isinstance(cancel_id, str):
            raise ApiError("'cancelId' must be a string")
        from repro.explore.runner import JobCancelled, execute_payload
        token = self.cancels.create(cancel_id) if cancel_id else None
        tracer = None
        context = job.get("trace")
        if isinstance(context, dict) and context.get("traceId"):
            from repro.obs.trace import JobTracer
            tracer = JobTracer(str(context["traceId"]),
                               str(context.get("parentId",
                                               context["traceId"])))
        started = time.monotonic()
        out = {"success": True, "protocolVersion": PROTOCOL_VERSION}
        kind = "ok"
        try:
            out["ok"] = True
            out["value"] = execute_payload(job, cache=self.artifacts,
                                           cancel=token,
                                           cancel_stride=self.cancel_stride,
                                           tracer=tracer)
        except JobCancelled:
            out["ok"] = False
            out["kind"] = kind = "cancelled"
            out["error"] = CANCELLED_MESSAGE
        except ArtifactUnavailable as exc:
            # data-plane degradation, not a job failure: the dispatcher
            # re-sends the job with the program inline (never recorded)
            out["ok"] = False
            out["kind"] = kind = "artifactUnavailable"
            out["error"] = str(exc)
        except Exception as exc:  # noqa: BLE001 - job isolation, as the
            # serial loop / pool worker: report, never die
            out["ok"] = False
            out["kind"] = kind = "error"
            out["error"] = f"{type(exc).__name__}: {exc}"
        finally:
            if cancel_id:
                self.cancels.remove(cancel_id)
        elapsed = round(time.monotonic() - started, 6)
        out["elapsedS"] = elapsed
        out["artifactCache"] = self.artifacts.stats()
        if tracer is not None:
            # span times are relative to this worker's job start; the
            # frontend rebases them onto the sweep timeline at dispatch
            # offset, so clock domains never mix
            out["spans"] = tracer.export()
        _WORKER_JOBS.inc(kind=kind)
        _WORKER_EXECUTE_SECONDS.observe(elapsed)
        return out

    def worker_cancel(self, payload: dict) -> dict:
        """Fire the cancel token of an in-flight ``/worker/execute`` job.

        Idempotent and race-tolerant: an unknown id is recorded as a
        pre-cancel (the cancel may overtake its execute request on a
        separate connection) and reported with ``cancelled: false``."""
        cancel_id = payload.get("cancelId")
        if not isinstance(cancel_id, str) or not cancel_id:
            raise ApiError("'cancelId' (string) is required")
        hit = self.cancels.cancel(
            cancel_id, reason=str(payload.get("reason", "cancelled")))
        return {"success": True, "protocolVersion": PROTOCOL_VERSION,
                "cancelled": hit}

    # -- artifact data plane (protocol v8) -------------------------------
    def artifact(self, key: str) -> dict:
        """``GET /artifact/<key>``: serve one content-addressed artifact.

        Answers out of this server's :class:`ArtifactCache` — compiled
        assembly from the memory/disk tiers, program specs and compile
        recipes registered at dispatch time (a recipe key compiles on
        demand, single-flighted).  404 for keys no tier knows; workers
        negative-cache that answer, so a missing key costs each worker
        one fetch round, not one per job."""
        if not key:
            raise ApiError("artifact requests name a key: "
                           "GET /artifact/<key>", status=400)
        artifact = self.artifacts.serve_artifact(key)
        if artifact is None:
            raise ApiError(f"unknown artifact '{key}'", status=404)
        return {"success": True, "protocolVersion": PROTOCOL_VERSION,
                "key": key, "artifact": artifact}

    def artifact_prefetch(self, payload: dict) -> dict:
        """``POST /artifact/prefetch``: warm-push a sweep's key-set.

        The dispatching backend announces every artifact reference of a
        sweep at first dispatch; this worker starts fetching them in the
        background so the transfers overlap the first jobs' simulation
        time.  Best-effort by design — the reply's ``accepted`` count is
        informational, and ``0`` (e.g. ``REPRO_ARTIFACT_FETCH=0``) just
        means jobs fall back to fetch-on-miss or local compile."""
        refs = payload.get("artifacts")
        if not isinstance(refs, list):
            raise ApiError("'artifacts' (list of artifact references) "
                           "is required")
        accepted = self.artifacts.prefetch(refs)
        return {"success": True, "protocolVersion": PROTOCOL_VERSION,
                "accepted": accepted}

    # -- telemetry plane (protocol v7) ----------------------------------
    def _set_gauges(self) -> None:
        """Refresh scrape-time gauges from the live subsystems.

        Gauges are point-in-time reads of state the server already owns
        (session table, explore queue, fleet registry); sampling them at
        scrape time keeps the hot paths free of gauge writes entirely."""
        _SESSIONS_LIVE.set(len(self.sessions))
        _SESSION_POOL_PENDING.set(self.session_pool.pending())
        depth = self.explore.queue_depth()
        _SWEEP_QUEUE.set(depth["queued"], state="queued")
        _SWEEP_QUEUE.set(depth["running"], state="running")
        snap = self.fleet.snapshot()
        _FLEET_WORKERS.set(snap["live"], liveness="live")
        _FLEET_WORKERS.set(snap["known"], liveness="known")
        # clear-then-set: a forgotten/expired worker must not linger as
        # a stale per-url series on the next scrape
        _HEARTBEAT_AGE.clear()
        for row in snap["rows"]:
            _HEARTBEAT_AGE.set(row["lastHeartbeatAgeS"], url=row["url"])

    def metrics_json(self) -> dict:
        """``GET /metrics``: full registry scrape as JSON."""
        self._set_gauges()
        return {"success": True, "protocolVersion": PROTOCOL_VERSION,
                "metrics": default_registry().scrape()}

    def metrics_text(self) -> str:
        """Prometheus text exposition (the HTTP layer serves this for
        ``GET /metrics?format=prometheus`` with ``text/plain``)."""
        self._set_gauges()
        return render_prometheus(default_registry().scrape())

    def trace(self, sweep_id: str) -> dict:
        """``GET /trace/<sweepId>``: one sweep's span tree.

        Served for queued/running sweeps too — the root and queueWait
        spans are synthesized at read time, so a mid-flight tree is
        already connected (it just grows more job spans on later polls).
        """
        state = self.explore.get(sweep_id) if sweep_id else None
        if state is None:
            raise ApiError(f"unknown sweep '{sweep_id}'", status=404)
        out = state.trace_json()
        out["success"] = True
        out["protocolVersion"] = PROTOCOL_VERSION
        return out

    def worker_status(self) -> dict:
        """Worker health: artifact-cache hit/miss/size stats (memory and
        disk tiers, GC evictions) plus the in-flight cancellable-job
        gauge — one poll per fleet member keeps long-lived fleets
        observable."""
        return {"success": True, "protocolVersion": PROTOCOL_VERSION,
                "artifactCache": self.artifacts.stats(),
                "activeJobs": self.cancels.active(),
                "cancelStride": self.cancel_stride}


_default_api: Optional[Api] = None


def handle_request(method: str, path: str, payload: Optional[dict],
                   api: Optional[Api] = None) -> dict:
    """Module-level convenience entry (shared default :class:`Api`)."""
    global _default_api
    if api is None:
        if _default_api is None:
            _default_api = Api()
        api = _default_api
    return api.handle(method, path, payload)
