"""Closed-loop load generator (the paper's JMeter experiment, Sec. IV-A).

Test protocol exactly as described: N concurrent users, each interactively
simulating 40 steps of one of two programs, a configurable ramp-up time, a
think-time pause between each user's requests, and optional gzip.  Reported
metrics match Table I: median latency, 90th-percentile latency, and
throughput in transactions per second.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.obs.metrics import nearest_rank
from repro.server.client import SimClient


@dataclass
class LoadTestConfig:
    """Parameters of one scenario (Table I row)."""

    users: int = 30
    steps_per_user: int = 40
    ramp_up_s: float = 4.0
    think_time_s: float = 1.0
    use_gzip: bool = True
    cycles_per_step: int = 1


@dataclass
class LoadTestResult:
    """Measured data for one scenario."""

    users: int
    transactions: int = 0
    errors: int = 0
    latencies_ms: List[float] = field(default_factory=list)
    duration_s: float = 0.0

    # both percentiles go through the shared nearest-rank rule
    # (repro.obs.metrics), so Table I and /explore/status can never
    # disagree about what "median" or "p90" means
    @property
    def median_ms(self) -> float:
        if not self.latencies_ms:
            return 0.0
        return nearest_rank(sorted(self.latencies_ms), 0.5)

    @property
    def p90_ms(self) -> float:
        if not self.latencies_ms:
            return 0.0
        return nearest_rank(sorted(self.latencies_ms), 0.9)

    @property
    def throughput_tps(self) -> float:
        return self.transactions / self.duration_s if self.duration_s else 0.0

    def row(self, mode: str) -> dict:
        """One Table I row."""
        return {
            "mode": mode,
            "users": self.users,
            "medianLatencyMs": round(self.median_ms, 2),
            "p90LatencyMs": round(self.p90_ms, 2),
            "throughputTps": round(self.throughput_tps, 2),
            "transactions": self.transactions,
            "errors": self.errors,
        }


#: the two programs users step through (a loop kernel and a memory kernel)
DEFAULT_PROGRAMS = (
    """
    li a0, 0
    li t0, 1
    li t1, 1000
loop:
    add a0, a0, t0
    addi t0, t0, 1
    ble t0, t1, loop
    ebreak
    """,
    """
    .data
buf: .zero 256
    .text
    la t0, buf
    li t1, 0
    li t2, 64
fill:
    sw t1, 0(t0)
    addi t0, t0, 4
    addi t1, t1, 1
    blt t1, t2, fill
    ebreak
    """,
)


def run_load_test(host: str, port: int, config: LoadTestConfig,
                  programs: Sequence[str] = DEFAULT_PROGRAMS) -> LoadTestResult:
    """Run one closed-loop scenario against a live server."""
    result = LoadTestResult(users=config.users)
    lock = threading.Lock()
    start_barrier = time.monotonic()

    def user(index: int) -> None:
        # ramp-up: users start spread uniformly over ramp_up_s
        delay = config.ramp_up_s * index / max(1, config.users)
        wake = start_barrier + delay
        pause = wake - time.monotonic()
        if pause > 0:
            time.sleep(pause)
        client = SimClient(host, port, use_gzip=config.use_gzip)
        local_lat: List[float] = []
        local_tx = 0
        local_err = 0
        try:
            program = programs[index % len(programs)]
            t0 = time.monotonic()
            session = client.session_new(program)
            local_lat.append((time.monotonic() - t0) * 1000.0)
            local_tx += 1
            for _ in range(config.steps_per_user):
                if config.think_time_s > 0:
                    time.sleep(config.think_time_s)
                t0 = time.monotonic()
                try:
                    client.session_step(session, config.cycles_per_step)
                    local_tx += 1
                except Exception:  # noqa: BLE001 - count as error, continue
                    local_err += 1
                    continue
                local_lat.append((time.monotonic() - t0) * 1000.0)
            client.session_close(session)
        except Exception:  # noqa: BLE001 - user failed entirely
            local_err += 1
        finally:
            client.close()
        with lock:
            result.latencies_ms.extend(local_lat)
            result.transactions += local_tx
            result.errors += local_err

    threads = [threading.Thread(target=user, args=(i,), daemon=True)
               for i in range(config.users)]
    wall_start = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    result.duration_s = time.monotonic() - wall_start
    return result


def run_table1(host: str, port_direct: int, port_docker: int,
               users_list: Sequence[int] = (30, 100),
               steps_per_user: int = 40, ramp_up_s: float = 4.0,
               think_time_s: float = 1.0) -> List[dict]:
    """Reproduce all four Table I rows against two live servers
    (direct and simulated-Docker)."""
    rows: List[dict] = []
    for mode, port in (("Direct", port_direct), ("Docker", port_docker)):
        for users in users_list:
            config = LoadTestConfig(users=users, steps_per_user=steps_per_user,
                                    ramp_up_s=ramp_up_s,
                                    think_time_s=think_time_s, use_gzip=True)
            rows.append(run_load_test(host, port, config).row(mode))
    return rows


def format_table1(rows: List[dict]) -> str:
    """Render rows in the paper's Table I layout."""
    lines = [
        "THE MEASURED LATENCY VALUES FOR THE FOUR SPECIFIED SCENARIOS",
        f"{'Mode':<8} {'#users':>6} {'Median[ms]':>12} {'90th pct[ms]':>13} "
        f"{'Throughput[trans/s]':>20}",
    ]
    for row in rows:
        lines.append(
            f"{row['mode']:<8} {row['users']:>6} {row['medianLatencyMs']:>12} "
            f"{row['p90LatencyMs']:>13} {row['throughputTps']:>20}")
    return "\n".join(lines)
