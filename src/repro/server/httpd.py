"""Threaded HTTP JSON server.

Equivalent of the paper's Undertow-based simulation server: JSON request
bodies, JSON responses, optional gzip content-encoding (which the paper
measured at +40 % throughput), and a configurable per-request overhead used
to emulate the Docker deployment rows of Table I on machines without
Docker.
"""

from __future__ import annotations

import argparse
import gzip
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.server.protocol import Api, ApiError
from repro.sim.state import dumps_raw

#: responses smaller than this are not worth compressing
_GZIP_THRESHOLD = 256


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-sim/1.0"

    # quiet by default; the load test would otherwise spam the console
    def log_message(self, fmt, *args):  # pragma: no cover - logging
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    # ------------------------------------------------------------------
    def _read_body(self) -> Optional[dict]:
        length = int(self.headers.get("Content-Length", 0))
        if length == 0:
            return None
        raw = self.rfile.read(length)
        if self.headers.get("Content-Encoding", "") == "gzip":
            raw = gzip.decompress(raw)
        if not raw:
            return None
        try:
            return json.loads(raw.decode("utf-8"))
        except json.JSONDecodeError as exc:
            raise ApiError(f"invalid JSON body: {exc}") from exc

    def _send(self, status: int, payload: dict) -> None:
        # dumps_raw splices pre-serialized state fragments (RawJson) the
        # protocol layer embeds; plain payloads hit the C encoder directly
        body = dumps_raw(payload).encode("utf-8")
        accept = self.headers.get("Accept-Encoding", "")
        use_gzip = (self.server.enable_gzip and "gzip" in accept
                    and len(body) >= _GZIP_THRESHOLD)
        if use_gzip:
            body = gzip.compress(body, compresslevel=1)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        if use_gzip:
            self.send_header("Content-Encoding", "gzip")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _dispatch(self, method: str) -> None:
        # simulated Docker virtualization overhead (Table I "Docker" rows)
        if self.server.overhead_ms > 0:
            time.sleep(self.server.overhead_ms / 1000.0)
        try:
            payload = self._read_body()
            result = self.server.api.handle(method, self.path, payload)
            self._send(200, result)
        except ApiError as exc:
            self._send(exc.status, exc.to_json())
        except Exception as exc:  # noqa: BLE001 - server must not die
            self._send(500, {"error": f"internal error: {exc}", "status": 500})

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("POST")


class SimServer(ThreadingHTTPServer):
    """The simulation server (one thread per connection).

    Connection threads only parse/serialize; session simulation runs on the
    Api's keyed worker pool and design-space sweeps on the explore
    manager's process pool (see :mod:`repro.server.protocol`).
    """

    daemon_threads = True

    def __init__(self, address: Tuple[str, int] = ("127.0.0.1", 0),
                 api: Optional[Api] = None, enable_gzip: bool = True,
                 overhead_ms: float = 0.0, verbose: bool = False):
        super().__init__(address, _Handler)
        self.api = api or Api()
        self.enable_gzip = enable_gzip
        self.overhead_ms = overhead_ms
        self.verbose = verbose

    @property
    def port(self) -> int:
        return self.server_address[1]

    def start_background(self) -> threading.Thread:
        """Serve on a daemon thread; returns the thread."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread

    def server_close(self) -> None:
        super().server_close()
        self.api.close()


def serve(host: str = "127.0.0.1", port: int = 8045,
          enable_gzip: bool = True, overhead_ms: float = 0.0,
          verbose: bool = True, session_workers: Optional[int] = None,
          explore_workers: Optional[int] = None,
          role: str = "simulation server") -> None:
    """Run the server in the foreground (``repro-server`` entry point).

    *role* only changes the banner: a distributed-sweep worker
    (``repro-sim worker``) is a full repro-server whose expected traffic
    is the protocol-v4 ``/worker/execute`` endpoint, so fleet operators
    can tell the two apart in process listings and logs.
    """
    from repro.explore.service import ExploreManager
    from repro.server.protocol import DEFAULT_SESSION_WORKERS
    # explicit None check: --session-workers 0 must reach KeyedThreadPool
    # and fail its validation loudly, not silently fall back to the default
    api = Api(explore=ExploreManager(workers=explore_workers),
              session_workers=DEFAULT_SESSION_WORKERS
              if session_workers is None else session_workers)
    server = SimServer((host, port), api=api, enable_gzip=enable_gzip,
                       overhead_ms=overhead_ms, verbose=verbose)
    print(f"repro {role} listening on http://{host}:{server.port}"
          f" (gzip={'on' if enable_gzip else 'off'},"
          f" overhead={overhead_ms}ms,"
          f" session workers={api.session_pool.workers},"
          f" explore workers={api.explore.workers})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        print("shutting down")
        server.shutdown()
    finally:
        server.server_close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="repro superscalar RISC-V simulation server")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8045)
    parser.add_argument("--no-gzip", action="store_true",
                        help="disable gzip content-encoding")
    parser.add_argument("--overhead-ms", type=float, default=0.0,
                        help="per-request overhead emulating Docker deployment")
    parser.add_argument("--session-workers", type=int, default=None,
                        help="session executor threads (per-session queues)")
    parser.add_argument("--explore-workers", type=int, default=None,
                        help="worker processes for /explore sweeps")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)
    serve(args.host, args.port, enable_gzip=not args.no_gzip,
          overhead_ms=args.overhead_ms, verbose=not args.quiet,
          session_workers=args.session_workers,
          explore_workers=args.explore_workers)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
