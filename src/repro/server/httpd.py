"""Threaded HTTP JSON server.

Equivalent of the paper's Undertow-based simulation server: JSON request
bodies, JSON responses, optional gzip content-encoding (which the paper
measured at +40 % throughput), and a configurable per-request overhead used
to emulate the Docker deployment rows of Table I on machines without
Docker.

Two transports share the handler: the JSON request/response endpoints
(buffered, optionally gzipped) and the chunked NDJSON progress stream
behind ``GET /explore/stream`` — one event per chunk, flushed as it
happens, so ``repro-sim explore --follow`` renders sweep progress live
instead of polling ``/explore/status``.
"""

from __future__ import annotations

import argparse
import gzip
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.server.protocol import Api, ApiError
from repro.sim.state import dumps_raw

#: responses smaller than this are not worth compressing
_GZIP_THRESHOLD = 256


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-sim/1.0"

    # quiet by default; the load test would otherwise spam the console
    def log_message(self, fmt, *args):  # pragma: no cover - logging
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    # ------------------------------------------------------------------
    def _read_body(self) -> Optional[dict]:
        length = int(self.headers.get("Content-Length", 0))
        if length == 0:
            return None
        raw = self.rfile.read(length)
        if self.headers.get("Content-Encoding", "") == "gzip":
            raw = gzip.decompress(raw)
        if not raw:
            return None
        try:
            return json.loads(raw.decode("utf-8"))
        except json.JSONDecodeError as exc:
            raise ApiError(f"invalid JSON body: {exc}") from exc

    def _send(self, status: int, payload: dict) -> None:
        # dumps_raw splices pre-serialized state fragments (RawJson) the
        # protocol layer embeds; plain payloads hit the C encoder directly
        body = dumps_raw(payload).encode("utf-8")
        accept = self.headers.get("Accept-Encoding", "")
        use_gzip = (self.server.enable_gzip and "gzip" in accept
                    and len(body) >= _GZIP_THRESHOLD)
        if use_gzip:
            body = gzip.compress(body, compresslevel=1)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        if use_gzip:
            self.send_header("Content-Encoding", "gzip")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _dispatch(self, method: str) -> None:
        # simulated Docker virtualization overhead (Table I "Docker" rows)
        if self.server.overhead_ms > 0:
            time.sleep(self.server.overhead_ms / 1000.0)
        try:
            payload = self._read_body()
            result = self.server.api.handle(method, self.path, payload)
            self._send(200, result)
        except ApiError as exc:
            self._send(exc.status, exc.to_json())
        except Exception as exc:  # noqa: BLE001 - server must not die
            self._send(500, {"error": f"internal error: {exc}", "status": 500})

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        split = urlsplit(self.path)
        if split.path.rstrip("/") == "/explore/stream":
            self._stream_explore()
            return
        if split.path.rstrip("/") == "/metrics" \
                and "prometheus" in parse_qs(split.query).get("format", []):
            self._metrics_text()
            return
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("POST")

    # ------------------------------------------------------------------
    def _metrics_text(self) -> None:
        """``GET /metrics?format=prometheus``: text exposition format.

        The only non-JSON buffered response the server serves — scrapers
        (and ``curl``) expect ``text/plain``, so it bypasses the JSON
        ``_send`` path."""
        try:
            body = self.server.api.metrics_text().encode("utf-8")
        except Exception as exc:  # noqa: BLE001 - server must not die
            self._send(500, {"error": f"internal error: {exc}",
                             "status": 500})
            return
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _stream_explore(self) -> None:
        """Chunked NDJSON live progress stream (``GET /explore/stream``).

        One event per chunk, flushed immediately; the stream ends (with
        the terminating zero chunk) after the sweep's terminal event, so
        a client can simply iterate lines until EOF.  Errors before the
        first byte are ordinary JSON error responses."""
        query = parse_qs(urlsplit(self.path).query)
        sweep_id = (query.get("sweepId") or [""])[0]
        try:
            from_seq = int((query.get("fromSeq") or ["0"])[0] or 0)
        except ValueError:
            self._send(400, {"error": "fromSeq must be an integer",
                             "status": 400})
            return
        try:
            events = self.server.api.explore_stream(sweep_id, from_seq)
        except ApiError as exc:
            self._send(exc.status, exc.to_json())
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        try:
            for event in events:
                chunk = (json.dumps(event) + "\n").encode("utf-8")
                self.wfile.write(f"{len(chunk):x}\r\n".encode("ascii")
                                 + chunk + b"\r\n")
                self.wfile.flush()
            self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError, OSError):
            # client went away mid-stream: nothing to clean up — the
            # generator holds no locks between yields
            self.close_connection = True


class SimServer(ThreadingHTTPServer):
    """The simulation server (one thread per connection).

    Connection threads only parse/serialize; session simulation runs on the
    Api's keyed worker pool and design-space sweeps on the explore
    manager's process pool (see :mod:`repro.server.protocol`).
    """

    daemon_threads = True

    def __init__(self, address: Tuple[str, int] = ("127.0.0.1", 0),
                 api: Optional[Api] = None, enable_gzip: bool = True,
                 overhead_ms: float = 0.0, verbose: bool = False):
        super().__init__(address, _Handler)
        self.api = api or Api()
        self.enable_gzip = enable_gzip
        self.overhead_ms = overhead_ms
        self.verbose = verbose
        # announce the bound address as the artifact data plane's fetch
        # origin: fleet dispatches then go out as content-keyed
        # references workers resolve via GET /artifact/<key> against us
        if getattr(self.api, "dataplane_origin", None) is None:
            self.api.set_dataplane_origin(
                f"{self.server_address[0]}:{self.port}")

    @property
    def port(self) -> int:
        return self.server_address[1]

    def start_background(self) -> threading.Thread:
        """Serve on a daemon thread; returns the thread."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread

    def server_close(self) -> None:
        super().server_close()
        # bind failures call server_close() from TCPServer.__init__
        # before __init__ here ever assigned self.api
        api = getattr(self, "api", None)
        if api is not None:
            api.close()


def serve(host: str = "127.0.0.1", port: int = 8045,
          enable_gzip: bool = True, overhead_ms: float = 0.0,
          verbose: bool = True, session_workers: Optional[int] = None,
          explore_workers: Optional[int] = None,
          role: str = "simulation server",
          register_with: Optional[str] = None,
          advertise: Optional[str] = None,
          capacity: Optional[int] = None,
          heartbeat_s: Optional[float] = None,
          cancel_stride: Optional[int] = None) -> None:
    """Run the server in the foreground (``repro-server`` entry point).

    *role* only changes the banner: a distributed-sweep worker
    (``repro-sim worker``) is a full repro-server whose expected traffic
    is the ``/worker/execute`` endpoint, so fleet operators can tell the
    two apart in process listings and logs.

    *register_with* (``host:port`` of a fleet frontend) starts a
    heartbeat thread announcing this server to that frontend's worker
    registry — the ``repro-sim worker --register`` mode.  *advertise*
    overrides the URL the frontend should dial back (defaults to
    ``host:port`` as bound, which is wrong behind NAT/containers);
    *capacity* is the advertised parallel-job capacity and *heartbeat_s*
    overrides the frontend-suggested beat interval.  *cancel_stride* is
    the cooperative-cancel check interval (cycles) for jobs this server
    executes.
    """
    from repro.explore.service import ExploreManager
    from repro.server.protocol import DEFAULT_SESSION_WORKERS
    from repro.sim.simulation import DEFAULT_CANCEL_STRIDE
    # explicit None check: --session-workers 0 must reach KeyedThreadPool
    # and fail its validation loudly, not silently fall back to the default
    api = Api(explore=ExploreManager(workers=explore_workers),
              session_workers=DEFAULT_SESSION_WORKERS
              if session_workers is None else session_workers,
              cancel_stride=DEFAULT_CANCEL_STRIDE
              if cancel_stride is None else cancel_stride)
    server = SimServer((host, port), api=api, enable_gzip=enable_gzip,
                       overhead_ms=overhead_ms, verbose=verbose)
    heartbeater = None
    if register_with:
        from repro.fleet.registry import Heartbeater
        heartbeater = Heartbeater(
            register_with, advertise or f"{host}:{server.port}",
            capacity=capacity if capacity is not None else 1,
            interval_s=heartbeat_s,
            # heartbeat_stats (not stats): carries the compiled-key set
            # so the frontend can hint this worker as a peer fetch source
            cache_stats_fn=api.artifacts.heartbeat_stats)
        heartbeater.start()
    print(f"repro {role} listening on http://{host}:{server.port}"
          f" (gzip={'on' if enable_gzip else 'off'},"
          f" overhead={overhead_ms}ms,"
          f" session workers={api.session_pool.workers},"
          f" explore workers={api.explore.workers}"
          + (f", fleet frontend={register_with}" if register_with else "")
          + ")", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        print("shutting down")
        server.shutdown()
    finally:
        if heartbeater is not None:
            heartbeater.stop()
        server.server_close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="repro superscalar RISC-V simulation server")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8045)
    parser.add_argument("--no-gzip", action="store_true",
                        help="disable gzip content-encoding")
    parser.add_argument("--overhead-ms", type=float, default=0.0,
                        help="per-request overhead emulating Docker deployment")
    parser.add_argument("--session-workers", type=int, default=None,
                        help="session executor threads (per-session queues)")
    parser.add_argument("--explore-workers", type=int, default=None,
                        help="worker processes for /explore sweeps")
    parser.add_argument("--cancel-stride", type=int, default=None,
                        metavar="CYCLES",
                        help="cooperative-cancel check interval for "
                             "/worker/execute jobs")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)
    serve(args.host, args.port, enable_gzip=not args.no_gzip,
          overhead_ms=args.overhead_ms, verbose=not args.quiet,
          session_workers=args.session_workers,
          explore_workers=args.explore_workers,
          cancel_stride=args.cancel_stride)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
