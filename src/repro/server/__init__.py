"""Client-server mode: JSON/HTTP API, sessions, gzip, load testing.

The paper's deployment (Sec. III) is a Java simulation server behind an
HTTP JSON API, consumed by a web client and a CLI.  This package provides
the same server in Python: a protocol layer (pure request/response
handlers), a session manager for interactive step/step-back simulation, a
threaded HTTP server with gzip content-encoding, and a client library.
"""

from repro.server.protocol import ApiError, handle_request
from repro.server.session import SessionManager
from repro.server.httpd import SimServer, serve
from repro.server.client import SimClient

__all__ = ["handle_request", "ApiError", "SessionManager", "SimServer",
           "serve", "SimClient"]
