"""``repro-sim`` — batch simulation CLI.

Sec. II-E of the paper: *"The CLI requires two mandatory arguments: the
assembly language source code in a text file and the architecture
description in JSON format.  Additional parameters allow to specify the
program's entry point, memory configuration, data dump, and various levels
of output verbosity and format (either text or JSON).  The CLI must be
connected to the server using host and port parameters, with an optional
connection to the GCC compiler."*

This CLI supports both modes: ``--host/--port`` talk to a running
``repro-server``; without them the simulation runs in-process (convenient
for batch benchmarking on one machine).  ``--compile`` accepts a C file
instead of assembly and runs the integrated compiler first.

``repro-sim explore SPEC.json`` enters the design-space experiment engine
(:mod:`repro.explore`): the spec's grid (or random sample) of
program x architecture points runs on a pluggable execution backend —
``--backend serial`` (in-process loop), ``--backend process`` (local
worker pool, the default), or ``--backend remote`` fanning jobs out over
HTTP to a fleet of sweep workers named by repeatable ``--worker-url``
flags — or is submitted to a running server with ``--host``, where
``--backend fleet`` runs it on the server's own registered worker fleet
(:mod:`repro.fleet`) and ``--follow`` streams live per-job progress
events instead of polling.  The comparison report (metric table,
best-config ranking, pairwise speedups) prints as text or JSON.
``repro-sim worker`` serves one such sweep worker (a repro-server whose
expected traffic is ``/worker/execute``); with ``--register
FRONTEND:PORT`` it heartbeats into that frontend's fleet registry.

``repro-sim warehouse`` is the cross-run result warehouse console
(:mod:`repro.explore.warehouse`): ``ingest`` historical run JSONL files
into a local ``--store`` file, then ``query`` / ``pareto`` / ``diff`` /
``baseline`` against it — or against a running server's warehouse with
``--host``, where every finished sweep is ingested automatically and
``repro-sim explore --follow`` warns when the just-finished sweep
regressed against the pinned baseline.

``repro-sim lint`` runs repro-lint (:mod:`repro.analyze`), the static
invariant checker: state-contract pairing and dirty-version bumps,
lock discipline in the threaded modules, determinism of the record
paths, and protocol-surface completeness — against the committed
``lint-baseline.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.compiler.driver import compile_c
from repro.core.config import CpuConfig
from repro.errors import ReproError, SourceError
from repro.memory.layout import MemoryLocation
from repro.sim.simulation import Simulation


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Batch simulator for superscalar RISC-V programs",
        epilog="Design-space sweeps: 'repro-sim explore SPEC.json --help' "
               "runs grids/samples of configurations on a worker pool or "
               "a remote fleet; 'repro-sim worker --help' serves one "
               "fleet worker; 'repro-sim warehouse --help' queries the "
               "cross-run result warehouse (Pareto frontiers, baseline "
               "regression diffs); 'repro-sim lint --help' runs the "
               "static invariant checker over src/repro.")
    parser.add_argument("program",
                        help="assembly source file (or C file with --compile)")
    parser.add_argument("architecture",
                        help="architecture description JSON file, or a "
                             "preset name (default/scalar/wide)")
    parser.add_argument("--entry", default=None,
                        help="entry point label or byte address")
    parser.add_argument("--memory", default=None,
                        help="memory configuration JSON file "
                             "(list of MemoryLocation objects)")
    parser.add_argument("--dump", default=None, metavar="ADDR:LEN",
                        help="hex-dump a memory range after the run")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--verbosity", type=int, choices=(0, 1, 2), default=1,
                        help="0: headline metrics, 1: summary, 2: full stats")
    parser.add_argument("--max-cycles", type=int, default=None)
    parser.add_argument("--compile", action="store_true",
                        help="treat the program as C and compile it first")
    parser.add_argument("-O", "--optimize", type=int, default=1,
                        choices=(0, 1, 2, 3), help="C optimization level")
    parser.add_argument("--emit-asm", default=None, metavar="FILE",
                        help="with --compile: also write the generated assembly")
    parser.add_argument("--host", default=None,
                        help="simulation server host (remote mode)")
    parser.add_argument("--port", type=int, default=8045,
                        help="simulation server port (remote mode)")
    parser.add_argument("--power", action="store_true",
                        help="append the area / power estimate report")
    parser.add_argument("--disassemble", action="store_true",
                        help="print the machine-code disassembly and exit")
    return parser


def _load_architecture(spec: str) -> CpuConfig:
    if spec in ("default", "scalar", "wide"):
        return CpuConfig.preset(spec)
    with open(spec, "r", encoding="utf-8") as handle:
        return CpuConfig.from_json_str(handle.read())


def _load_memory(path: Optional[str]) -> List[MemoryLocation]:
    if path is None:
        return []
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if isinstance(data, dict):
        data = data.get("memory", [])
    return [MemoryLocation.from_json(d) for d in data]


def _parse_dump(spec: Optional[str]):
    if spec is None:
        return None
    addr_text, _, len_text = spec.partition(":")
    return int(addr_text, 0), int(len_text or "64", 0)


def _print_text(stats: dict, verbosity: int, out) -> None:
    print(f"halt reason       : {stats['haltReason']}", file=out)
    print(f"cycles            : {stats['cycles']}", file=out)
    print(f"committed instrs  : {stats['committedInstructions']}", file=out)
    print(f"IPC               : {stats['ipc']:.3f}", file=out)
    if verbosity == 0:
        return
    bp = stats["branchPredictor"]
    print(f"branch accuracy   : {bp['accuracy']:.3f} "
          f"({bp['correct']}/{bp['predictions']})", file=out)
    print(f"ROB flushes       : {stats['robFlushes']}", file=out)
    print(f"FLOPs             : {stats['flopsTotal']}", file=out)
    print(f"wall time         : {stats['wallTimeS'] * 1e6:.2f} us "
          f"@ simulated clock", file=out)
    if "cache" in stats:
        cache = stats["cache"]
        print(f"cache hit ratio   : {cache['hitRatio']:.3f} "
              f"({cache['hits']}/{cache['accesses']}), "
              f"{cache['bytesWritten']} B written", file=out)
    if verbosity < 2:
        return
    print("dynamic mix       :", file=out)
    for key, value in sorted(stats["dynamicMix"].items()):
        pct = stats["dynamicMixPercent"][key]
        print(f"    {key:<20} {value:>8} ({pct:5.1f} %)", file=out)
    print("unit utilization  :", file=out)
    for name, info in sorted(stats["functionalUnits"].items()):
        print(f"    {name:<8} {info['kind']:<7} busy {info['busyCycles']:>8} "
              f"cycles ({info['busyPercent']:5.1f} %)", file=out)
    print("dispatch stalls   :", file=out)
    for key, value in sorted(stats["dispatchStalls"].items()):
        print(f"    {key:<16} {value}", file=out)


def build_explore_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim explore",
        description="Run a design-space sweep (repro.explore) and report")
    parser.add_argument("spec", help="sweep specification JSON file")
    parser.add_argument("--backend",
                        choices=("serial", "process", "remote", "fleet"),
                        default=None,
                        help="execution backend (default: inferred from "
                             "--workers — 0 is serial, anything else the "
                             "local process pool; 'fleet' runs on the "
                             "server's registered worker fleet and "
                             "requires --host)")
    parser.add_argument("--worker-url", action="append", default=None,
                        metavar="HOST:PORT", dest="worker_urls",
                        help="remote sweep worker (repeat once per worker; "
                             "requires --backend remote; start workers "
                             "with 'repro-sim worker')")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: one per CPU; "
                             "0 = serial in-process loop)")
    parser.add_argument("--job-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-job wall-clock budget "
                             "(process/remote backends)")
    parser.add_argument("--out", default=None, metavar="FILE.jsonl",
                        help="write per-run records as JSONL")
    parser.add_argument("--metric", default="cycles",
                        help="ranking metric (cycles/ipc/energy/...)")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-job progress lines")
    parser.add_argument("--host", default=None,
                        help="submit to a running repro-server instead of "
                             "executing locally")
    parser.add_argument("--port", type=int, default=8045)
    parser.add_argument("--poll", type=float, default=0.5,
                        help="status poll interval in remote mode")
    parser.add_argument("--follow", action="store_true",
                        help="with --host: stream live per-job progress "
                             "events (GET /explore/stream) instead of "
                             "polling /explore/status")
    parser.add_argument("--trace-out", default=None, metavar="FILE.ndjson",
                        dest="trace_out",
                        help="with --host: export the sweep's span tree "
                             "(GET /trace/<sweepId>) as NDJSON, one span "
                             "per line, after the sweep finishes")
    return parser


def _follow_summary(finished: list, total: int) -> str:
    """One "repro-sim top"-style live line: completion, verdicts, and
    the wall-time percentiles (shared nearest-rank rule) so a slow tail
    is visible while the sweep is still running."""
    ok = sum(1 for event in finished if event.get("kind") == "ok")
    failed = len(finished) - ok
    line = f"  == {len(finished)}/{total} jobs ({ok} ok, {failed} failed)"
    elapsed = sorted(event.get("elapsedS", 0.0) for event in finished
                     if event.get("elapsedS") is not None)
    if elapsed:
        from repro.obs.metrics import nearest_rank
        line += (f", wall p50 {nearest_rank(elapsed, 0.5) * 1e3:.0f}ms"
                 f" p90 {nearest_rank(elapsed, 0.9) * 1e3:.0f}ms")
    return line


def _render_event(event: dict) -> str:
    kind = event.get("event")
    if kind == "dispatch":
        return (f"  [{event.get('job', '?')}] {event.get('label', '')} "
                f"-> worker {event.get('worker')}")
    if kind == "finish":
        verdict = event.get("kind", "?")
        note = "" if verdict == "ok" else f": {event.get('error', '')}"
        return (f"  [{event.get('job', '?')}] {event.get('label', '')} "
                f"{verdict} in {event.get('elapsedS', 0):.3f}s{note}")
    detail = {key: value for key, value in event.items()
              if key not in ("seq", "event", "sweepId", "tS")}
    return f"  {kind} {detail}" if detail else f"  {kind}"


def _warn_regressions(client, sweep_id: str) -> None:
    """One-line warning after ``--follow`` when the finished sweep
    regressed against the warehouse baseline (the server-side sentinel,
    reused as a pure query here).  Silent by design when no baseline is
    pinned (409) or the diff fails — the warning is advisory, never a
    reason to fail the sweep."""
    from repro.server.protocol import ApiError
    try:
        diff = client.warehouse_regressions(sweep=sweep_id)
    except (ApiError, OSError):
        return
    flags = [flag for entry in diff.get("sweeps", [])
             for flag in entry.get("flags", [])]
    if not flags:
        return
    worst = max(flags, key=lambda flag: abs(flag.get("deltaPct", 0)))
    print(f"WARNING: sweep {sweep_id} regressed vs baseline "
          f"{diff.get('baseline')}: {len(flags)} metric delta(s) beyond "
          f"{diff.get('tolerance', 0) * 100:g}% (worst: {worst['label']} "
          f"{worst['metric']} {worst.get('deltaPct', 0):+g}%) — "
          f"see 'repro-sim warehouse diff'", file=sys.stderr)


def _explore_remote(args, spec_data: dict, out) -> int:
    import time

    from repro.server.client import SimClient
    client = SimClient(args.host, args.port)
    # "remote" + --host already errored out in explore_main, so this is
    # None or a server-side backend name, forwarded verbatim
    backend = args.backend
    if backend == "fleet" and not args.quiet:
        from repro.viz.sweep import render_fleet_table
        fleet = client.health().get("fleet")
        if fleet:
            print(render_fleet_table(fleet), file=sys.stderr, end="")
    submitted = client.explore_submit(spec_data, workers=args.workers,
                                      metric=args.metric,
                                      job_timeout_s=args.job_timeout,
                                      backend=backend)
    sweep_id = submitted["sweepId"]
    if not args.quiet:
        print(f"submitted sweep {sweep_id} "
              f"({submitted['jobs']} jobs, "
              f"{submitted.get('backend', 'default')} backend)",
              file=sys.stderr)
    if args.follow:
        # live event stream: one line per dispatch/finish plus a rolling
        # top-style summary, ends with the terminal event — no polling
        finished = []
        total = submitted["jobs"]
        for event in client.explore_stream(sweep_id):
            if args.quiet:
                continue
            print(_render_event(event), file=sys.stderr)
            if event.get("event") == "finish":
                finished.append(event)
                print(_follow_summary(finished, total), file=sys.stderr)
        status = client.explore_status(sweep_id)
        if status["state"] == "done":
            _warn_regressions(client, sweep_id)
    else:
        while True:
            status = client.explore_status(sweep_id)
            if status["state"] in ("done", "failed", "cancelled"):
                break
            if not args.quiet:
                print(f"  {status['completed']}/{status['jobs']} jobs done",
                      file=sys.stderr)
            time.sleep(max(0.05, args.poll))
    result = client.explore_result(sweep_id, metric=args.metric)
    if args.trace_out:
        trace = client.trace(sweep_id)
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            for span in trace["spans"]:
                handle.write(json.dumps(span, sort_keys=True) + "\n")
        if not args.quiet:
            print(f"wrote {len(trace['spans'])} spans to {args.trace_out}",
                  file=sys.stderr)
    if args.out:
        from repro.explore import ResultStore
        with ResultStore(args.out) as store:
            store.extend(result["records"])
    if args.format == "json":
        json.dump(result["report"], out, indent=2)
        print(file=out)
    else:
        print(result["reportText"], file=out, end="")
    return 0 if status["state"] == "done" and not status["failed"] else 1


def explore_main(argv: Optional[List[str]] = None) -> int:
    """``repro-sim explore`` — the batch experiment-engine mode."""
    args = build_explore_parser().parse_args(argv)
    out = sys.stdout
    from repro.explore import (METRICS, ResultStore, SweepSpec,
                               default_worker_count, resolve_backend,
                               run_sweep)
    if args.metric not in METRICS:
        # fail before any simulation runs: a typo'd metric must not cost
        # the whole sweep
        print(f"error: unknown ranking metric {args.metric!r} "
              f"(one of {', '.join(sorted(METRICS))})", file=sys.stderr)
        return 2
    if args.workers is not None and args.workers < 0:
        print("error: --workers must be >= 0 (0 = serial)",
              file=sys.stderr)
        return 2
    if args.worker_urls and args.backend != "remote":
        print("error: --worker-url requires --backend remote",
              file=sys.stderr)
        return 2
    if args.backend == "remote":
        if args.host is not None:
            print("error: --backend remote drives the worker fleet "
                  "directly; it cannot be combined with --host submission",
                  file=sys.stderr)
            return 2
        if not args.worker_urls:
            print("error: --backend remote needs at least one --worker-url "
                  "(start workers with 'repro-sim worker')", file=sys.stderr)
            return 2
    if args.backend == "fleet" and args.host is None:
        print("error: --backend fleet is server-orchestrated: submit with "
              "--host to a repro-server whose workers registered via "
              "'repro-sim worker --register'", file=sys.stderr)
        return 2
    if args.follow and args.host is None:
        print("error: --follow streams server-side progress; it requires "
              "--host", file=sys.stderr)
        return 2
    try:
        spec = SweepSpec.load(args.spec)
    except (OSError, ReproError) as exc:
        print(f"error: cannot load sweep spec: {exc}", file=sys.stderr)
        return 2

    if args.host is not None:
        return _explore_remote(args, spec.to_json(), out)

    workers = args.workers if args.workers is not None \
        else default_worker_count()
    try:
        backend = resolve_backend(args.backend, workers=workers,
                                  job_timeout_s=args.job_timeout,
                                  worker_urls=args.worker_urls or ())
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    store = ResultStore(args.out) if args.out else None

    def progress(record: dict) -> None:
        if not args.quiet:
            verdict = "ok" if record["ok"] else record.get("kind", "error")
            print(f"  [{record['index'] + 1:>3}] {record['label']:<48} "
                  f"{verdict}", file=sys.stderr)

    try:
        run = run_sweep(spec, store=store, on_record=progress,
                        backend=backend)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        backend.close()
        if store is not None:
            store.close()
    report = run.report(metric=args.metric)
    if args.format == "json":
        payload = report.to_json()
        payload["elapsedS"] = round(run.elapsed_s, 4)
        payload["backend"] = run.backend
        payload["workers"] = run.workers
        payload["execution"] = run.execution
        json.dump(payload, out, indent=2)
        print(file=out)
    else:
        print(f"{len(run.jobs)} jobs on the {run.backend} backend "
              f"({run.workers if run.workers else 'no'} workers) in "
              f"{run.elapsed_s:.2f}s", file=out)
        print(report.render_text(), file=out, end="")
        if not args.quiet:
            from repro.viz.sweep import render_execution_summary
            summary = render_execution_summary(run.to_json())
            if summary:
                print(summary, file=out, end="")
    # failed grid points must be mappable back to their configs: repeat
    # them on stderr with job id + axis values (the report's FAILED lines
    # carry the same), independent of --format/--quiet
    for record in run.failures:
        point = ", ".join(f"{k}={v}"
                          for k, v in record.get("point", {}).items())
        print(f"FAILED job {record['index']} ({point}): "
              f"{record.get('kind', 'error')}: {record.get('error')}",
              file=sys.stderr)
    return 0 if not run.failures else 1


def build_warehouse_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim warehouse",
        description="Cross-run result warehouse console: ingest run "
                    "JSONL files, query records, extract Pareto "
                    "frontiers, pin a baseline, and diff sweeps "
                    "against it (repro.explore.warehouse)",
        epilog="Local mode (--store FILE.jsonl) keeps the warehouse in "
               "one append-only file that survives invocations "
               "(including the baseline pin); remote mode (--host) "
               "talks to a running repro-server, whose warehouse "
               "ingests every finished sweep automatically.")
    parser.add_argument("action",
                        choices=("ingest", "query", "pareto", "diff",
                                 "baseline"),
                        help="ingest RUN.jsonl...  |  query  |  pareto  "
                             "|  diff (exit 1 when regressions are "
                             "flagged)  |  baseline SWEEP_ID")
    parser.add_argument("args", nargs="*",
                        help="run JSONL files for 'ingest'; the sweep "
                             "id for 'baseline'")
    parser.add_argument("--store", default=None, metavar="FILE.jsonl",
                        help="local warehouse file (created on first "
                             "use; mutually exclusive with --host)")
    parser.add_argument("--host", default=None,
                        help="query a running repro-server's warehouse")
    parser.add_argument("--port", type=int, default=8045)
    parser.add_argument("--sweep", default=None,
                        help="filter to one sweep id or name (diff: the "
                             "sweep to compare against the baseline)")
    parser.add_argument("--program", default=None,
                        help="filter to one program name")
    parser.add_argument("--axis", action="append", default=None,
                        metavar="AXIS=VALUE", dest="axis_filters",
                        help="filter by an axis point value (repeatable)")
    parser.add_argument("-x", default="cycles", dest="x_metric",
                        metavar="METRIC", help="pareto: x metric "
                        "(default cycles)")
    parser.add_argument("-y", default="energy", dest="y_metric",
                        metavar="METRIC", help="pareto: y metric "
                        "(default energy)")
    parser.add_argument("--metrics", default=None,
                        help="diff: comma-separated metrics "
                             "(default cycles,energy,area)")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="diff: relative worse-direction delta "
                             "beyond which a config is flagged "
                             "(default 0.05)")
    parser.add_argument("--name", default=None,
                        help="ingest: sweep display name "
                             "(default: the file stem)")
    parser.add_argument("--sweep-id", default=None, dest="sweep_id",
                        help="ingest: explicit sweep id (default: a "
                             "content hash of the records)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    return parser


def _warehouse_axes(axis_filters) -> Optional[dict]:
    if not axis_filters:
        return None
    axes = {}
    for item in axis_filters:
        name, sep, value = item.partition("=")
        if not sep or not name:
            raise ValueError(f"--axis takes AXIS=VALUE, got {item!r}")
        axes[name] = value
    return axes


def warehouse_main(argv: Optional[List[str]] = None) -> int:
    """``repro-sim warehouse`` — the cross-run result warehouse console."""
    args = build_warehouse_parser().parse_args(argv)
    out = sys.stdout
    if (args.store is None) == (args.host is None):
        print("error: pick exactly one warehouse: --store FILE.jsonl "
              "(local) or --host HOST (a running repro-server)",
              file=sys.stderr)
        return 2
    try:
        axes = _warehouse_axes(args.axis_filters)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    metrics = None
    if args.metrics is not None:
        metrics = [m.strip() for m in args.metrics.split(",") if m.strip()]

    from repro.server.protocol import ApiError
    from repro.viz.warehouse import (render_pareto_frontier,
                                     render_regression_report,
                                     render_warehouse_table)

    local = client = None
    if args.store is not None:
        from repro.explore.warehouse import ResultWarehouse
        local = ResultWarehouse(args.store)
    else:
        from repro.server.client import SimClient
        client = SimClient(args.host, args.port)

    try:
        if args.action == "ingest":
            if client is not None:
                print("error: 'ingest' is local-only (a server's "
                      "warehouse ingests every finished sweep "
                      "automatically)", file=sys.stderr)
                return 2
            if not args.args:
                print("error: 'ingest' needs at least one run JSONL "
                      "file (e.g. from 'repro-sim explore --out')",
                      file=sys.stderr)
                return 2
            import time as _time
            for path in args.args:
                ack = local.import_file(path, sweep_id=args.sweep_id,
                                        name=args.name,
                                        ingested_at=_time.time())
                print(f"ingested {path} as sweep {ack['sweepId']}: "
                      f"{ack['ingested']} new / {ack['skipped']} known "
                      f"record(s)"
                      + (f", {ack['regressions']} regression(s) vs "
                         f"baseline" if ack["regressions"] else ""),
                      file=out)
            return 0
        if args.action == "baseline":
            if len(args.args) != 1:
                print("error: 'baseline' takes exactly one sweep id",
                      file=sys.stderr)
                return 2
            ack = client.warehouse_baseline(args.args[0]) \
                if client is not None else local.set_baseline(args.args[0])
            print(f"baseline pinned: sweep {ack['baseline']} "
                  f"({ack['name']}, {ack['records']} record(s))", file=out)
            return 0
        if args.action == "query":
            result = client.warehouse_query(
                sweep=args.sweep, program=args.program, axes=axes,
                metrics=metrics) if client is not None else \
                local.query(sweep=args.sweep, program=args.program,
                            axes=axes,
                            **({"metrics": metrics} if metrics else {}))
            if args.format == "json":
                json.dump(result, out, indent=2, sort_keys=True)
                print(file=out)
            else:
                print(render_warehouse_table(result), file=out, end="")
            return 0
        if args.action == "pareto":
            result = client.warehouse_pareto(
                x=args.x_metric, y=args.y_metric, sweep=args.sweep,
                program=args.program, axes=axes) if client is not None \
                else local.pareto(x=args.x_metric, y=args.y_metric,
                                  sweep=args.sweep, program=args.program,
                                  axes=axes)
            if args.format == "json":
                json.dump(result, out, indent=2, sort_keys=True)
                print(file=out)
            else:
                print(render_pareto_frontier(result), file=out, end="")
            return 0
        # diff: exit 1 when the sentinel flags anything (CI-friendly)
        kwargs = {}
        if args.tolerance is not None:
            kwargs["tolerance"] = args.tolerance
        if metrics:
            kwargs["metrics"] = metrics
        result = client.warehouse_regressions(sweep=args.sweep, **kwargs) \
            if client is not None \
            else local.regressions(sweep=args.sweep, **kwargs)
        if args.format == "json":
            json.dump(result, out, indent=2, sort_keys=True)
            print(file=out)
        else:
            print(render_regression_report(result), file=out, end="")
        return 1 if result.get("flagged") else 0
    except (ApiError, OSError, KeyError, ValueError) as exc:
        message = exc.args[0] if isinstance(exc, KeyError) and exc.args \
            else exc
        print(f"error: {message}", file=sys.stderr)
        return 2
    finally:
        if local is not None:
            local.close()


def build_worker_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim worker",
        description="Serve one distributed-sweep worker (a repro-server "
                    "whose expected traffic is POST /worker/execute; "
                    "point 'repro-sim explore --backend remote "
                    "--worker-url HOST:PORT' at it)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8046,
                        help="TCP port (0 picks a free one, printed in "
                             "the startup banner)")
    parser.add_argument("--no-gzip", action="store_true",
                        help="disable gzip content-encoding")
    parser.add_argument("--register", default=None, metavar="HOST:PORT",
                        help="fleet frontend to register with "
                             "(periodic /fleet/register heartbeats; the "
                             "frontend then schedules 'backend: fleet' "
                             "sweeps onto this worker)")
    parser.add_argument("--advertise", default=None, metavar="HOST:PORT",
                        help="URL the frontend should dial back "
                             "(default: --host:--port as bound; set this "
                             "behind NAT / container networking)")
    parser.add_argument("--capacity", type=int, default=1,
                        help="advertised parallel-job capacity")
    parser.add_argument("--heartbeat", type=float, default=None,
                        metavar="SECONDS",
                        help="heartbeat interval override (default: "
                             "what the frontend suggests, TTL/3)")
    parser.add_argument("--cancel-stride", type=int, default=None,
                        metavar="CYCLES",
                        help="cooperative-cancel check interval for "
                             "jobs this worker executes")
    parser.add_argument("--quiet", action="store_true")
    return parser


def worker_main(argv: Optional[List[str]] = None) -> int:
    """``repro-sim worker`` — serve jobs for remote design-space sweeps."""
    args = build_worker_parser().parse_args(argv)
    from repro.server.httpd import serve
    serve(args.host, args.port, enable_gzip=not args.no_gzip,
          verbose=not args.quiet, role="sweep worker",
          register_with=args.register, advertise=args.advertise,
          capacity=args.capacity, heartbeat_s=args.heartbeat,
          cancel_stride=args.cancel_stride)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "explore":
        return explore_main(argv[1:])
    if argv and argv[0] == "worker":
        return worker_main(argv[1:])
    if argv and argv[0] == "warehouse":
        return warehouse_main(argv[1:])
    if argv and argv[0] == "lint":
        from repro.analyze.cli import lint_main
        return lint_main(argv[1:])
    args = build_parser().parse_args(argv)
    out = sys.stdout

    try:
        with open(args.program, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        print(f"error: cannot read program: {exc}", file=sys.stderr)
        return 2

    if args.compile:
        result = compile_c(source, args.optimize)
        if not result.success:
            for err in result.errors:
                print(f"error: {err['line']}:{err['column']}: "
                      f"{err['message']}", file=sys.stderr)
            return 1
        source = result.assembly
        if args.emit_asm:
            with open(args.emit_asm, "w", encoding="utf-8") as handle:
                handle.write(source)

    try:
        config = _load_architecture(args.architecture)
        memory = _load_memory(args.memory)
    except (OSError, json.JSONDecodeError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    entry: Optional[object] = args.entry
    if entry is not None and entry.isdigit():
        entry = int(entry)

    if args.disassemble:
        from repro.asm.parser import Assembler
        from repro.isa.encoding import disassemble, encode_program
        try:
            program = Assembler().assemble(
                source, entry=entry, memory_locations=memory,
                stack_size=config.memory.call_stack_size)
        except SourceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        for line in disassemble(encode_program(program)):
            print(line, file=out)
        return 0

    if args.host is not None:
        # remote mode: send the job to a running repro-server
        from repro.server.client import SimClient
        client = SimClient(args.host, args.port)
        response = client.simulate(
            source, config=config.to_json(), entry=entry,
            memory=[m.to_json() for m in memory],
            maxCycles=args.max_cycles)
        if not response.get("success"):
            print(f"error: {response.get('errors')}", file=sys.stderr)
            return 1
        stats = response["result"]["statistics"]
        if args.format == "json":
            json.dump(response["result"], out, indent=2)
            print(file=out)
        else:
            _print_text(stats, args.verbosity, out)
        return 0

    try:
        simulation = Simulation.from_source(
            source, config=config, entry=entry, memory_locations=memory)
        result = simulation.run(args.max_cycles)
    except SourceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.format == "json":
        payload = result.to_json()
        dump = _parse_dump(args.dump)
        if dump is not None:
            payload["memoryDump"] = simulation.cpu.memory.dump(*dump)
        json.dump(payload, out, indent=2)
        print(file=out)
    else:
        _print_text(result.statistics, args.verbosity, out)
        if args.verbosity >= 2:
            ring = simulation.checkpoints
            print(f"checkpoint ring   : {len(ring)} checkpoints, "
                  f"{ring.bytes_retained() / 1024.0:.1f} KiB retained "
                  f"(shared pages counted once)", file=out)
            tier = simulation.cpu._trace_tier
            if tier is not None:
                t = tier.stats
                print(f"trace tier        : {t['compiled']}/{t['blocks']} "
                      f"superblocks compiled, {t['sideExits']} side exits, "
                      f"{t['invalidations']} invalidations", file=out)
        dump = _parse_dump(args.dump)
        if dump is not None:
            print("memory dump:", file=out)
            print(simulation.cpu.memory.dump(*dump), file=out)
        if args.power:
            from repro.sim.energy import render_power_report
            print(file=out)
            print(render_power_report(simulation.cpu), file=out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
