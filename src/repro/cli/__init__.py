"""Batch command-line interface (Sec. II-E)."""

from repro.cli.main import main

__all__ = ["main"]
