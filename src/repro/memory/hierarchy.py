"""Memory hierarchy facade used by the load/store pipeline.

Combines :class:`MainMemory` and the optional L1 :class:`Cache` behind one
timing interface.  Data always moves through main memory (see cache module
docstring); this class decides *when* it becomes available.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple, Union

from repro.memory.cache import Cache, CacheConfig
from repro.memory.main_memory import MainMemory
from repro.memory.transaction import MemoryTransaction

Number = Union[int, float]


class MemoryModel:
    """Timing + data front-end for loads and stores."""

    def __init__(self, memory: MainMemory, cache: Optional[Cache] = None):
        self.memory = memory
        self.cache = cache

    # -- timing -----------------------------------------------------------
    def access_delay(self, address: int, size: int, is_store: bool,
                     cycle: int, instruction_id: int = -1) -> int:
        """Cycles the access takes from issue to completion."""
        if self.cache is not None and self.cache.config.enabled:
            delay, _hit, _txs = self.cache.access(
                address, size, is_store, cycle, instruction_id)
            return delay
        return self.memory.store_latency if is_store else self.memory.load_latency

    # -- data + timing in one step ----------------------------------------
    @property
    def _cache_active(self) -> bool:
        return self.cache is not None and self.cache.config.enabled

    def load(self, address: int, size: int, signed: bool, is_float: bool,
             cycle: int, instruction_id: int = -1) -> Tuple[Number, int, MemoryTransaction]:
        """Perform a load; returns (value, delay, transaction).

        Main-memory traffic counters are charged by the cache's fill path
        when a cache is active; without one, every access is DRAM traffic.
        """
        delay = self.access_delay(address, size, False, cycle, instruction_id)
        tx = MemoryTransaction(address=address, size=size, is_store=False,
                               instruction_id=instruction_id)
        tx.issued_cycle = cycle
        tx.finished_cycle = cycle + delay
        tx.data = self.memory.read_bytes(address, size)
        if self._cache_active:
            tx.cache_hit = delay <= self.cache.config.access_delay
        else:
            self.memory.load_count += 1
            self.memory.bytes_read += size
        if is_float:
            value: Number = struct.unpack("<f", tx.data)[0] if size == 4 \
                else struct.unpack("<d", tx.data)[0]
        else:
            value = int.from_bytes(tx.data, "little", signed=signed)
        return value, delay, tx

    def store(self, address: int, payload: bytes, cycle: int,
              instruction_id: int = -1) -> Tuple[int, MemoryTransaction]:
        """Perform a store; returns (delay, transaction)."""
        delay = self.access_delay(address, len(payload), True, cycle,
                                  instruction_id)
        tx = MemoryTransaction(address=address, size=len(payload),
                               is_store=True, data=payload,
                               instruction_id=instruction_id)
        tx.issued_cycle = cycle
        tx.finished_cycle = cycle + delay
        self.memory.write_bytes(address, payload)
        if not self._cache_active:
            self.memory.store_count += 1
            self.memory.bytes_written += len(payload)
        return delay, tx

    def reset(self) -> None:
        self.memory.reset()
        if self.cache is not None:
            self.cache.reset()
