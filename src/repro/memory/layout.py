"""Memory-editor data model (Fig. 8).

Users "define static global arrays of various basic data types and specify
their alignment.  Arrays can be populated with user-specified values
separated by commas, repeated constants (e.g., zeros), or random values.
Additionally, memory dumps can be imported and exported in binary or CSV
format."  Arrays declared here are referenced from C via ``extern`` and
from assembly by label.
"""

from __future__ import annotations

import csv
import io
import random
import struct
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.errors import ConfigError

Number = Union[int, float]

_DTYPES = {
    "byte": (1, "<b"), "ubyte": (1, "<B"), "char": (1, "<B"),
    "half": (2, "<h"), "uhalf": (2, "<H"), "hword": (2, "<h"),
    "word": (4, "<i"), "uword": (4, "<I"), "int": (4, "<i"),
    "float": (4, "<f"), "double": (8, "<d"),
}


@dataclass
class MemoryLocation:
    """One named static array defined in the Memory-settings window."""

    name: str
    dtype: str = "word"
    alignment: int = 4
    #: explicit element values ("user-specified values separated by commas")
    values: Optional[Sequence[Number]] = None
    #: or a repeated constant over *count* elements
    repeat_value: Optional[Number] = None
    #: or random values over *count* elements (seeded -> deterministic)
    random_count: Optional[int] = None
    random_seed: int = 7
    random_low: float = 0.0
    random_high: float = 100.0
    count: int = 0

    def __post_init__(self) -> None:
        if self.dtype not in _DTYPES:
            raise ConfigError(
                f"unknown data type '{self.dtype}' for array '{self.name}' "
                f"(expected one of {sorted(_DTYPES)})")
        if self.alignment <= 0 or self.alignment & (self.alignment - 1):
            raise ConfigError(
                f"alignment of '{self.name}' must be a positive power of two")
        modes = sum(x is not None for x in
                    (self.values, self.repeat_value, self.random_count))
        if modes != 1:
            raise ConfigError(
                f"array '{self.name}': specify exactly one of values / "
                f"repeat_value / random_count")

    @property
    def element_size(self) -> int:
        return _DTYPES[self.dtype][0]

    @property
    def is_float(self) -> bool:
        return self.dtype in ("float", "double")

    def elements(self) -> List[Number]:
        """Materialize the element list for this array."""
        if self.values is not None:
            return list(self.values)
        if self.repeat_value is not None:
            n = self.count if self.count > 0 else 1
            return [self.repeat_value] * n
        rng = random.Random(self.random_seed)
        n = self.random_count or 0
        if self.is_float:
            return [rng.uniform(self.random_low, self.random_high)
                    for _ in range(n)]
        low, high = int(self.random_low), int(self.random_high)
        return [rng.randint(low, max(low, high)) for _ in range(n)]

    def byte_length(self) -> int:
        """Size in bytes of the materialized array."""
        return self.element_size * len(self.elements())

    def decode(self, raw: bytes) -> List[Number]:
        """Typed element values read back from *raw* bytes (the inverse of
        :meth:`to_bytes`): what the memory editor shows for this array's
        region of a live simulation."""
        return decode_values(raw, self.dtype)

    def to_bytes(self) -> bytes:
        size, fmt = _DTYPES[self.dtype]
        out = bytearray()
        for value in self.elements():
            if self.is_float:
                out.extend(struct.pack(fmt, float(value)))
            else:
                mask = (1 << (8 * size)) - 1
                out.extend(struct.pack(fmt[0] + fmt[1].upper(), int(value) & mask))
        return bytes(out)

    def to_json(self) -> dict:
        data = {"name": self.name, "dtype": self.dtype,
                "alignment": self.alignment}
        if self.values is not None:
            data["values"] = list(self.values)
        elif self.repeat_value is not None:
            data["repeatValue"] = self.repeat_value
            data["count"] = self.count
        else:
            data["randomCount"] = self.random_count
            data["randomSeed"] = self.random_seed
            data["randomLow"] = self.random_low
            data["randomHigh"] = self.random_high
        return data

    @staticmethod
    def from_json(data: dict) -> "MemoryLocation":
        return MemoryLocation(
            name=data["name"],
            dtype=data.get("dtype", "word"),
            alignment=int(data.get("alignment", 4)),
            values=data.get("values"),
            repeat_value=data.get("repeatValue"),
            random_count=data.get("randomCount"),
            random_seed=int(data.get("randomSeed", 7)),
            random_low=float(data.get("randomLow", 0.0)),
            random_high=float(data.get("randomHigh", 100.0)),
            count=int(data.get("count", 0)),
        )


# ---------------------------------------------------------------------------
def decode_values(raw: bytes, dtype: str) -> List[Number]:
    """Decode *raw* little-endian bytes as a list of *dtype* elements.

    The typed read-back used by the server's ``/session/memory`` view and
    :meth:`MemoryLocation.decode`; trailing bytes that do not fill a whole
    element are ignored.
    """
    if dtype not in _DTYPES:
        raise ConfigError(
            f"unknown data type '{dtype}' (expected one of {sorted(_DTYPES)})")
    size, fmt = _DTYPES[dtype]
    count = len(raw) // size
    if count == 0:
        return []
    return list(struct.unpack("<" + fmt[1] * count, raw[:count * size]))


def export_csv(memory_bytes: bytes, width: int = 16) -> str:
    """Export a memory dump as CSV (address, byte values...)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["address"] + [f"b{i}" for i in range(width)])
    for base in range(0, len(memory_bytes), width):
        chunk = memory_bytes[base:base + width]
        writer.writerow([base] + [int(b) for b in chunk])
    return buf.getvalue()


def import_csv(text: str) -> bytearray:
    """Import a CSV memory dump produced by :func:`export_csv`."""
    reader = csv.reader(io.StringIO(text))
    rows = [row for row in reader if row]
    if not rows:
        return bytearray()
    body = rows[1:] if rows[0] and rows[0][0] == "address" else rows
    chunks = {}
    for row in body:
        address = int(row[0])
        chunks[address] = bytes(int(v) for v in row[1:] if v != "")
    if not chunks:
        return bytearray()
    end = max(addr + len(data) for addr, data in chunks.items())
    out = bytearray(end)
    for addr, data in chunks.items():
        out[addr:addr + len(data)] = data
    return out


def export_binary(memory_bytes: bytes) -> bytes:
    """Binary memory dump (identity; symmetric with :func:`import_binary`)."""
    return bytes(memory_bytes)


def import_binary(blob: bytes) -> bytearray:
    return bytearray(blob)
