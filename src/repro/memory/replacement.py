"""Cache line replacement policies: LRU, FIFO, Random (Sec. II-C).

Each policy manages one cache *set*; the cache instantiates one policy
object per set.  The Random policy draws from a seeded generator so runs
are reproducible (a hard requirement for backward simulation, Sec. III-B).
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.errors import ConfigError


class ReplacementPolicy:
    """Tracks way usage within one set and picks eviction victims."""

    def __init__(self, ways: int):
        self.ways = ways

    def touch(self, way: int) -> None:
        """Record an access (hit or fill) to *way*."""

    def insert(self, way: int) -> None:
        """Record that *way* was (re)filled with a new line."""
        self.touch(way)

    def victim(self, valid: List[bool]) -> int:
        """Pick the way to evict; invalid ways are always preferred."""
        raise NotImplementedError

    def reset(self) -> None:
        """Forget all usage history."""

    # -- state-engine protocol (repro.sim.state) ------------------------
    def save_state(self) -> object:
        """Self-contained copy of the usage history (None = stateless)."""
        return None

    def restore_state(self, state: object) -> None:
        """Reinstall a history saved by :meth:`save_state`."""


class LruPolicy(ReplacementPolicy):
    """Least recently used."""

    def __init__(self, ways: int):
        super().__init__(ways)
        self._order: List[int] = list(range(ways))  # front = LRU

    def touch(self, way: int) -> None:
        self._order.remove(way)
        self._order.append(way)

    def victim(self, valid: List[bool]) -> int:
        for way in range(self.ways):
            if not valid[way]:
                return way
        return self._order[0]

    def reset(self) -> None:
        self._order = list(range(self.ways))

    def save_state(self) -> object:
        return list(self._order)

    def restore_state(self, state: object) -> None:
        self._order = list(state)


class FifoPolicy(ReplacementPolicy):
    """First in, first out (insertion order; hits do not refresh)."""

    def __init__(self, ways: int):
        super().__init__(ways)
        self._queue: List[int] = []

    def touch(self, way: int) -> None:
        pass  # hits do not change FIFO order

    def insert(self, way: int) -> None:
        if way in self._queue:
            self._queue.remove(way)
        self._queue.append(way)

    def victim(self, valid: List[bool]) -> int:
        for way in range(self.ways):
            if not valid[way]:
                return way
        return self._queue[0] if self._queue else 0

    def reset(self) -> None:
        self._queue = []

    def save_state(self) -> object:
        return list(self._queue)

    def restore_state(self, state: object) -> None:
        self._queue = list(state)


class RandomPolicy(ReplacementPolicy):
    """Uniformly random victim from a deterministic seeded stream."""

    def __init__(self, ways: int, seed: int = 0):
        super().__init__(ways)
        self.seed = seed
        self._rng = random.Random(seed)

    def victim(self, valid: List[bool]) -> int:
        for way in range(self.ways):
            if not valid[way]:
                return way
        return self._rng.randrange(self.ways)

    def reset(self) -> None:
        self._rng = random.Random(self.seed)

    def save_state(self) -> object:
        return self._rng.getstate()

    def restore_state(self, state: object) -> None:
        self._rng.setstate(state)


_POLICIES = {"LRU": LruPolicy, "FIFO": FifoPolicy, "Random": RandomPolicy}


def make_policy(name: str, ways: int, seed: int = 0) -> ReplacementPolicy:
    """Instantiate a policy by configuration name (case-insensitive)."""
    for key, cls in _POLICIES.items():
        if key.lower() == name.lower():
            if cls is RandomPolicy:
                return cls(ways, seed)
            return cls(ways)
    raise ConfigError(
        f"unknown replacement policy '{name}' (expected LRU, FIFO or Random)")
