"""L1 data cache model (timing + content tracking, Sec. II-C).

Configuration mirrors the Cache tab of the Architecture-settings window:
number of lines, line size, associativity, replacement policy (LRU / FIFO /
Random), store behaviour (write-back or write-through), line-replacement
delay and access delay.

The cache tracks tags, valid and dirty bits per line; the authoritative
*data* always lives in :class:`repro.memory.main_memory.MainMemory`, so the
cache contributes timing (and statistics) without risking incoherence.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ConfigError
from repro.memory.main_memory import MainMemory
from repro.memory.replacement import ReplacementPolicy, make_policy
from repro.memory.transaction import MemoryTransaction


@dataclass
class CacheConfig:
    """Cache tab of the architecture settings (Fig. 9)."""

    enabled: bool = True
    line_count: int = 16
    line_size: int = 16
    associativity: int = 2
    replacement_policy: str = "LRU"
    write_back: bool = True          # False = write-through
    access_delay: int = 1
    line_replacement_delay: int = 10
    random_seed: int = 42

    def validate(self) -> None:
        if self.line_count <= 0 or self.line_size <= 0 or self.associativity <= 0:
            raise ConfigError("cache line count, size and associativity must be positive")
        if self.line_size & (self.line_size - 1):
            raise ConfigError(f"cache line size must be a power of two, got {self.line_size}")
        if self.line_count % self.associativity:
            raise ConfigError(
                f"line count {self.line_count} not divisible by associativity "
                f"{self.associativity}")
        sets = self.line_count // self.associativity
        if sets & (sets - 1):
            raise ConfigError(f"number of cache sets must be a power of two, got {sets}")
        make_policy(self.replacement_policy, self.associativity)

    def to_json(self) -> dict:
        return {
            "enabled": self.enabled,
            "lineCount": self.line_count,
            "lineSize": self.line_size,
            "associativity": self.associativity,
            "replacementPolicy": self.replacement_policy,
            "storeBehavior": "write-back" if self.write_back else "write-through",
            "accessDelay": self.access_delay,
            "lineReplacementDelay": self.line_replacement_delay,
            "randomSeed": self.random_seed,
        }

    @staticmethod
    def from_json(data: dict) -> "CacheConfig":
        cfg = CacheConfig(
            enabled=bool(data.get("enabled", True)),
            line_count=int(data.get("lineCount", 16)),
            line_size=int(data.get("lineSize", 16)),
            associativity=int(data.get("associativity", 2)),
            replacement_policy=data.get("replacementPolicy", "LRU"),
            write_back=data.get("storeBehavior", "write-back") != "write-through",
            access_delay=int(data.get("accessDelay", 1)),
            line_replacement_delay=int(data.get("lineReplacementDelay", 10)),
            random_seed=int(data.get("randomSeed", 42)),
        )
        return cfg


@dataclass
class CacheStats:
    """Cache statistics block of the Runtime-statistics window (Fig. 10)."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    load_accesses: int = 0
    load_hits: int = 0
    store_accesses: int = 0
    store_hits: int = 0
    evictions: int = 0
    writebacks: int = 0
    bytes_written: int = 0   # bytes pushed toward main memory

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def to_json(self) -> dict:
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "hitRatio": self.hit_ratio,
            "missRatio": self.miss_ratio,
            "loadAccesses": self.load_accesses,
            "loadHits": self.load_hits,
            "storeAccesses": self.store_accesses,
            "storeHits": self.store_hits,
            "evictions": self.evictions,
            "writebacks": self.writebacks,
            "bytesWritten": self.bytes_written,
        }


class _Line:
    __slots__ = ("valid", "dirty", "tag")

    def __init__(self) -> None:
        self.valid = False
        self.dirty = False
        self.tag = -1


class Cache:
    """Set-associative cache (usable as L1 or, chained, as L2/L3).

    ``next_level`` is whatever backs this cache — the main memory or
    another :class:`Cache` — and must expose ``fill_cost`` and
    ``writeback_cost``.  Data always lives in main memory (timing-only
    caches keep the hierarchy trivially coherent); *memory* is retained
    for bounds checks and capacity clamping.
    """

    def __init__(self, config: CacheConfig, memory: MainMemory,
                 next_level=None):
        config.validate()
        self.config = config
        self.memory = memory
        self.next_level = next_level if next_level is not None else memory
        self.sets = config.line_count // config.associativity
        self.ways = config.associativity
        self._offset_bits = config.line_size.bit_length() - 1
        self._index_mask = self.sets - 1
        self._lines: List[List[_Line]] = [
            [_Line() for _ in range(self.ways)] for _ in range(self.sets)]
        self._policies: List[ReplacementPolicy] = [
            make_policy(config.replacement_policy, self.ways,
                        config.random_seed + i)
            for i in range(self.sets)]
        self.stats = CacheStats()
        #: dirty counter (see repro.sim.state): bumped whenever any line's
        #: valid/dirty/tag changes (the content of ``lines_snapshot``)
        self.version = 0

    # ------------------------------------------------------------------
    def _split(self, address: int) -> Tuple[int, int]:
        line_addr = address >> self._offset_bits
        return line_addr & self._index_mask, line_addr >> (self._index_mask.bit_length())

    def _lookup(self, set_index: int, tag: int) -> Optional[int]:
        for way, line in enumerate(self._lines[set_index]):
            if line.valid and line.tag == tag:
                return way
        return None

    # ------------------------------------------------------------------
    def access(self, address: int, size: int, is_store: bool, cycle: int,
               instruction_id: int = -1) -> Tuple[int, bool, List[MemoryTransaction]]:
        """Access [address, address+size); returns (delay, hit, transactions).

        An access touching several lines (unaligned / line-crossing) probes
        each; the reported delay is the sum of per-line costs and the access
        counts once (hit only if every line hits).
        """
        self.memory.check_range(address, size)
        cfg = self.config
        first_line = address >> self._offset_bits
        last_line = (address + size - 1) >> self._offset_bits
        delay = cfg.access_delay
        all_hit = True
        transactions: List[MemoryTransaction] = []
        index_bits = self._index_mask.bit_length()

        for line_addr in range(first_line, last_line + 1):
            set_index = line_addr & self._index_mask
            tag = line_addr >> index_bits
            way = self._lookup(set_index, tag)
            if way is not None:
                self._policies[set_index].touch(way)
                line = self._lines[set_index][way]
            else:
                all_hit = False
                delay += cfg.line_replacement_delay
                way = self._policies[set_index].victim(
                    [l.valid for l in self._lines[set_index]])
                line = self._lines[set_index][way]
                if line.valid and line.dirty:
                    # flush the dirty victim line toward the next level
                    self.stats.writebacks += 1
                    self.stats.bytes_written += cfg.line_size
                    victim_addr = ((line.tag << (self._index_mask.bit_length()))
                                   | set_index) << self._offset_bits
                    delay += self.next_level.writeback_cost(
                        min(victim_addr, self.memory.capacity - cfg.line_size),
                        cfg.line_size, cycle, instruction_id)
                if line.valid:
                    self.stats.evictions += 1
                line.valid = True
                line.dirty = False
                line.tag = tag
                self.version += 1
                self._policies[set_index].insert(way)
                # line fill from the next level (L2 or main memory)
                delay += self.next_level.fill_cost(
                    min(line_addr << self._offset_bits,
                        self.memory.capacity - cfg.line_size),
                    cfg.line_size, cycle, instruction_id)
            if is_store and cfg.write_back and not line.dirty:
                line.dirty = True
                self.version += 1

        if is_store and not cfg.write_back:
            # Bytes are counted once per *access*, not once per touched
            # line: a line-crossing store still pushes `size` bytes.
            self.stats.bytes_written += size
            delay += self.next_level.writeback_cost(
                min(address, self.memory.capacity - size), size, cycle,
                instruction_id)

        self.stats.accesses += 1
        if all_hit:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
        if is_store:
            self.stats.store_accesses += 1
            if all_hit:
                self.stats.store_hits += 1
        else:
            self.stats.load_accesses += 1
            if all_hit:
                self.stats.load_hits += 1
        return delay, all_hit, transactions

    # -- next-level interface (so caches chain: L1 -> L2 -> memory) --------
    def fill_cost(self, address: int, size: int, cycle: int,
                  instruction_id: int = -1) -> int:
        delay, _hit, _txs = self.access(address, size, False, cycle,
                                        instruction_id)
        return delay

    def writeback_cost(self, address: int, size: int, cycle: int,
                       instruction_id: int = -1) -> int:
        delay, _hit, _txs = self.access(address, size, True, cycle,
                                        instruction_id)
        return delay

    # ------------------------------------------------------------------
    def probe(self, address: int) -> bool:
        """Non-destructive hit test (used by the GUI cache view)."""
        line_addr = address >> self._offset_bits
        set_index = line_addr & self._index_mask
        tag = line_addr >> (self._index_mask.bit_length())
        return self._lookup(set_index, tag) is not None

    def flush(self, cycle: int = 0) -> int:
        """Write back all dirty lines; returns the number flushed."""
        flushed = 0
        for set_index, ways in enumerate(self._lines):
            for line in ways:
                if line.valid and line.dirty:
                    line.dirty = False
                    flushed += 1
                    self.stats.writebacks += 1
                    self.stats.bytes_written += self.config.line_size
        if flushed:
            self.version += 1
        return flushed

    def reset(self) -> None:
        for ways in self._lines:
            for line in ways:
                line.valid = False
                line.dirty = False
                line.tag = -1
        for policy in self._policies:
            policy.reset()
        self.stats = CacheStats()
        self.version += 1

    # -- state-engine protocol (repro.sim.state) --------------------------
    def save_state(self) -> dict:
        return {
            "lines": [(line.valid, line.dirty, line.tag)
                      for ways in self._lines for line in ways],
            "policies": [policy.save_state() for policy in self._policies],
            "stats": dataclasses.asdict(self.stats),
        }

    def restore_state(self, state: dict) -> None:
        flat = iter(state["lines"])
        for ways in self._lines:
            for line in ways:
                line.valid, line.dirty, line.tag = next(flat)
        for policy, saved in zip(self._policies, state["policies"]):
            policy.restore_state(saved)
        self.stats = CacheStats(**state["stats"])
        self.version += 1

    # ------------------------------------------------------------------
    def lines_snapshot(self) -> List[dict]:
        """Cache organization view for the main window (Fig. 12)."""
        out = []
        for set_index, ways in enumerate(self._lines):
            for way, line in enumerate(ways):
                entry = {
                    "set": set_index, "way": way, "valid": line.valid,
                    "dirty": line.dirty,
                }
                if line.valid:
                    entry["baseAddress"] = (
                        (line.tag << self._index_mask.bit_length() | set_index)
                        << self._offset_bits)
                out.append(entry)
        return out
