"""Memory subsystem: transactional main memory, L1 cache, data layout.

Sec. III-A: *"The simulator's memory is represented as a 1D byte array with
a predefined capacity.  Memory modules operate in a transactional mode.
Functional blocks that request data from memory generate an object
representing a transaction.  Upon registration, memory management populates
this object with information about the transaction's completion time."*
"""

from repro.memory.transaction import MemoryTransaction
from repro.memory.main_memory import MainMemory
from repro.memory.replacement import (
    ReplacementPolicy,
    LruPolicy,
    FifoPolicy,
    RandomPolicy,
    make_policy,
)
from repro.memory.cache import Cache, CacheConfig, CacheStats
from repro.memory.hierarchy import MemoryModel
from repro.memory.layout import MemoryLocation, export_csv, import_csv

__all__ = [
    "MemoryTransaction",
    "MainMemory",
    "ReplacementPolicy",
    "LruPolicy",
    "FifoPolicy",
    "RandomPolicy",
    "make_policy",
    "Cache",
    "CacheConfig",
    "CacheStats",
    "MemoryModel",
    "MemoryLocation",
    "export_csv",
    "import_csv",
]
