"""Main memory: a flat 1-D byte array with transactional timing.

Data access is always performed against this array (the cache models timing
only, never holds a divergent copy), which keeps the simulation trivially
coherent and deterministic — a prerequisite for the paper's backward
simulation scheme.
"""

from __future__ import annotations

import struct
from typing import Union

from repro.errors import MemoryAccessError
from repro.isa.bits import sign_extend
from repro.memory.transaction import MemoryTransaction

Number = Union[int, float]


#: checkpoint page granularity (bytes, power of two): small enough that a
#: store-heavy loop touches few pages, large enough that the per-page
#: bookkeeping stays negligible (64 KiB -> 64 pages)
PAGE_SIZE = 1024
_PAGE_SHIFT = PAGE_SIZE.bit_length() - 1


class MainMemory:
    """Byte-addressable memory with configurable load/store latencies.

    Checkpoints are **page-compressed**: every write dirties its page's
    version counter, and :meth:`save_state` freezes only pages written
    since the last freeze, sharing every clean page's immutable blob with
    earlier checkpoints.  A checkpoint therefore copies O(pages touched)
    instead of the full image, which is what lets the checkpoint ring
    (``repro.sim.state.CheckpointRing``) keep dozens of 64 KiB machines
    around for O(K) time travel.
    """

    def __init__(self, capacity: int = 64 * 1024,
                 load_latency: int = 1, store_latency: int = 1):
        if capacity <= 0:
            raise ValueError("memory capacity must be positive")
        self.capacity = capacity
        self.load_latency = max(0, int(load_latency))
        self.store_latency = max(0, int(store_latency))
        self.data = bytearray(capacity)
        #: total completed transactions (for the statistics page)
        self.load_count = 0
        self.store_count = 0
        self.bytes_read = 0
        self.bytes_written = 0
        #: dirty counter (see repro.sim.state): bumped on every data write
        self.version = 0
        #: per-page dirty counters + frozen (version, blob) cache backing
        #: O(pages-touched) checkpoints
        self._page_count = (capacity + PAGE_SIZE - 1) >> _PAGE_SHIFT
        self._page_versions = [0] * self._page_count
        self._page_blobs: list = [None] * self._page_count
        #: optional listener fired by :meth:`set_image` (not persisted
        #: state — the trace tier drops compiled superblocks on it)
        self.on_set_image = None

    # -- page-level dirty tracking ---------------------------------------
    def _dirty_range(self, address: int, size: int) -> None:
        versions = self._page_versions
        for page in range(address >> _PAGE_SHIFT,
                          ((address + size - 1) >> _PAGE_SHIFT) + 1):
            versions[page] += 1

    def _dirty_all(self) -> None:
        versions = self._page_versions
        for page in range(self._page_count):
            versions[page] += 1

    # -- bounds ---------------------------------------------------------
    def check_range(self, address: int, size: int) -> None:
        """Raise :class:`MemoryAccessError` for an unauthorized access."""
        if address < 0 or address + size > self.capacity:
            raise MemoryAccessError(
                f"access to unauthorized address {address:#x} "
                f"(size {size}, capacity {self.capacity:#x})")

    # -- raw data access (architectural state) ---------------------------
    def read_bytes(self, address: int, size: int) -> bytes:
        self.check_range(address, size)
        return bytes(self.data[address:address + size])

    def write_bytes(self, address: int, payload: bytes) -> None:
        self.check_range(address, len(payload))
        self.data[address:address + len(payload)] = payload
        self.version += 1
        if payload:
            self._dirty_range(address, len(payload))

    def read_int(self, address: int, size: int, signed: bool = True) -> int:
        raw = self.read_bytes(address, size)
        value = int.from_bytes(raw, "little")
        return sign_extend(value, 8 * size) if signed else value

    def write_int(self, address: int, value: int, size: int) -> None:
        self.write_bytes(address,
                         (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little"))

    def read_float(self, address: int) -> float:
        return struct.unpack("<f", self.read_bytes(address, 4))[0]

    def write_float(self, address: int, value: float) -> None:
        self.write_bytes(address, struct.pack("<f", value))

    def read_double(self, address: int) -> float:
        return struct.unpack("<d", self.read_bytes(address, 8))[0]

    def write_double(self, address: int, value: float) -> None:
        self.write_bytes(address, struct.pack("<d", value))

    # -- transactional timing interface ----------------------------------
    def register(self, tx: MemoryTransaction, cycle: int) -> MemoryTransaction:
        """Register *tx* at *cycle*; stamps its completion time and performs
        the data movement immediately (timing and data are decoupled)."""
        self.check_range(tx.address, tx.size)
        tx.issued_cycle = cycle
        if tx.is_store:
            tx.finished_cycle = cycle + self.store_latency
            if tx.data:
                self.write_bytes(tx.address, tx.data)
            self.store_count += 1
            self.bytes_written += tx.size
        else:
            tx.finished_cycle = cycle + self.load_latency
            tx.data = self.read_bytes(tx.address, tx.size)
            self.load_count += 1
            self.bytes_read += tx.size
        return tx

    # -- next-level interface (used by caches to charge miss traffic) ------
    def fill_cost(self, address: int, size: int, cycle: int,
                  instruction_id: int = -1) -> int:
        """Cost of fetching *size* bytes (a cache line fill)."""
        tx = MemoryTransaction(address=address, size=size, is_store=False,
                               instruction_id=instruction_id)
        self.register(tx, cycle)
        return self.load_latency

    def writeback_cost(self, address: int, size: int, cycle: int,
                       instruction_id: int = -1) -> int:
        """Cost of writing *size* bytes back (eviction / write-through)."""
        tx = MemoryTransaction(address=address, size=size, is_store=True,
                               is_line_flush=True,
                               instruction_id=instruction_id)
        self.register(tx, cycle)
        return self.store_latency

    # -- lifecycle --------------------------------------------------------
    def load_image(self, image: bytes, base: int = 0) -> None:
        """Install an initial memory image (program data segment)."""
        self.write_bytes(base, bytes(image))

    def set_image(self, image: bytearray) -> None:
        """Adopt *image* as the whole memory content (simulation init).

        Replaces the backing array wholesale, so every page is dirtied and
        every frozen checkpoint blob is dropped."""
        if len(image) != self.capacity:
            raise ValueError(f"image size {len(image)} != capacity "
                             f"{self.capacity}")
        self.data = image if isinstance(image, bytearray) \
            else bytearray(image)
        self.version += 1
        self._dirty_all()
        self._page_blobs = [None] * self._page_count
        if self.on_set_image is not None:
            self.on_set_image()

    def reset(self) -> None:
        self.data = bytearray(self.capacity)
        self.load_count = self.store_count = 0
        self.bytes_read = self.bytes_written = 0
        self.version += 1
        self._dirty_all()
        self._page_blobs = [None] * self._page_count

    # -- state-engine protocol (repro.sim.state) --------------------------
    def save_state(self) -> dict:
        """Checkpoint the memory in O(pages touched since the last save).

        Clean pages reuse the immutable blob frozen by an earlier save
        (shared by reference across checkpoints); only pages whose dirty
        counter moved are copied out of the live array."""
        data = self.data
        blobs = self._page_blobs
        versions = self._page_versions
        pages = []
        for page in range(self._page_count):
            cached = blobs[page]
            version = versions[page]
            if cached is None or cached[0] != version:
                start = page << _PAGE_SHIFT
                cached = (version,
                          bytes(data[start:min(start + PAGE_SIZE,
                                               self.capacity)]))
                blobs[page] = cached
            pages.append(cached[1])
        return {
            "pages": tuple(pages),
            "counters": (self.load_count, self.store_count,
                         self.bytes_read, self.bytes_written),
        }

    def restore_state(self, state: dict) -> None:
        if "pages" in state:
            data = self.data
            blobs = self._page_blobs
            versions = self._page_versions
            for page, blob in enumerate(state["pages"]):
                cached = blobs[page]
                if cached is not None and cached[1] is blob \
                        and cached[0] == versions[page]:
                    # the live page is bit-identical to the checkpoint's
                    # blob (common during replay): skip the copy and keep
                    # the frozen blob valid for future saves
                    continue
                start = page << _PAGE_SHIFT
                data[start:start + len(blob)] = blob
                versions[page] += 1
                blobs[page] = (versions[page], blob)
        else:  # pre-paging snapshot shape (external callers)
            self.data[:] = state["data"]
            self._dirty_all()
            self._page_blobs = [None] * self._page_count
        (self.load_count, self.store_count,
         self.bytes_read, self.bytes_written) = state["counters"]
        self.version += 1

    def dump(self, start: int = 0, length: int = 256, width: int = 16) -> str:
        """Hex dump used by the memory pop-up window (Fig. 2)."""
        end = min(self.capacity, start + length)
        lines = []
        for base in range(start, end, width):
            chunk = self.data[base:min(base + width, end)]
            hexpart = " ".join(f"{b:02x}" for b in chunk)
            text = "".join(chr(b) if 32 <= b < 127 else "." for b in chunk)
            lines.append(f"{base:#08x}  {hexpart:<{width * 3}} {text}")
        return "\n".join(lines)

    def stats(self) -> dict:
        return {
            "loads": self.load_count,
            "stores": self.store_count,
            "bytesRead": self.bytes_read,
            "bytesWritten": self.bytes_written,
        }
