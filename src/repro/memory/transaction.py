"""Memory transactions.

Every memory request is represented by a :class:`MemoryTransaction` object;
the memory system stamps it with its completion time on registration.
Transactions "enable easy configuration of memory access times, support
cache line flushing, and include metadata useful for interactive simulation"
(Sec. III-A).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

_ids = itertools.count(1)


@dataclass
class MemoryTransaction:
    """One load or store request travelling through the memory hierarchy."""

    address: int
    size: int
    is_store: bool
    #: payload for stores / filled result for loads (little-endian bytes)
    data: bytes = b""
    #: cycle the transaction was registered
    issued_cycle: int = -1
    #: cycle the data is available / the store is durable
    finished_cycle: int = -1
    #: whether the access hit in the L1 cache (None = cache disabled)
    cache_hit: Optional[bool] = None
    #: True when this transaction flushes (writes back) a dirty cache line
    is_line_flush: bool = False
    #: owning dynamic instruction id (interactive-simulation metadata)
    instruction_id: int = -1
    transaction_id: int = field(default_factory=lambda: next(_ids))

    @property
    def latency(self) -> int:
        """Cycles between registration and completion."""
        if self.issued_cycle < 0 or self.finished_cycle < 0:
            return -1
        return self.finished_cycle - self.issued_cycle

    def is_finished(self, cycle: int) -> bool:
        return self.finished_cycle >= 0 and cycle >= self.finished_cycle

    def to_json(self) -> dict:
        return {
            "id": self.transaction_id,
            "address": self.address,
            "size": self.size,
            "isStore": self.is_store,
            "issuedCycle": self.issued_cycle,
            "finishedCycle": self.finished_cycle,
            "cacheHit": self.cache_hit,
            "isLineFlush": self.is_line_flush,
            "instructionId": self.instruction_id,
        }
