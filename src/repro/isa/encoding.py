"""RV32IMF binary instruction encoding and decoding.

The simulator executes from parsed instruction objects (Sec. III-B), but
real machine words are needed for the memory editor's binary code dumps and
for the disassembler view.  This module converts between
:class:`repro.asm.program.ParsedInstruction` operand dictionaries and
32-bit RISC-V machine words, both directions, for the complete RV32IMF set.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.isa.bits import sign_extend

OPC_LOAD = 0x03
OPC_LOAD_FP = 0x07
OPC_MISC_MEM = 0x0F
OPC_OP_IMM = 0x13
OPC_AUIPC = 0x17
OPC_STORE = 0x23
OPC_STORE_FP = 0x27
OPC_OP = 0x33
OPC_LUI = 0x37
OPC_MADD = 0x43
OPC_MSUB = 0x47
OPC_NMSUB = 0x4B
OPC_NMADD = 0x4F
OPC_OP_FP = 0x53
OPC_BRANCH = 0x63
OPC_JALR = 0x67
OPC_JAL = 0x6F
OPC_SYSTEM = 0x73


class EncodingError(ReproError):
    """Instruction cannot be encoded / word cannot be decoded."""


# mnemonic -> (funct3, funct7) for OP (R-type) instructions
_R_TYPE: Dict[str, Tuple[int, int]] = {
    "add": (0b000, 0b0000000), "sub": (0b000, 0b0100000),
    "sll": (0b001, 0b0000000), "slt": (0b010, 0b0000000),
    "sltu": (0b011, 0b0000000), "xor": (0b100, 0b0000000),
    "srl": (0b101, 0b0000000), "sra": (0b101, 0b0100000),
    "or": (0b110, 0b0000000), "and": (0b111, 0b0000000),
    "mul": (0b000, 0b0000001), "mulh": (0b001, 0b0000001),
    "mulhsu": (0b010, 0b0000001), "mulhu": (0b011, 0b0000001),
    "div": (0b100, 0b0000001), "divu": (0b101, 0b0000001),
    "rem": (0b110, 0b0000001), "remu": (0b111, 0b0000001),
}

_I_TYPE: Dict[str, int] = {
    "addi": 0b000, "slti": 0b010, "sltiu": 0b011, "xori": 0b100,
    "ori": 0b110, "andi": 0b111,
}
_SHIFT_IMM: Dict[str, Tuple[int, int]] = {
    "slli": (0b001, 0b0000000), "srli": (0b101, 0b0000000),
    "srai": (0b101, 0b0100000),
}
_LOADS: Dict[str, int] = {"lb": 0b000, "lh": 0b001, "lw": 0b010,
                          "lbu": 0b100, "lhu": 0b101}
_STORES: Dict[str, int] = {"sb": 0b000, "sh": 0b001, "sw": 0b010}
_BRANCHES: Dict[str, int] = {"beq": 0b000, "bne": 0b001, "blt": 0b100,
                             "bge": 0b101, "bltu": 0b110, "bgeu": 0b111}

#: OP-FP instructions: mnemonic -> (funct7, rm-or-None, rs2-or-None)
_FP_OPS: Dict[str, Tuple[int, Optional[int], Optional[int]]] = {
    "fadd.s": (0b0000000, None, None),
    "fsub.s": (0b0000100, None, None),
    "fmul.s": (0b0001000, None, None),
    "fdiv.s": (0b0001100, None, None),
    "fsqrt.s": (0b0101100, None, 0),
    "fsgnj.s": (0b0010000, 0b000, None),
    "fsgnjn.s": (0b0010000, 0b001, None),
    "fsgnjx.s": (0b0010000, 0b010, None),
    "fmin.s": (0b0010100, 0b000, None),
    "fmax.s": (0b0010100, 0b001, None),
    "fcvt.w.s": (0b1100000, None, 0),
    "fcvt.wu.s": (0b1100000, None, 1),
    "fmv.x.w": (0b1110000, 0b000, 0),
    "feq.s": (0b1010000, 0b010, None),
    "flt.s": (0b1010000, 0b001, None),
    "fle.s": (0b1010000, 0b000, None),
    "fclass.s": (0b1110000, 0b001, 0),
    "fcvt.s.w": (0b1101000, None, 0),
    "fcvt.s.wu": (0b1101000, None, 1),
    "fmv.w.x": (0b1111000, 0b000, 0),
}
_FMA: Dict[str, int] = {"fmadd.s": OPC_MADD, "fmsub.s": OPC_MSUB,
                        "fnmsub.s": OPC_NMSUB, "fnmadd.s": OPC_NMADD}

_DYNAMIC_RM = 0b111  # dynamic rounding mode


def _reg_num(name: str) -> int:
    return int(name[1:])


def _check_range(value: int, bits: int, name: str, mnemonic: str) -> None:
    low, high = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if not low <= value <= high:
        raise EncodingError(
            f"{mnemonic}: immediate {value} out of {bits}-bit range")


def _i_format(opcode: int, rd: int, funct3: int, rs1: int, imm: int) -> int:
    return ((imm & 0xFFF) << 20) | (rs1 << 15) | (funct3 << 12) \
        | (rd << 7) | opcode


def _r_format(opcode: int, rd: int, funct3: int, rs1: int, rs2: int,
              funct7: int) -> int:
    return (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) \
        | (rd << 7) | opcode


def _s_format(opcode: int, funct3: int, rs1: int, rs2: int, imm: int) -> int:
    return (((imm >> 5) & 0x7F) << 25) | (rs2 << 20) | (rs1 << 15) \
        | (funct3 << 12) | ((imm & 0x1F) << 7) | opcode


def _b_format(funct3: int, rs1: int, rs2: int, imm: int) -> int:
    return (((imm >> 12) & 1) << 31) | (((imm >> 5) & 0x3F) << 25) \
        | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) \
        | (((imm >> 1) & 0xF) << 8) | (((imm >> 11) & 1) << 7) | OPC_BRANCH


def _u_format(opcode: int, rd: int, imm20: int) -> int:
    return ((imm20 & 0xFFFFF) << 12) | (rd << 7) | opcode


def _j_format(rd: int, imm: int) -> int:
    return (((imm >> 20) & 1) << 31) | (((imm >> 1) & 0x3FF) << 21) \
        | (((imm >> 11) & 1) << 20) | (((imm >> 12) & 0xFF) << 12) \
        | (rd << 7) | OPC_JAL


def encode(mnemonic: str, operands: Dict[str, object]) -> int:
    """Encode one instruction into a 32-bit machine word.

    *operands* uses the assembler's canonical form: register operands as
    ``x5`` / ``f3`` strings, immediates as ints (branch offsets already
    PC-relative).
    """
    ops = operands

    def rd() -> int:
        return _reg_num(str(ops["rd"]))

    def rs1() -> int:
        return _reg_num(str(ops["rs1"]))

    def rs2() -> int:
        return _reg_num(str(ops["rs2"]))

    def imm() -> int:
        return int(ops["imm"])

    if mnemonic in _R_TYPE:
        funct3, funct7 = _R_TYPE[mnemonic]
        return _r_format(OPC_OP, rd(), funct3, rs1(), rs2(), funct7)
    if mnemonic in _I_TYPE:
        _check_range(imm(), 12, "imm", mnemonic)
        return _i_format(OPC_OP_IMM, rd(), _I_TYPE[mnemonic], rs1(), imm())
    if mnemonic in _SHIFT_IMM:
        funct3, funct7 = _SHIFT_IMM[mnemonic]
        if not 0 <= imm() <= 31:
            raise EncodingError(f"{mnemonic}: shift amount out of range")
        return _r_format(OPC_OP_IMM, rd(), funct3, rs1(), imm(), funct7)
    if mnemonic in _LOADS:
        _check_range(imm(), 12, "imm", mnemonic)
        return _i_format(OPC_LOAD, rd(), _LOADS[mnemonic], rs1(), imm())
    if mnemonic == "flw":
        _check_range(imm(), 12, "imm", mnemonic)
        return _i_format(OPC_LOAD_FP, rd(), 0b010, rs1(), imm())
    if mnemonic in _STORES:
        _check_range(imm(), 12, "imm", mnemonic)
        return _s_format(OPC_STORE, _STORES[mnemonic], rs1(), rs2(), imm())
    if mnemonic == "fsw":
        _check_range(imm(), 12, "imm", mnemonic)
        return _s_format(OPC_STORE_FP, 0b010, rs1(), rs2(), imm())
    if mnemonic in _BRANCHES:
        _check_range(imm(), 13, "imm", mnemonic)
        return _b_format(_BRANCHES[mnemonic], rs1(), rs2(), imm())
    if mnemonic == "lui":
        return _u_format(OPC_LUI, rd(), imm())
    if mnemonic == "auipc":
        return _u_format(OPC_AUIPC, rd(), imm())
    if mnemonic == "jal":
        _check_range(imm(), 21, "imm", mnemonic)
        return _j_format(rd(), imm())
    if mnemonic == "jalr":
        _check_range(imm(), 12, "imm", mnemonic)
        return _i_format(OPC_JALR, rd(), 0b000, rs1(), imm())
    if mnemonic == "fence":
        return _i_format(OPC_MISC_MEM, 0, 0, 0, 0x0FF)
    if mnemonic == "ecall":
        return _i_format(OPC_SYSTEM, 0, 0, 0, 0)
    if mnemonic == "ebreak":
        return _i_format(OPC_SYSTEM, 0, 0, 0, 1)
    if mnemonic in _FP_OPS:
        funct7, rm, fixed_rs2 = _FP_OPS[mnemonic]
        rm_field = _DYNAMIC_RM if rm is None else rm
        rs2_field = _reg_num(str(ops["rs2"])) if fixed_rs2 is None \
            else fixed_rs2
        return _r_format(OPC_OP_FP, rd(), rm_field, rs1(), rs2_field, funct7)
    if mnemonic in _FMA:
        rs3 = _reg_num(str(ops["rs3"]))
        return (rs3 << 27) | (0b00 << 25) | (rs2() << 20) | (rs1() << 15) \
            | (_DYNAMIC_RM << 12) | (rd() << 7) | _FMA[mnemonic]
    raise EncodingError(f"cannot encode '{mnemonic}'")


# ---------------------------------------------------------------------------
# decoding
# ---------------------------------------------------------------------------
def _x(n: int) -> str:
    return f"x{n}"


def _f(n: int) -> str:
    return f"f{n}"


def decode(word: int) -> Tuple[str, Dict[str, object]]:
    """Decode a 32-bit machine word back into (mnemonic, operands)."""
    word &= 0xFFFFFFFF
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = (word >> 25) & 0x7F
    imm_i = sign_extend(word >> 20, 12)
    imm_s = sign_extend(((word >> 25) << 5) | ((word >> 7) & 0x1F), 12)
    imm_b = sign_extend(
        (((word >> 31) & 1) << 12) | (((word >> 7) & 1) << 11)
        | (((word >> 25) & 0x3F) << 5) | (((word >> 8) & 0xF) << 1), 13)
    imm_u = (word >> 12) & 0xFFFFF
    imm_j = sign_extend(
        (((word >> 31) & 1) << 20) | (((word >> 12) & 0xFF) << 12)
        | (((word >> 20) & 1) << 11) | (((word >> 21) & 0x3FF) << 1), 21)

    if opcode == OPC_OP:
        for name, (f3, f7) in _R_TYPE.items():
            if f3 == funct3 and f7 == funct7:
                return name, {"rd": _x(rd), "rs1": _x(rs1), "rs2": _x(rs2)}
    if opcode == OPC_OP_IMM:
        for name, f3 in _I_TYPE.items():
            if f3 == funct3:
                return name, {"rd": _x(rd), "rs1": _x(rs1), "imm": imm_i}
        for name, (f3, f7) in _SHIFT_IMM.items():
            if f3 == funct3 and f7 == funct7:
                return name, {"rd": _x(rd), "rs1": _x(rs1), "imm": rs2}
    if opcode == OPC_LOAD:
        for name, f3 in _LOADS.items():
            if f3 == funct3:
                return name, {"rd": _x(rd), "imm": imm_i, "rs1": _x(rs1)}
    if opcode == OPC_LOAD_FP and funct3 == 0b010:
        return "flw", {"rd": _f(rd), "imm": imm_i, "rs1": _x(rs1)}
    if opcode == OPC_STORE:
        for name, f3 in _STORES.items():
            if f3 == funct3:
                return name, {"rs2": _x(rs2), "imm": imm_s, "rs1": _x(rs1)}
    if opcode == OPC_STORE_FP and funct3 == 0b010:
        return "fsw", {"rs2": _f(rs2), "imm": imm_s, "rs1": _x(rs1)}
    if opcode == OPC_BRANCH:
        for name, f3 in _BRANCHES.items():
            if f3 == funct3:
                return name, {"rs1": _x(rs1), "rs2": _x(rs2), "imm": imm_b}
    if opcode == OPC_LUI:
        return "lui", {"rd": _x(rd), "imm": imm_u}
    if opcode == OPC_AUIPC:
        return "auipc", {"rd": _x(rd), "imm": imm_u}
    if opcode == OPC_JAL:
        return "jal", {"rd": _x(rd), "imm": imm_j}
    if opcode == OPC_JALR and funct3 == 0:
        return "jalr", {"rd": _x(rd), "rs1": _x(rs1), "imm": imm_i}
    if opcode == OPC_MISC_MEM:
        return "fence", {}
    if opcode == OPC_SYSTEM and funct3 == 0:
        return ("ebreak" if (word >> 20) & 0xFFF == 1 else "ecall"), {}
    if opcode == OPC_OP_FP:
        for name, (f7, rm, fixed_rs2) in _FP_OPS.items():
            if f7 != funct7:
                continue
            if rm is not None and rm != funct3:
                continue
            if fixed_rs2 is not None and fixed_rs2 != rs2:
                continue
            ops: Dict[str, object] = {}
            int_dest = name in ("fcvt.w.s", "fcvt.wu.s", "fmv.x.w",
                                "feq.s", "flt.s", "fle.s", "fclass.s")
            int_src = name in ("fcvt.s.w", "fcvt.s.wu", "fmv.w.x")
            ops["rd"] = _x(rd) if int_dest else _f(rd)
            ops["rs1"] = _x(rs1) if int_src else _f(rs1)
            if fixed_rs2 is None:
                ops["rs2"] = _f(rs2)
            return name, ops
    for name, opc in _FMA.items():
        if opcode == opc:
            return name, {"rd": _f(rd), "rs1": _f(rs1), "rs2": _f(rs2),
                          "rs3": _f((word >> 27) & 0x1F)}
    raise EncodingError(f"cannot decode word {word:#010x}")


def encode_program(program) -> bytes:
    """Machine code image of an assembled :class:`Program` (little-endian)."""
    out = bytearray()
    for instr in program.instructions:
        out.extend(encode(instr.mnemonic, instr.operands)
                   .to_bytes(4, "little"))
    return bytes(out)


def disassemble(words: bytes, base_pc: int = 0) -> List[str]:
    """Disassemble little-endian machine code into assembly lines."""
    lines = []
    for offset in range(0, len(words) - 3, 4):
        word = int.from_bytes(words[offset:offset + 4], "little")
        pc = base_pc + offset
        try:
            mnemonic, ops = decode(word)
        except EncodingError:
            lines.append(f"{pc:#06x}: .word {word:#010x}")
            continue
        if "imm" in ops and "rs1" in ops and mnemonic in (
                list(_LOADS) + ["flw"] + list(_STORES) + ["fsw"]):
            reg = ops.get("rd", ops.get("rs2"))
            text = f"{mnemonic} {reg}, {ops['imm']}({ops['rs1']})"
        elif mnemonic in _BRANCHES or mnemonic == "jal":
            # print the absolute target: the assembler reads branch operands
            # as label values and converts back to PC-relative offsets
            target = pc + int(ops["imm"])
            parts = [str(ops[k]) for k in ("rd", "rs1", "rs2") if k in ops]
            parts.append(str(target))
            text = mnemonic + " " + ", ".join(parts)
        else:
            parts = [str(ops[k]) for k in ("rd", "rs1", "rs2", "rs3", "imm")
                     if k in ops]
            text = mnemonic + (" " + ", ".join(parts) if parts else "")
        lines.append(f"{pc:#06x}: {text}")
    return lines
