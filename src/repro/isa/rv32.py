"""RV32I + M + F instruction definitions.

Every instruction the simulator supports is defined here in the declarative
style of the paper's JSON instruction file (Listing 1).  Privileged and
context-switching instructions are deliberately absent — the simulator does
not run an operating system (Sec. III-B).  ``ecall``/``ebreak`` are accepted
and act as a program halt request when committed.

Argument tuples are in *assembly source order*.  Loads and stores use the
``rd, imm(rs1)`` / ``rs2, imm(rs1)`` syntax, signalled by ``mem_operand``.
"""

from __future__ import annotations

from typing import List

from repro.isa.instruction import (
    ArgType,
    Argument,
    FuClass,
    InstructionDef,
    InstructionType,
    fp_reg,
    imm,
    int_reg,
    label,
)

_I = InstructionType.INT_ARITHMETIC
_F = InstructionType.FLOAT_ARITHMETIC
_LS = InstructionType.LOADSTORE
_JB = InstructionType.JUMPBRANCH


def _r_type(name: str, expr: str, op_class: str) -> InstructionDef:
    """Integer register-register instruction ``name rd, rs1, rs2``."""
    return InstructionDef(
        name=name, instruction_type=_I,
        arguments=(int_reg("rd", True), int_reg("rs1"), int_reg("rs2")),
        interpretable_as=expr, fu_class=FuClass.FX, op_class=op_class,
    )


def _i_type(name: str, expr: str, op_class: str) -> InstructionDef:
    """Integer register-immediate instruction ``name rd, rs1, imm``."""
    return InstructionDef(
        name=name, instruction_type=_I,
        arguments=(int_reg("rd", True), int_reg("rs1"), imm()),
        interpretable_as=expr, fu_class=FuClass.FX, op_class=op_class,
    )


def _load(name: str, size: int, signed: bool, fp: bool = False) -> InstructionDef:
    dest = fp_reg("rd", True) if fp else int_reg("rd", True)
    return InstructionDef(
        name=name, instruction_type=_LS,
        arguments=(dest, imm(), int_reg("rs1")),
        interpretable_as="\\rs1 \\imm +",
        fu_class=FuClass.LS, op_class="load",
        memory_size=size, memory_signed=signed, mem_operand=True,
    )


def _store(name: str, size: int, fp: bool = False) -> InstructionDef:
    src = fp_reg("rs2") if fp else int_reg("rs2")
    return InstructionDef(
        name=name, instruction_type=_LS,
        arguments=(src, imm(), int_reg("rs1")),
        interpretable_as="\\rs1 \\imm +",
        fu_class=FuClass.LS, op_class="store",
        memory_size=size, is_store=True, mem_operand=True,
    )


def _branch(name: str, cond: str) -> InstructionDef:
    """Conditional branch ``name rs1, rs2, label`` (PC-relative)."""
    return InstructionDef(
        name=name, instruction_type=_JB,
        arguments=(int_reg("rs1"), int_reg("rs2"), label()),
        interpretable_as=cond, fu_class=FuClass.BRANCH, op_class="branch",
        is_branch=True, target="\\pc \\imm +",
    )


def _fp_rr(name: str, expr: str, op_class: str, flops: int = 1,
           int_dest: bool = False) -> InstructionDef:
    """FP instruction ``name rd, rs1, rs2`` (rd may be an integer register)."""
    dest = int_reg("rd", True) if int_dest else fp_reg("rd", True)
    return InstructionDef(
        name=name, instruction_type=_F,
        arguments=(dest, fp_reg("rs1"), fp_reg("rs2")),
        interpretable_as=expr, fu_class=FuClass.FP, op_class=op_class,
        flops=flops,
    )


def rv32i() -> List[InstructionDef]:
    """The base integer instruction set."""
    defs = [
        # -- upper immediates -------------------------------------------
        InstructionDef(
            name="lui", instruction_type=_I,
            arguments=(int_reg("rd", True), imm()),
            interpretable_as="\\imm 12 << \\rd =",
            fu_class=FuClass.FX, op_class="addition",
        ),
        InstructionDef(
            name="auipc", instruction_type=_I,
            arguments=(int_reg("rd", True), imm()),
            interpretable_as="\\pc \\imm 12 << + \\rd =",
            fu_class=FuClass.FX, op_class="addition",
        ),
        # -- jumps ------------------------------------------------------
        InstructionDef(
            name="jal", instruction_type=_JB,
            arguments=(int_reg("rd", True), label()),
            interpretable_as="\\pc 4 + \\rd =",
            fu_class=FuClass.BRANCH, op_class="branch",
            is_branch=True, is_unconditional=True, target="\\pc \\imm +",
        ),
        InstructionDef(
            name="jalr", instruction_type=_JB,
            arguments=(int_reg("rd", True), int_reg("rs1"), imm()),
            interpretable_as="\\pc 4 + \\rd =",
            fu_class=FuClass.BRANCH, op_class="branch",
            is_branch=True, is_unconditional=True, target="\\rs1 \\imm + -2 &",
        ),
        # -- conditional branches ---------------------------------------
        _branch("beq", "\\rs1 \\rs2 =="),
        _branch("bne", "\\rs1 \\rs2 !="),
        _branch("blt", "\\rs1 \\rs2 <"),
        _branch("bge", "\\rs1 \\rs2 >="),
        _branch("bltu", "\\rs1 \\rs2 u<"),
        _branch("bgeu", "\\rs1 \\rs2 u>="),
        # -- loads / stores ---------------------------------------------
        _load("lb", 1, True),
        _load("lh", 2, True),
        _load("lw", 4, True),
        _load("lbu", 1, False),
        _load("lhu", 2, False),
        _store("sb", 1),
        _store("sh", 2),
        _store("sw", 4),
        # -- register-immediate -----------------------------------------
        _i_type("addi", "\\rs1 \\imm + \\rd =", "addition"),
        _i_type("slti", "\\rs1 \\imm < \\rd =", "comparison"),
        _i_type("sltiu", "\\rs1 \\imm u< \\rd =", "comparison"),
        _i_type("xori", "\\rs1 \\imm ^ \\rd =", "bitwise"),
        _i_type("ori", "\\rs1 \\imm | \\rd =", "bitwise"),
        _i_type("andi", "\\rs1 \\imm & \\rd =", "bitwise"),
        _i_type("slli", "\\rs1 \\imm << \\rd =", "shift"),
        _i_type("srli", "\\rs1 \\imm >>u \\rd =", "shift"),
        _i_type("srai", "\\rs1 \\imm >> \\rd =", "shift"),
        # -- register-register ------------------------------------------
        _r_type("add", "\\rs1 \\rs2 + \\rd =", "addition"),
        _r_type("sub", "\\rs1 \\rs2 - \\rd =", "addition"),
        _r_type("sll", "\\rs1 \\rs2 << \\rd =", "shift"),
        _r_type("slt", "\\rs1 \\rs2 < \\rd =", "comparison"),
        _r_type("sltu", "\\rs1 \\rs2 u< \\rd =", "comparison"),
        _r_type("xor", "\\rs1 \\rs2 ^ \\rd =", "bitwise"),
        _r_type("srl", "\\rs1 \\rs2 >>u \\rd =", "shift"),
        _r_type("sra", "\\rs1 \\rs2 >> \\rd =", "shift"),
        _r_type("or", "\\rs1 \\rs2 | \\rd =", "bitwise"),
        _r_type("and", "\\rs1 \\rs2 & \\rd =", "bitwise"),
        # -- system ------------------------------------------------------
        InstructionDef(
            name="fence", instruction_type=_I, arguments=(),
            interpretable_as="", fu_class=FuClass.FX, op_class="special",
        ),
        InstructionDef(
            name="ecall", instruction_type=_I, arguments=(),
            interpretable_as="", fu_class=FuClass.FX, op_class="special",
        ),
        InstructionDef(
            name="ebreak", instruction_type=_I, arguments=(),
            interpretable_as="", fu_class=FuClass.FX, op_class="special",
        ),
    ]
    return defs


def rv32m() -> List[InstructionDef]:
    """The M (integer multiply/divide) extension."""
    return [
        _r_type("mul", "\\rs1 \\rs2 * \\rd =", "multiplication"),
        _r_type("mulh", "\\rs1 \\rs2 mulh \\rd =", "multiplication"),
        _r_type("mulhsu", "\\rs1 \\rs2 mulhsu \\rd =", "multiplication"),
        _r_type("mulhu", "\\rs1 \\rs2 mulhu \\rd =", "multiplication"),
        _r_type("div", "\\rs1 \\rs2 / \\rd =", "division"),
        _r_type("divu", "\\rs1 \\rs2 u/ \\rd =", "division"),
        _r_type("rem", "\\rs1 \\rs2 % \\rd =", "division"),
        _r_type("remu", "\\rs1 \\rs2 u% \\rd =", "division"),
    ]


def rv32f() -> List[InstructionDef]:
    """The F (single-precision floating point) extension."""
    defs = [
        _load("flw", 4, False, fp=True),
        _store("fsw", 4, fp=True),
        # fused multiply-add family: rd, rs1, rs2, rs3
        InstructionDef(
            name="fmadd.s", instruction_type=_F,
            arguments=(fp_reg("rd", True), fp_reg("rs1"), fp_reg("rs2"), fp_reg("rs3")),
            interpretable_as="\\rs1 \\rs2 f* \\rs3 f+ \\rd =",
            fu_class=FuClass.FP, op_class="fma", flops=2,
        ),
        InstructionDef(
            name="fmsub.s", instruction_type=_F,
            arguments=(fp_reg("rd", True), fp_reg("rs1"), fp_reg("rs2"), fp_reg("rs3")),
            interpretable_as="\\rs1 \\rs2 f* \\rs3 f- \\rd =",
            fu_class=FuClass.FP, op_class="fma", flops=2,
        ),
        InstructionDef(
            name="fnmsub.s", instruction_type=_F,
            arguments=(fp_reg("rd", True), fp_reg("rs1"), fp_reg("rs2"), fp_reg("rs3")),
            interpretable_as="\\rs1 \\rs2 f* fneg \\rs3 f+ \\rd =",
            fu_class=FuClass.FP, op_class="fma", flops=2,
        ),
        InstructionDef(
            name="fnmadd.s", instruction_type=_F,
            arguments=(fp_reg("rd", True), fp_reg("rs1"), fp_reg("rs2"), fp_reg("rs3")),
            interpretable_as="\\rs1 \\rs2 f* fneg \\rs3 f- \\rd =",
            fu_class=FuClass.FP, op_class="fma", flops=2,
        ),
        _fp_rr("fadd.s", "\\rs1 \\rs2 f+ \\rd =", "fadd"),
        _fp_rr("fsub.s", "\\rs1 \\rs2 f- \\rd =", "fadd"),
        _fp_rr("fmul.s", "\\rs1 \\rs2 f* \\rd =", "fmul"),
        _fp_rr("fdiv.s", "\\rs1 \\rs2 f/ \\rd =", "fdiv"),
        InstructionDef(
            name="fsqrt.s", instruction_type=_F,
            arguments=(fp_reg("rd", True), fp_reg("rs1")),
            interpretable_as="\\rs1 fsqrt \\rd =",
            fu_class=FuClass.FP, op_class="fsqrt", flops=1,
        ),
        _fp_rr("fsgnj.s", "\\rs1 \\rs2 fsgnj \\rd =", "fcmp", flops=0),
        _fp_rr("fsgnjn.s", "\\rs1 \\rs2 fsgnjn \\rd =", "fcmp", flops=0),
        _fp_rr("fsgnjx.s", "\\rs1 \\rs2 fsgnjx \\rd =", "fcmp", flops=0),
        _fp_rr("fmin.s", "\\rs1 \\rs2 fmin \\rd =", "fcmp"),
        _fp_rr("fmax.s", "\\rs1 \\rs2 fmax \\rd =", "fcmp"),
        # comparisons write an integer register
        _fp_rr("feq.s", "\\rs1 \\rs2 f== \\rd =", "fcmp", flops=0, int_dest=True),
        _fp_rr("flt.s", "\\rs1 \\rs2 f< \\rd =", "fcmp", flops=0, int_dest=True),
        _fp_rr("fle.s", "\\rs1 \\rs2 f<= \\rd =", "fcmp", flops=0, int_dest=True),
        # conversions and moves
        InstructionDef(
            name="fcvt.w.s", instruction_type=_F,
            arguments=(int_reg("rd", True), fp_reg("rs1")),
            interpretable_as="\\rs1 f2i \\rd =",
            fu_class=FuClass.FP, op_class="fcvt",
        ),
        InstructionDef(
            name="fcvt.wu.s", instruction_type=_F,
            arguments=(int_reg("rd", True), fp_reg("rs1")),
            interpretable_as="\\rs1 f2u \\rd =",
            fu_class=FuClass.FP, op_class="fcvt",
        ),
        InstructionDef(
            name="fcvt.s.w", instruction_type=_F,
            arguments=(fp_reg("rd", True), int_reg("rs1")),
            interpretable_as="\\rs1 i2f \\rd =",
            fu_class=FuClass.FP, op_class="fcvt",
        ),
        InstructionDef(
            name="fcvt.s.wu", instruction_type=_F,
            arguments=(fp_reg("rd", True), int_reg("rs1")),
            interpretable_as="\\rs1 u2f \\rd =",
            fu_class=FuClass.FP, op_class="fcvt",
        ),
        InstructionDef(
            name="fmv.x.w", instruction_type=_F,
            arguments=(int_reg("rd", True), fp_reg("rs1")),
            interpretable_as="\\rs1 fbits \\rd =",
            fu_class=FuClass.FP, op_class="fcvt",
        ),
        InstructionDef(
            name="fmv.w.x", instruction_type=_F,
            arguments=(fp_reg("rd", True), int_reg("rs1")),
            interpretable_as="\\rs1 bitsf \\rd =",
            fu_class=FuClass.FP, op_class="fcvt",
        ),
        InstructionDef(
            name="fclass.s", instruction_type=_F,
            arguments=(int_reg("rd", True), fp_reg("rs1")),
            interpretable_as="\\rs1 fclass \\rd =",
            fu_class=FuClass.FP, op_class="fcmp",
        ),
    ]
    return defs
