"""Fixed-width integer and IEEE-754 helpers.

The simulator stores register values as 64-bit raw patterns (Sec. III-B:
"Registers are represented as 64-bit arrays, even though the simulator
currently supports only 32-bit instructions") and interprets them according
to the executing instruction.  These helpers provide the wrap/extend/cast
primitives used throughout the expression interpreter, the assembler and the
memory system.
"""

from __future__ import annotations

import math
import struct

MASK32 = 0xFFFFFFFF
MASK64 = 0xFFFFFFFFFFFFFFFF
INT32_MIN = -(1 << 31)
INT32_MAX = (1 << 31) - 1


def to_uint32(value: int) -> int:
    """Wrap *value* into an unsigned 32-bit integer."""
    return value & MASK32


def to_int32(value: int) -> int:
    """Wrap *value* into a signed (two's complement) 32-bit integer."""
    value &= MASK32
    return value - (1 << 32) if value >= (1 << 31) else value


def to_uint64(value: int) -> int:
    """Wrap *value* into an unsigned 64-bit integer."""
    return value & MASK64


def to_int64(value: int) -> int:
    """Wrap *value* into a signed 64-bit integer."""
    value &= MASK64
    return value - (1 << 64) if value >= (1 << 63) else value


def sign_extend(value: int, bits: int) -> int:
    """Sign-extend the low *bits* of *value* to a Python int."""
    value &= (1 << bits) - 1
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value


def zero_extend(value: int, bits: int) -> int:
    """Zero-extend the low *bits* of *value*."""
    return value & ((1 << bits) - 1)


def float_to_bits(value: float) -> int:
    """Raw IEEE-754 binary32 pattern of *value* (rounded to single)."""
    return struct.unpack("<I", struct.pack("<f", value))[0]


def bits_to_float(bits: int) -> float:
    """Reinterpret a 32-bit pattern as an IEEE-754 binary32 value."""
    return struct.unpack("<f", struct.pack("<I", bits & MASK32))[0]


def double_to_bits(value: float) -> int:
    """Raw IEEE-754 binary64 pattern of *value*."""
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def bits_to_double(bits: int) -> float:
    """Reinterpret a 64-bit pattern as an IEEE-754 binary64 value."""
    return struct.unpack("<d", struct.pack("<Q", bits & MASK64))[0]


def float32_round(value: float) -> float:
    """Round a Python float to the nearest representable binary32 value.

    All F-extension arithmetic goes through this so results match a real
    single-precision FPU instead of silently keeping double precision.
    """
    if math.isnan(value) or math.isinf(value):
        return value
    return struct.unpack("<f", struct.pack("<f", value))[0]


def fcvt_w_s(value: float) -> int:
    """``fcvt.w.s`` semantics: truncate toward zero, clamp, NaN -> INT32_MAX."""
    if math.isnan(value):
        return INT32_MAX
    if value >= INT32_MAX:
        return INT32_MAX
    if value <= INT32_MIN:
        return INT32_MIN
    return int(value)


def fcvt_wu_s(value: float) -> int:
    """``fcvt.wu.s`` semantics: truncate toward zero, clamp to [0, 2^32-1]."""
    if math.isnan(value):
        return MASK32
    if value >= MASK32:
        return MASK32
    if value <= 0:
        return 0
    return int(value)


def fclass(value: float) -> int:
    """RISC-V ``fclass.s`` 10-bit classification mask."""
    if math.isnan(value):
        # Distinguishing signaling/quiet NaN is not possible from a Python
        # float; report quiet NaN.
        return 1 << 9
    if math.isinf(value):
        return (1 << 0) if value < 0 else (1 << 7)
    if value == 0.0:
        return (1 << 3) if math.copysign(1.0, value) < 0 else (1 << 4)
    tiny = abs(value) < 2.0 ** -126
    if value < 0:
        return (1 << 2) if tiny else (1 << 1)
    return (1 << 5) if tiny else (1 << 6)


def copy_sign_bits(magnitude: float, sign_source: float, flip: bool = False, xor: bool = False) -> float:
    """Implements ``fsgnj`` / ``fsgnjn`` / ``fsgnjx`` on binary32 values."""
    mbits = float_to_bits(magnitude)
    sbits = float_to_bits(sign_source)
    if xor:
        sign = (mbits ^ sbits) & 0x80000000
    else:
        sign = sbits & 0x80000000
        if flip:
            sign ^= 0x80000000
    return bits_to_float((mbits & 0x7FFFFFFF) | sign)
