"""Stack-based postfix interpreter for ``interpretableAs`` expressions.

Sec. III-B of the paper: *"The execution of an instruction is managed by the
Expression class, which implements a simple stack-based interpreter using
postfix notation ... The output of an expression may be twofold: the first
possible output is the value that remains on the stack after the
interpretation is executed, a mechanism used by expressions to calculate jump
addresses or conditions.  The second possible output is the assignment to a
variable within the expression.  The binary operator ``=`` in the expression
has a side effect, writing the value into the register."*

Tokens are space separated.  ``\\name`` refers to an instruction argument
(register value or immediate), ``\\pc`` to the program counter of the
executing instruction.  Integer operators work on 32-bit two's-complement
values; operators prefixed with ``u`` are unsigned variants; operators
prefixed with ``f`` operate on binary32 floats.  Exceptions raised by the
semantics (division by zero) are *recorded* on the evaluation context and
only surface when the instruction commits.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Union

from repro.errors import DivisionByZeroError, ExpressionError
from repro.isa import bits
from repro.isa.bits import (
    MASK32,
    to_int32,
    to_uint32,
    float32_round,
)

Number = Union[int, float]


class EvalContext:
    """Binding of argument names to values for one instruction execution.

    Parameters
    ----------
    values:
        Mapping of argument name to its current (source) value.
    pc:
        Byte address of the executing instruction.
    """

    __slots__ = ("values", "pc", "assignments", "exception")

    def __init__(self, values: Optional[Dict[str, Number]] = None, pc: int = 0):
        self.values: Dict[str, Number] = dict(values or {})
        self.pc = pc
        #: name -> value pairs produced by ``=`` operators, in order.
        self.assignments: List[tuple] = []
        #: recorded architectural exception (checked at commit time)
        self.exception = None

    def get(self, name: str) -> Number:
        if name == "pc":
            return self.pc
        try:
            return self.values[name]
        except KeyError:
            raise ExpressionError(f"unbound expression argument '\\{name}'") from None

    def set(self, name: str, value: Number) -> None:
        self.values[name] = value
        self.assignments.append((name, value))


class _Ref:
    """A reference to a context variable, as pushed by ``\\name`` tokens."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"\\{self.name}"


class _ExcCell:
    """Minimal operator context for the fused fast path.

    Operators only ever touch ``ctx.pc`` (exception metadata) and
    ``ctx.exception`` (deferred architectural exceptions); the fused
    generated code allocates this two-slot cell — and only when the
    expression contains an exception-capable operator — instead of a full
    :class:`EvalContext` with its argument-dict copy.
    """

    __slots__ = ("pc", "exception")

    def __init__(self, pc: int):
        self.pc = pc
        self.exception = None


def _fast_get(values: Dict[str, Number], name: str) -> Number:
    """Argument lookup for the fused fast path (same error contract as
    :meth:`EvalContext.get`)."""
    try:
        return values[name]
    except KeyError:
        raise ExpressionError(f"unbound expression argument '\\{name}'") from None


def _div(ctx: EvalContext, a: int, b: int) -> int:
    if b == 0:
        ctx.exception = DivisionByZeroError("integer division by zero", pc=ctx.pc)
        return -1  # RISC-V defined result: all ones
    if a == bits.INT32_MIN and b == -1:
        return bits.INT32_MIN  # overflow case
    return to_int32(int(math.trunc(a / b)))


def _rem(ctx: EvalContext, a: int, b: int) -> int:
    if b == 0:
        ctx.exception = DivisionByZeroError("integer remainder by zero", pc=ctx.pc)
        return to_int32(a)
    if a == bits.INT32_MIN and b == -1:
        return 0
    return to_int32(a - int(math.trunc(a / b)) * b)


def _divu(ctx: EvalContext, a: int, b: int) -> int:
    ua, ub = to_uint32(a), to_uint32(b)
    if ub == 0:
        ctx.exception = DivisionByZeroError("unsigned division by zero", pc=ctx.pc)
        return to_int32(MASK32)
    return to_int32(ua // ub)


def _remu(ctx: EvalContext, a: int, b: int) -> int:
    ua, ub = to_uint32(a), to_uint32(b)
    if ub == 0:
        ctx.exception = DivisionByZeroError("unsigned remainder by zero", pc=ctx.pc)
        return to_int32(ua)
    return to_int32(ua % ub)


# Binary integer operators: (ctx, a, b) -> int  (a below b on the stack)
_INT_BINARY: Dict[str, Callable] = {
    "+": lambda c, a, b: to_int32(a + b),
    "-": lambda c, a, b: to_int32(a - b),
    "*": lambda c, a, b: to_int32(a * b),
    "&": lambda c, a, b: to_int32(a & b),
    "|": lambda c, a, b: to_int32(a | b),
    "^": lambda c, a, b: to_int32(a ^ b),
    "<<": lambda c, a, b: to_int32(to_uint32(a) << (b & 31)),
    ">>": lambda c, a, b: to_int32(to_int32(a) >> (b & 31)),
    ">>u": lambda c, a, b: to_int32(to_uint32(a) >> (b & 31)),
    "==": lambda c, a, b: int(to_int32(a) == to_int32(b)),
    "!=": lambda c, a, b: int(to_int32(a) != to_int32(b)),
    "<": lambda c, a, b: int(to_int32(a) < to_int32(b)),
    "<=": lambda c, a, b: int(to_int32(a) <= to_int32(b)),
    ">": lambda c, a, b: int(to_int32(a) > to_int32(b)),
    ">=": lambda c, a, b: int(to_int32(a) >= to_int32(b)),
    "u<": lambda c, a, b: int(to_uint32(a) < to_uint32(b)),
    "u<=": lambda c, a, b: int(to_uint32(a) <= to_uint32(b)),
    "u>": lambda c, a, b: int(to_uint32(a) > to_uint32(b)),
    "u>=": lambda c, a, b: int(to_uint32(a) >= to_uint32(b)),
    "/": _div,
    "%": _rem,
    "u/": _divu,
    "u%": _remu,
    "mulh": lambda c, a, b: to_int32((to_int32(a) * to_int32(b)) >> 32),
    "mulhu": lambda c, a, b: to_int32((to_uint32(a) * to_uint32(b)) >> 32),
    "mulhsu": lambda c, a, b: to_int32((to_int32(a) * to_uint32(b)) >> 32),
}

#: operators that actually *use* their context (to record a deferred
#: exception); every other operator ignores the first argument, so the
#: fused fast path passes None and skips the context allocation entirely
_CTX_USERS = frozenset((_div, _rem, _divu, _remu))

# Unary integer operators
_INT_UNARY: Dict[str, Callable] = {
    "~": lambda c, a: to_int32(~a),
    "neg": lambda c, a: to_int32(-a),
}


def _fmin(c, a: float, b: float) -> float:
    if math.isnan(a):
        return b
    if math.isnan(b):
        return a
    if a == 0.0 and b == 0.0:  # -0.0 < +0.0 for fmin
        return a if math.copysign(1.0, a) < 0 else b
    return min(a, b)


def _fmax(c, a: float, b: float) -> float:
    if math.isnan(a):
        return b
    if math.isnan(b):
        return a
    if a == 0.0 and b == 0.0:
        return a if math.copysign(1.0, a) > 0 else b
    return max(a, b)


def _fdiv(c, a: float, b: float) -> float:
    if b == 0.0:
        if a == 0.0 or math.isnan(a):
            return float("nan")
        return math.copysign(float("inf"), a) * math.copysign(1.0, b)
    return float32_round(a / b)


def _fsqrt(c, a: float) -> float:
    if a < 0.0:
        return float("nan")
    return float32_round(math.sqrt(a))


# Binary float operators (operate on binary32-rounded Python floats)
_FLOAT_BINARY: Dict[str, Callable] = {
    "f+": lambda c, a, b: float32_round(a + b),
    "f-": lambda c, a, b: float32_round(a - b),
    "f*": lambda c, a, b: float32_round(a * b),
    "f/": _fdiv,
    "fmin": _fmin,
    "fmax": _fmax,
    "f==": lambda c, a, b: int(a == b),
    "f<": lambda c, a, b: int(a < b),
    "f<=": lambda c, a, b: int(a <= b),
    "fsgnj": lambda c, a, b: bits.copy_sign_bits(a, b),
    "fsgnjn": lambda c, a, b: bits.copy_sign_bits(a, b, flip=True),
    "fsgnjx": lambda c, a, b: bits.copy_sign_bits(a, b, xor=True),
}

_FLOAT_UNARY: Dict[str, Callable] = {
    "fsqrt": _fsqrt,
    "fabs": lambda c, a: abs(a),
    "fneg": lambda c, a: -a,
    "fclass": lambda c, a: bits.fclass(a),
    # conversions
    "f2i": lambda c, a: bits.fcvt_w_s(a),
    "f2u": lambda c, a: to_int32(bits.fcvt_wu_s(a)),
    "i2f": lambda c, a: float32_round(float(to_int32(int(a)))),
    "u2f": lambda c, a: float32_round(float(to_uint32(int(a)))),
    # raw bit moves (fmv.x.w / fmv.w.x)
    "fbits": lambda c, a: to_int32(bits.float_to_bits(a)),
    "bitsf": lambda c, a: bits.bits_to_float(to_uint32(int(a))),
}


# ----------------------------------------------------------------------
# Source-level operator inlining for the fused fast path.
#
# The simple wrap-and-compare operators compile to straight-line
# arithmetic inside the generated function instead of a Python call into
# the lambda tables above (each of which costs a call frame plus one or
# two ``to_int32`` calls).  The templates reproduce the table semantics
# token for token — ``to_int32`` becomes the mask-and-bias pair,
# comparisons produce plain ints — so results are bit-identical.  Maps
# are keyed by the operator *callables*, so the token stream is
# unchanged and any operator not listed keeps the call form (division,
# conversions, sign-injection).

def _i32_wrap(var: str) -> List[str]:
    """In-place two's-complement wrap of local *var* (= ``to_int32``)."""
    return [f"{var} &= 4294967295",
            f"if {var} >= 2147483648:",
            f"    {var} -= 4294967296"]


_ARITH_OPS = {"+": "+", "-": "-", "*": "*", "&": "&", "|": "|", "^": "^"}
_CMP_OPS = {"==": "==", "!=": "!=", "<": "<", "<=": "<=",
            ">": ">", ">=": ">="}
_UCMP_OPS = {"u<": "<", "u<=": "<=", "u>": ">", "u>=": ">="}
_FARITH_OPS = {"f+": "+", "f-": "-", "f*": "*"}
_FCMP_OPS = {"f==": "==", "f<": "<", "f<=": "<="}


def _inline_binary_lines(opname: str, name: str,
                         a: str, b: str) -> List[str]:
    """Lines computing binary *opname* of *a*, *b* into local *name*."""
    sym = _ARITH_OPS.get(opname)
    if sym is not None:
        return [f"{name} = int({a}) {sym} int({b})"] + _i32_wrap(name)
    sym = _CMP_OPS.get(opname)
    if sym is not None:
        nb = f"{name}_r"
        return ([f"{name} = int({a})"] + _i32_wrap(name)
                + [f"{nb} = int({b})"] + _i32_wrap(nb)
                + [f"{name} = 1 if {name} {sym} {nb} else 0"])
    sym = _UCMP_OPS.get(opname)
    if sym is not None:
        return [f"{name} = 1 if int({a}) & 4294967295 {sym} "
                f"int({b}) & 4294967295 else 0"]
    if opname == "<<":
        return ([f"{name} = (int({a}) & 4294967295) << (int({b}) & 31)"]
                + _i32_wrap(name))
    if opname == ">>":
        return ([f"{name} = int({a})"] + _i32_wrap(name)
                + [f"{name} >>= int({b}) & 31"] + _i32_wrap(name))
    if opname == ">>u":
        return ([f"{name} = (int({a}) & 4294967295) >> (int({b}) & 31)"]
                + _i32_wrap(name))
    sym = _FARITH_OPS.get(opname)
    if sym is not None:
        return [f"{name} = _f32r(float({a}) {sym} float({b}))"]
    sym = _FCMP_OPS.get(opname)
    if sym is not None:
        return [f"{name} = 1 if float({a}) {sym} float({b}) else 0"]
    raise AssertionError(opname)  # pragma: no cover - map mismatch


def _inline_unary_lines(opname: str, name: str, a: str) -> List[str]:
    """Lines computing unary *opname* of *a* into local *name*."""
    if opname == "~":
        return [f"{name} = ~int({a})"] + _i32_wrap(name)
    if opname == "neg":
        return [f"{name} = -int({a})"] + _i32_wrap(name)
    if opname == "fneg":
        return [f"{name} = -float({a})"]
    if opname == "fabs":
        return [f"{name} = abs(float({a}))"]
    raise AssertionError(opname)  # pragma: no cover - map mismatch


_INLINE_BINARY_NAMES: Dict[object, str] = {}
for _k in (*_ARITH_OPS, *_CMP_OPS, *_UCMP_OPS, "<<", ">>", ">>u"):
    _INLINE_BINARY_NAMES[_INT_BINARY[_k]] = _k
for _k in (*_FARITH_OPS, *_FCMP_OPS):
    _INLINE_BINARY_NAMES[_FLOAT_BINARY[_k]] = _k
del _k

_INLINE_UNARY_NAMES: Dict[object, str] = {
    _INT_UNARY["~"]: "~",
    _INT_UNARY["neg"]: "neg",
    _FLOAT_UNARY["fneg"]: "fneg",
    _FLOAT_UNARY["fabs"]: "fabs",
}


class Expression:
    """A compiled postfix expression.

    Instances are immutable and cheap to evaluate repeatedly; the simulator
    compiles each instruction definition's expression once and reuses it for
    every dynamic instance.
    """

    __slots__ = ("source", "_tokens", "_fn", "_fast")

    _cache: Dict[str, "Expression"] = {}

    def __init__(self, source: str):
        self.source = source
        self._tokens = self._compile(source)
        self._fn = self._codegen(source, self._tokens)
        self._fast = self._codegen_fast(source, self._tokens)

    @classmethod
    def compile(cls, source: str) -> "Expression":
        """Memoized constructor (expressions repeat across instructions)."""
        expr = cls._cache.get(source)
        if expr is None:
            expr = cls(source)
            cls._cache[source] = expr
        return expr

    @staticmethod
    def _compile(source: str) -> list:
        tokens = []
        for raw in source.split():
            if raw.startswith("\\"):
                name = raw[1:]
                if not name:
                    raise ExpressionError(f"empty reference in expression {source!r}")
                # _Ref instances are immutable: pre-create one per token so
                # evaluation pushes a shared object instead of allocating
                tokens.append(("ref", _Ref(name)))
            elif raw == "=":
                tokens.append(("assign", None))
            elif raw in _INT_BINARY:
                tokens.append(("ib", _INT_BINARY[raw]))
            elif raw in _INT_UNARY:
                tokens.append(("iu", _INT_UNARY[raw]))
            elif raw in _FLOAT_BINARY:
                tokens.append(("fb", _FLOAT_BINARY[raw]))
            elif raw in _FLOAT_UNARY:
                tokens.append(("fu", _FLOAT_UNARY[raw]))
            else:
                try:
                    tokens.append(("lit", int(raw, 0)))
                except ValueError:
                    try:
                        tokens.append(("lit", float(raw)))
                    except ValueError:
                        raise ExpressionError(
                            f"unknown token {raw!r} in expression {source!r}"
                        ) from None
        return tokens

    @staticmethod
    def _codegen(source: str, tokens: list) -> Optional[Callable]:
        """Compile the postfix program to a straight-line Python function.

        Postfix expressions have a statically known stack shape, so the
        stack machine unrolls into plain assignments: operator callables are
        bound into the generated function's globals, references resolve
        lazily (at consumption time, like the interpreter) via ``ctx.get``.
        Returns ``None`` for malformed shapes (stack underflow, non-reference
        assignment target); those fall back to :meth:`_interpret`, which
        raises the matching :class:`ExpressionError` at evaluation time.
        """
        env: Dict[str, object] = {}
        lines: List[str] = []
        #: symbolic stack: ("ref", name) | ("val", python expression)
        stack: List[Tuple[str, str]] = []
        temp = 0

        def resolve(slot: Tuple[str, str]) -> str:
            kind, payload = slot
            return f"_get({payload!r})" if kind == "ref" else payload

        for kind, payload in tokens:
            if kind == "ref":
                stack.append(("ref", payload.name))
            elif kind == "lit":
                const = f"_c{len(env)}"
                env[const] = payload
                stack.append(("val", const))
            elif kind == "assign":
                if len(stack) < 2 or stack[-1][0] != "ref":
                    return None
                target = stack.pop()[1]
                value = resolve(stack.pop())
                lines.append(f"_set({target!r}, {value})")
            else:
                op = f"_op{len(env)}"
                env[op] = payload
                cast = "int" if kind in ("ib", "iu") else "float"
                if kind in ("ib", "fb"):
                    if len(stack) < 2:
                        return None
                    b = resolve(stack.pop())
                    a = resolve(stack.pop())
                    call = f"{op}(_ctx, {cast}({a}), {cast}({b}))"
                else:
                    if not stack:
                        return None
                    a = resolve(stack.pop())
                    call = f"{op}(_ctx, {cast}({a}))"
                name = f"_t{temp}"
                temp += 1
                lines.append(f"{name} = {call}")
                stack.append(("val", name))

        lines.append(f"return {resolve(stack[-1])}" if stack else "return None")
        body = "".join(f"    {line}\n" for line in lines)
        code = ("def _compiled(_ctx):\n"
                "    _get = _ctx.get\n"
                "    _set = _ctx.set\n" + body)
        exec(compile(code, f"<expression {source!r}>", "exec"), env)
        return env["_compiled"]

    @staticmethod
    def _codegen_fast(source: str, tokens: list) -> Optional[Callable]:
        """Fused variant of :meth:`_codegen`: no :class:`EvalContext`.

        The generated function has signature ``(values, pc) -> (result,
        assignments, exception)`` and reads *values* without copying it
        (and never writes into it).  The per-evaluation context object the
        interpreter and the plain codegen allocate is fused away:

        * reads of ``\\pc`` compile to the ``pc`` parameter;
        * reads of a name the expression previously assigned compile to the
          local temporary holding the assigned value (the lazy
          resolve-at-consumption semantics of the interpreter, preserved
          without mutating the caller's dict);
        * the operator context shrinks to a two-slot :class:`_ExcCell`,
          allocated only when an exception-capable operator (division /
          remainder) is present, else operators receive ``None``;
        * the assignment list is allocated only when ``=`` occurs.

        Returns ``None`` for malformed shapes; those keep falling back to
        the interpreter, which raises the matching :class:`ExpressionError`.
        """
        env: Dict[str, object] = {"_getv": _fast_get, "_Exc": _ExcCell,
                                  "_f32r": float32_round}
        lines: List[str] = []
        stack: List[Tuple[str, str]] = []
        #: name -> local temp holding its most recent assigned value
        assigned: Dict[str, str] = {}
        temp = 0
        needs_exc = any(kind in ("ib", "iu", "fb", "fu")
                        and payload in _CTX_USERS
                        for kind, payload in tokens)
        has_assign = any(kind == "assign" for kind, _ in tokens)

        def resolve(slot: Tuple[str, str]) -> str:
            kind, payload = slot
            if kind != "ref":
                return payload
            if payload == "pc":
                return "_pc"
            if payload in assigned:
                return assigned[payload]
            return f"_getv(_values, {payload!r})"

        for kind, payload in tokens:
            if kind == "ref":
                stack.append(("ref", payload.name))
            elif kind == "lit":
                const = f"_c{len(env)}"
                env[const] = payload
                stack.append(("val", const))
            elif kind == "assign":
                if len(stack) < 2 or stack[-1][0] != "ref":
                    return None
                target = stack.pop()[1]
                value = resolve(stack.pop())
                var = f"_a{temp}"
                temp += 1
                lines.append(f"{var} = {value}")
                lines.append(f"_asg.append(({target!r}, {var}))")
                if target != "pc":   # \pc reads always resolve to the pc
                    assigned[target] = var
            else:
                cast = "int" if kind in ("ib", "iu") else "float"
                name = f"_t{temp}"
                if kind in ("ib", "fb"):
                    if len(stack) < 2:
                        return None
                    b = resolve(stack.pop())
                    a = resolve(stack.pop())
                    opname = _INLINE_BINARY_NAMES.get(payload)
                    if opname is not None:
                        temp += 1
                        lines += _inline_binary_lines(opname, name, a, b)
                        stack.append(("val", name))
                        continue
                    op = f"_op{len(env)}"
                    env[op] = payload
                    ctx_arg = "_exc" if needs_exc else "None"
                    call = f"{op}({ctx_arg}, {cast}({a}), {cast}({b}))"
                else:
                    if not stack:
                        return None
                    a = resolve(stack.pop())
                    opname = _INLINE_UNARY_NAMES.get(payload)
                    if opname is not None:
                        temp += 1
                        lines += _inline_unary_lines(opname, name, a)
                        stack.append(("val", name))
                        continue
                    op = f"_op{len(env)}"
                    env[op] = payload
                    ctx_arg = "_exc" if needs_exc else "None"
                    call = f"{op}({ctx_arg}, {cast}({a}))"
                temp += 1
                lines.append(f"{name} = {call}")
                stack.append(("val", name))

        result = resolve(stack[-1]) if stack else "None"
        asg = "_asg" if has_assign else "()"
        exc = "_exc.exception" if needs_exc else "None"
        lines.append(f"return ({result}, {asg}, {exc})")
        prologue = ""
        if needs_exc:
            prologue += "    _exc = _Exc(_pc)\n"
        if has_assign:
            prologue += "    _asg = []\n"
        body = "".join(f"    {line}\n" for line in lines)
        code = "def _fused(_values, _pc):\n" + prologue + body
        exec(compile(code, f"<fused expression {source!r}>", "exec"), env)
        return env["_fused"]

    def evaluate(self, ctx: EvalContext) -> Optional[Number]:
        """Run the expression; returns the value left on the stack (if any).

        Assignments performed by ``=`` are recorded in ``ctx.assignments``
        and stored into ``ctx.values``.
        """
        fn = self._fn
        if fn is not None:
            return fn(ctx)
        return self._interpret(ctx)

    def eval_fast(self, values: Dict[str, Number], pc: int = 0):
        """Context-free hot-loop entry: ``(result, assignments, exception)``.

        Unlike :meth:`evaluate` this neither copies nor mutates *values* —
        the per-instruction :class:`EvalContext` allocation is fused into
        the generated code (see :meth:`_codegen_fast`).  Malformed shapes
        fall back to the interpreter for its reference error behaviour.
        """
        fn = self._fast
        if fn is not None:
            return fn(values, pc)
        ctx = EvalContext(values, pc=pc)
        result = self._interpret(ctx)
        return result, ctx.assignments, ctx.exception

    def _interpret(self, ctx: EvalContext) -> Optional[Number]:
        """Stack-machine fallback (also the reference semantics)."""
        stack: List[object] = []
        append = stack.append
        pop = stack.pop
        get = ctx.get

        for kind, payload in self._tokens:
            if kind == "ref":
                append(payload)  # shared, immutable _Ref
            elif kind == "lit":
                append(payload)
            elif kind == "assign":
                if len(stack) < 2:
                    raise ExpressionError(f"'=' needs value and target in {self.source!r}")
                target = pop()
                if type(target) is not _Ref:
                    raise ExpressionError(f"'=' target must be a \\reference in {self.source!r}")
                value = pop()
                if type(value) is _Ref:
                    value = get(value.name)
                ctx.set(target.name, value)
            elif kind == "ib":
                if len(stack) < 2:
                    raise ExpressionError(f"operator needs 2 operands in {self.source!r}")
                b = pop()
                if type(b) is _Ref:
                    b = get(b.name)
                a = pop()
                if type(a) is _Ref:
                    a = get(a.name)
                append(payload(ctx, int(a), int(b)))
            elif kind == "iu":
                if not stack:
                    raise ExpressionError(f"operator needs 1 operand in {self.source!r}")
                a = pop()
                if type(a) is _Ref:
                    a = get(a.name)
                append(payload(ctx, int(a)))
            elif kind == "fb":
                if len(stack) < 2:
                    raise ExpressionError(f"operator needs 2 operands in {self.source!r}")
                b = pop()
                if type(b) is _Ref:
                    b = get(b.name)
                a = pop()
                if type(a) is _Ref:
                    a = get(a.name)
                append(payload(ctx, float(a), float(b)))
            else:  # "fu"
                if not stack:
                    raise ExpressionError(f"operator needs 1 operand in {self.source!r}")
                a = pop()
                if type(a) is _Ref:
                    a = get(a.name)
                append(payload(ctx, float(a)))

        if stack:
            top = stack[-1]
            if type(top) is _Ref:
                return get(top.name)
            return top
        return None

    def references(self) -> List[str]:
        """Names of all ``\\`` arguments used (excluding ``pc``)."""
        return [p.name for k, p in self._tokens if k == "ref" and p.name != "pc"]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Expression({self.source!r})"
