"""Declarative instruction definitions (the paper's JSON instruction file).

Each instruction is an :class:`InstructionDef` carrying typed arguments and
a postfix ``interpretableAs`` expression (Listing 1 in the paper)::

    {
      "name": "add",
      "instructionType": "kIntArithmetic",
      "arguments": [
        {"name": "rd",  "type": "kInt", "writeBack": true},
        {"name": "rs1", "type": "kInt"},
        {"name": "rs2", "type": "kInt"}
      ],
      "interpretableAs": "\\rs1 \\rs2 + \\rd ="
    }

Definitions additionally carry the micro-architectural metadata the pipeline
needs: functional-unit class, operation class (to match against the
per-functional-unit capability lists in the architecture configuration),
memory access width/signedness for loads and stores, and branch behaviour.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class InstructionType(str, enum.Enum):
    """Coarse classification used for the static/dynamic instruction mix."""

    INT_ARITHMETIC = "kIntArithmetic"
    FLOAT_ARITHMETIC = "kFloatArithmetic"
    LOADSTORE = "kLoadstore"
    JUMPBRANCH = "kJumpbranch"


class FuClass(str, enum.Enum):
    """Functional-unit class an instruction dispatches to (Sec. II-A)."""

    FX = "FX"
    FP = "FP"
    LS = "LS"
    BRANCH = "Branch"


class ArgType(str, enum.Enum):
    """Type of an instruction argument."""

    INT = "kInt"        # integer register (x0..x31)
    FLOAT = "kFloat"    # floating point register (f0..f31)
    IMM = "kImm"        # immediate constant
    LABEL = "kLabel"    # label resolving to an immediate (branch offset / address)


@dataclass(frozen=True)
class Argument:
    """One operand of an instruction.

    ``write_back`` marks destination registers; everything else is a source.
    """

    name: str
    type: ArgType
    write_back: bool = False

    @property
    def is_register(self) -> bool:
        return self.type in (ArgType.INT, ArgType.FLOAT)

    def to_json(self) -> dict:
        data = {"name": self.name, "type": self.type.value}
        if self.write_back:
            data["writeBack"] = True
        return data

    @staticmethod
    def from_json(data: dict) -> "Argument":
        return Argument(
            name=data["name"],
            type=ArgType(data["type"]),
            write_back=bool(data.get("writeBack", False)),
        )


@dataclass(frozen=True)
class InstructionDef:
    """Full definition of one machine instruction.

    Parameters
    ----------
    name:
        Mnemonic (e.g. ``add``).
    instruction_type:
        Coarse class for statistics.
    arguments:
        Operands in *assembly source order* (``add rd, rs1, rs2``).
    interpretable_as:
        Postfix semantics expression.  For loads/stores it computes the
        effective address; for conditional branches the branch condition.
    fu_class:
        Which functional-unit family executes the instruction.
    op_class:
        Capability keyword matched against the per-FU ``operations`` list of
        the architecture configuration (e.g. ``addition``).
    memory_size / memory_signed / is_store:
        Memory access description for ``kLoadstore`` instructions.
    is_branch / is_unconditional / target:
        Branch metadata; ``target`` is a postfix expression computing the
        branch target from ``\\pc`` and operands.
    flops:
        Floating point operations contributed per execution (FLOPS metric).
    mem_operand:
        ``True`` when the last source pair is written ``imm(rs1)`` style.
    """

    name: str
    instruction_type: InstructionType
    arguments: Tuple[Argument, ...]
    interpretable_as: str
    fu_class: FuClass
    op_class: str
    memory_size: int = 0
    memory_signed: bool = False
    is_store: bool = False
    is_branch: bool = False
    is_unconditional: bool = False
    target: str = ""
    flops: int = 0
    mem_operand: bool = False

    def __post_init__(self) -> None:
        names = [a.name for a in self.arguments]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate argument names in {self.name}: {names}")

    @property
    def is_load(self) -> bool:
        return self.memory_size > 0 and not self.is_store

    @property
    def destination(self) -> Optional[Argument]:
        """The (single) write-back register argument, if any."""
        for arg in self.arguments:
            if arg.write_back and arg.is_register:
                return arg
        return None

    @property
    def sources(self) -> List[Argument]:
        """Register arguments read by the instruction."""
        return [a for a in self.arguments if a.is_register and not a.write_back]

    def to_json(self) -> dict:
        data = {
            "name": self.name,
            "instructionType": self.instruction_type.value,
            "arguments": [a.to_json() for a in self.arguments],
            "interpretableAs": self.interpretable_as,
            "fuClass": self.fu_class.value,
            "opClass": self.op_class,
        }
        if self.memory_size:
            data["memorySize"] = self.memory_size
            data["memorySigned"] = self.memory_signed
            data["isStore"] = self.is_store
        if self.is_branch:
            data["isBranch"] = True
            data["isUnconditional"] = self.is_unconditional
            data["target"] = self.target
        if self.flops:
            data["flops"] = self.flops
        if self.mem_operand:
            data["memOperand"] = True
        return data

    @staticmethod
    def from_json(data: dict) -> "InstructionDef":
        return InstructionDef(
            name=data["name"],
            instruction_type=InstructionType(data["instructionType"]),
            arguments=tuple(Argument.from_json(a) for a in data["arguments"]),
            interpretable_as=data["interpretableAs"],
            fu_class=FuClass(data["fuClass"]),
            op_class=data["opClass"],
            memory_size=int(data.get("memorySize", 0)),
            memory_signed=bool(data.get("memorySigned", False)),
            is_store=bool(data.get("isStore", False)),
            is_branch=bool(data.get("isBranch", False)),
            is_unconditional=bool(data.get("isUnconditional", False)),
            target=data.get("target", ""),
            flops=int(data.get("flops", 0)),
            mem_operand=bool(data.get("memOperand", False)),
        )


def int_reg(name: str, write_back: bool = False) -> Argument:
    """Shorthand for an integer-register argument."""
    return Argument(name, ArgType.INT, write_back)


def fp_reg(name: str, write_back: bool = False) -> Argument:
    """Shorthand for a floating-point-register argument."""
    return Argument(name, ArgType.FLOAT, write_back)


def imm(name: str = "imm") -> Argument:
    """Shorthand for an immediate argument."""
    return Argument(name, ArgType.IMM)


def label(name: str = "imm") -> Argument:
    """Shorthand for a label argument (resolved to an immediate)."""
    return Argument(name, ArgType.LABEL)
