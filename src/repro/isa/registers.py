"""Architectural register model.

Sec. III-B: registers are 64-bit arrays interpreted per-instruction, carry a
data-type tag for friendly GUI display, and hold the metadata needed for
renaming (reference counts; architectural registers know their renamed
copies, speculative registers point back at their architectural register —
that part lives in :mod:`repro.core.rename`).

This module provides the *architectural* register file (32 integer + 32
floating point registers), the ABI alias tables and value coercion helpers.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Union

from repro.errors import AsmSyntaxError
from repro.isa.bits import to_int32, float32_round

Number = Union[int, float]


class RegisterDataType(str, enum.Enum):
    """Display/data-type tag attached to a register value."""

    INT = "kInt"
    UINT = "kUInt"
    FLOAT = "kFloat"
    BOOL = "kBool"
    CHAR = "kChar"


#: ABI aliases for the 32 integer registers.
INT_REG_ALIASES: Dict[str, str] = {
    "zero": "x0", "ra": "x1", "sp": "x2", "gp": "x3", "tp": "x4",
    "t0": "x5", "t1": "x6", "t2": "x7",
    "s0": "x8", "fp": "x8", "s1": "x9",
    "a0": "x10", "a1": "x11", "a2": "x12", "a3": "x13",
    "a4": "x14", "a5": "x15", "a6": "x16", "a7": "x17",
    "s2": "x18", "s3": "x19", "s4": "x20", "s5": "x21",
    "s6": "x22", "s7": "x23", "s8": "x24", "s9": "x25",
    "s10": "x26", "s11": "x27",
    "t3": "x28", "t4": "x29", "t5": "x30", "t6": "x31",
}

#: ABI aliases for the 32 floating point registers.
FP_REG_ALIASES: Dict[str, str] = {
    "ft0": "f0", "ft1": "f1", "ft2": "f2", "ft3": "f3",
    "ft4": "f4", "ft5": "f5", "ft6": "f6", "ft7": "f7",
    "fs0": "f8", "fs1": "f9",
    "fa0": "f10", "fa1": "f11", "fa2": "f12", "fa3": "f13",
    "fa4": "f14", "fa5": "f15", "fa6": "f16", "fa7": "f17",
    "fs2": "f18", "fs3": "f19", "fs4": "f20", "fs5": "f21",
    "fs6": "f22", "fs7": "f23", "fs8": "f24", "fs9": "f25",
    "fs10": "f26", "fs11": "f27",
    "ft8": "f28", "ft9": "f29", "ft10": "f30", "ft11": "f31",
}

_INT_NAMES = {f"x{i}" for i in range(32)}
_FP_NAMES = {f"f{i}" for i in range(32)}


def canonical_int_reg(name: str) -> Optional[str]:
    """Canonical ``xN`` name for an integer register or alias, else None."""
    name = name.lower()
    if name in _INT_NAMES:
        return name
    return INT_REG_ALIASES.get(name)


def canonical_fp_reg(name: str) -> Optional[str]:
    """Canonical ``fN`` name for a floating register or alias, else None."""
    name = name.lower()
    if name in _FP_NAMES:
        return name
    return FP_REG_ALIASES.get(name)


def parse_register(name: str) -> str:
    """Resolve *name* to a canonical register or raise :class:`AsmSyntaxError`."""
    reg = canonical_int_reg(name) or canonical_fp_reg(name)
    if reg is None:
        raise AsmSyntaxError(f"unknown register '{name}'")
    return reg


def is_fp_register(name: str) -> bool:
    """True when the canonical register name belongs to the FP file."""
    return name.startswith("f") and name != "fp"


class RegisterFile:
    """The committed (architectural) register state.

    Integer registers hold signed 32-bit Python ints (stored sign-extended,
    matching the paper's 64-bit backing store), floating point registers hold
    binary32-rounded Python floats.  ``x0`` is hard-wired to zero.
    """

    def __init__(self) -> None:
        self._int: List[int] = [0] * 32
        self._fp: List[float] = [0.0] * 32
        self._dtype: Dict[str, RegisterDataType] = {}
        #: dirty counter (see repro.sim.state): bumped on every write
        self.version = 0

    # -- reads ---------------------------------------------------------
    def read(self, reg: str) -> Number:
        """Read register by canonical name (``x7`` / ``f3``)."""
        if reg[0] == "x":
            return self._int[int(reg[1:])]
        return self._fp[int(reg[1:])]

    def read_int(self, index: int) -> int:
        return self._int[index]

    def read_fp(self, index: int) -> float:
        return self._fp[index]

    # -- writes --------------------------------------------------------
    def write(self, reg: str, value: Number,
              dtype: Optional[RegisterDataType] = None) -> None:
        """Write register by canonical name; ``x0`` writes are discarded."""
        if reg[0] == "x":
            idx = int(reg[1:])
            if idx == 0:
                return
            self._int[idx] = to_int32(int(value))
        else:
            self._fp[int(reg[1:])] = float32_round(float(value))
        self.version += 1
        if dtype is not None:
            self._dtype[reg] = dtype

    def data_type(self, reg: str) -> RegisterDataType:
        """Display type tag of the register (defaults to kInt / kFloat)."""
        if reg in self._dtype:
            return self._dtype[reg]
        return RegisterDataType.FLOAT if reg[0] == "f" else RegisterDataType.INT

    def display_value(self, reg: str) -> str:
        """GUI-friendly rendering honouring the data-type tag (Sec. III-B)."""
        value = self.read(reg)
        dtype = self.data_type(reg)
        if dtype is RegisterDataType.CHAR and isinstance(value, int):
            code = value & 0xFF
            return repr(chr(code)) if 32 <= code < 127 else f"\\x{code:02x}"
        if dtype is RegisterDataType.BOOL and isinstance(value, int):
            return "true" if value else "false"
        if dtype is RegisterDataType.UINT and isinstance(value, int):
            return str(value & 0xFFFFFFFF)
        return str(value)

    # -- bulk ----------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-serializable copy of the whole file (server API payload)."""
        return {
            "int": list(self._int),
            "fp": list(self._fp),
        }

    def restore(self, snap: dict) -> None:
        self._int = list(snap["int"])
        self._fp = list(snap["fp"])
        self.version += 1

    # -- state-engine protocol (repro.sim.state) -------------------------
    def save_state(self) -> dict:
        return {"int": list(self._int), "fp": list(self._fp),
                "dtype": dict(self._dtype)}

    def restore_state(self, state: dict) -> None:
        self._int = list(state["int"])
        self._fp = list(state["fp"])
        self._dtype = dict(state["dtype"])
        self.version += 1

    def reset(self) -> None:
        self._int = [0] * 32
        self._fp = [0.0] * 32
        self._dtype.clear()
        self.version += 1

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RegisterFile):
            return NotImplemented
        return self._int == other._int and self._fp == other._fp

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nz = {f"x{i}": v for i, v in enumerate(self._int) if v}
        nzf = {f"f{i}": v for i, v in enumerate(self._fp) if v}
        return f"RegisterFile({nz}, {nzf})"
