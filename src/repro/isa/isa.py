"""Instruction-set registry with JSON import/export.

Mirrors the paper's "instruction set is defined in a configuration JSON file
and can be easily extended" (Sec. III-B, Listing 1).  A default RV32IMF set
is built from :mod:`repro.isa.rv32`; user-supplied JSON can add or override
instructions.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from repro.errors import ConfigError
from repro.isa.expression import Expression
from repro.isa.instruction import InstructionDef
from repro.isa.rv32 import rv32f, rv32i, rv32m


class InstructionSet:
    """A named collection of :class:`InstructionDef` looked up by mnemonic."""

    def __init__(self, defs: Iterable[InstructionDef] = (), name: str = "custom"):
        self.name = name
        self._defs: Dict[str, InstructionDef] = {}
        for d in defs:
            self.add(d)

    def add(self, definition: InstructionDef) -> None:
        """Add or override one instruction; validates its expressions."""
        # Compile eagerly so malformed expressions fail at definition time,
        # not in the middle of a simulation.
        if definition.interpretable_as:
            expr = Expression.compile(definition.interpretable_as)
            arg_names = {a.name for a in definition.arguments}
            for ref in expr.references():
                if ref not in arg_names:
                    raise ConfigError(
                        f"instruction '{definition.name}': expression references "
                        f"'\\{ref}' which is not an argument"
                    )
        if definition.target:
            Expression.compile(definition.target)
        self._defs[definition.name] = definition

    def get(self, name: str) -> Optional[InstructionDef]:
        return self._defs.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._defs

    def __len__(self) -> int:
        return len(self._defs)

    def names(self) -> List[str]:
        return sorted(self._defs)

    def all(self) -> List[InstructionDef]:
        return list(self._defs.values())


_DEFAULT: Optional[InstructionSet] = None


def default_instruction_set() -> InstructionSet:
    """The built-in RV32IMF instruction set (cached singleton)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = InstructionSet(rv32i() + rv32m() + rv32f(), name="RV32IMF")
    return _DEFAULT


def register_instruction(definition: InstructionDef,
                         iset: Optional[InstructionSet] = None) -> InstructionSet:
    """Extend an instruction set (defaults to a copy of the built-in one)."""
    base = iset if iset is not None else InstructionSet(
        default_instruction_set().all(), name="RV32IMF+custom")
    base.add(definition)
    return base


def instruction_set_to_json(iset: InstructionSet) -> str:
    """Serialize to the paper's JSON configuration format."""
    return json.dumps(
        {"name": iset.name, "instructions": [d.to_json() for d in iset.all()]},
        indent=2,
    )


def instruction_set_from_json(text: str) -> InstructionSet:
    """Load an instruction set from the JSON configuration format."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigError(f"invalid instruction set JSON: {exc}") from exc
    if isinstance(data, list):  # bare list of definitions is accepted too
        data = {"name": "custom", "instructions": data}
    defs = [InstructionDef.from_json(d) for d in data.get("instructions", [])]
    return InstructionSet(defs, name=data.get("name", "custom"))
