"""Instruction-set layer: RV32IMF definitions, registers, semantics.

The instruction set is defined declaratively (Sec. III-B of the paper): each
instruction is a record with typed arguments and an ``interpretableAs``
postfix expression executed by a small stack interpreter.  The set can be
extended at runtime (:func:`repro.isa.isa.register_instruction`) or loaded
from JSON, mirroring the paper's configuration file.
"""

from repro.isa.bits import (
    to_int32,
    to_uint32,
    to_int64,
    to_uint64,
    float_to_bits,
    bits_to_float,
    float32_round,
    sign_extend,
)
from repro.isa.instruction import (
    Argument,
    ArgType,
    InstructionDef,
    InstructionType,
    FuClass,
)
from repro.isa.expression import Expression, EvalContext
from repro.isa.registers import (
    RegisterFile,
    RegisterDataType,
    INT_REG_ALIASES,
    FP_REG_ALIASES,
    canonical_int_reg,
    canonical_fp_reg,
)
from repro.isa.encoding import decode, disassemble, encode, encode_program
from repro.isa.isa import (
    InstructionSet,
    default_instruction_set,
    register_instruction,
    instruction_set_to_json,
    instruction_set_from_json,
)

__all__ = [
    "Argument",
    "ArgType",
    "InstructionDef",
    "InstructionType",
    "FuClass",
    "Expression",
    "EvalContext",
    "RegisterFile",
    "RegisterDataType",
    "InstructionSet",
    "default_instruction_set",
    "register_instruction",
    "instruction_set_to_json",
    "instruction_set_from_json",
    "INT_REG_ALIASES",
    "FP_REG_ALIASES",
    "canonical_int_reg",
    "canonical_fp_reg",
    "encode",
    "decode",
    "encode_program",
    "disassemble",
    "to_int32",
    "to_uint32",
    "to_int64",
    "to_uint64",
    "float_to_bits",
    "bits_to_float",
    "float32_round",
    "sign_extend",
]
