"""Comparison / report layer over sweep records.

Turns the flat JSONL records of a finished sweep into the artifacts a
design-space study actually reads: a metric table across all runs, a
best-config ranking, and the pairwise speedup matrix (how much faster is
row-config than column-config).  JSON output here; the text rendering
lives with the other GUI-view renderers in :mod:`repro.viz.sweep`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["MetricError", "SweepReport", "METRICS"]

#: metric name -> (dotted path into record["stats"], higher_is_better)
METRICS: Dict[str, Tuple[str, bool]] = {
    "cycles": ("cycles", False),
    "ipc": ("ipc", True),
    "committedInstructions": ("committedInstructions", False),
    "branchAccuracy": ("branchAccuracy", True),
    "cacheHitRate": ("cache.hitRatio", True),
    "cacheMissRate": ("cache.missRatio", False),
    "energy": ("energy.totalPj", False),
    "area": ("areaKGE", False),
    "flops": ("flopsTotal", True),
}


class MetricError(ValueError):
    """Unknown metric or a record that does not carry it."""


def _metric_path(metric: str) -> Tuple[str, bool]:
    if metric in METRICS:
        return METRICS[metric]
    # raw dotted paths into stats are allowed ("memory.bytesRead");
    # treated as lower-is-better unless suffixed with "+"
    if metric.endswith("+"):
        return metric[:-1], True
    return metric, False


def metric_value(record: dict, metric: str) -> Optional[float]:
    """Resolve *metric* for one record (None when absent, e.g. no cache)."""
    path, _better = _metric_path(metric)
    node = record.get("stats", {})
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node if isinstance(node, (int, float)) else None


class SweepReport:
    """Ranking, tables and pairwise comparisons over sweep records."""

    #: table columns: (header, metric)
    TABLE_METRICS = (
        ("cycles", "cycles"),
        ("instrs", "committedInstructions"),
        ("IPC", "ipc"),
        ("br.acc", "branchAccuracy"),
        ("cache", "cacheHitRate"),
        ("energy[nJ]", "energy"),
    )

    def __init__(self, records: List[dict], name: str = "sweep",
                 metric: str = "cycles"):
        if metric not in METRICS:
            raise MetricError(f"unknown ranking metric {metric!r} "
                              f"(one of {sorted(METRICS)})")
        self.name = name
        self.metric = metric
        self.records = sorted(records, key=lambda r: r.get("index", 0))
        self.ok = [r for r in self.records if r.get("ok")]
        self.failed = [r for r in self.records if not r.get("ok")]

    # ------------------------------------------------------------------
    def ranking(self, metric: Optional[str] = None) -> List[dict]:
        """Runs ordered best-first by *metric* (runs missing it excluded)."""
        metric = metric or self.metric
        _path, higher_better = _metric_path(metric)
        scored = [(metric_value(record, metric), record)
                  for record in self.ok]
        scored = [(value, record) for value, record in scored
                  if value is not None]
        scored.sort(key=lambda pair: pair[0], reverse=higher_better)
        return [{"rank": position + 1, "label": record["label"],
                 "index": record["index"], "value": value}
                for position, (value, record) in enumerate(scored)]

    def best(self, metric: Optional[str] = None) -> Optional[dict]:
        ranking = self.ranking(metric)
        if not ranking:
            return None
        index = ranking[0]["index"]
        return next(r for r in self.ok if r["index"] == index)

    # ------------------------------------------------------------------
    def pairwise_speedups(self, metric: Optional[str] = None) -> dict:
        """``matrix[i][j]`` = how many times better run *i* is than *j*.

        For lower-is-better metrics (cycles, energy) that is
        ``value_j / value_i``; for higher-is-better it is
        ``value_i / value_j`` — either way ``> 1`` means row beats column.
        """
        metric = metric or self.metric
        _path, higher_better = _metric_path(metric)
        labeled = [(record["label"], metric_value(record, metric))
                   for record in self.ok]
        labeled = [(label, value) for label, value in labeled
                   if value is not None and value > 0]
        labels = [label for label, _ in labeled]
        matrix: List[List[Optional[float]]] = []
        for _label_i, value_i in labeled:
            row: List[Optional[float]] = []
            for _label_j, value_j in labeled:
                ratio = (value_i / value_j) if higher_better \
                    else (value_j / value_i)
                row.append(round(ratio, 4))
            matrix.append(row)
        return {"metric": metric, "labels": labels, "matrix": matrix}

    # ------------------------------------------------------------------
    def table(self) -> dict:
        """All runs x headline metrics, JSON-table shaped."""
        columns = ["label"] + [header for header, _ in self.TABLE_METRICS]
        rows = []
        for record in self.records:
            if not record.get("ok"):
                rows.append([record["label"], "FAILED: "
                             + str(record.get("error", "?"))[:60]]
                            + [None] * (len(columns) - 2))
                continue
            row: List[object] = [record["label"]]
            for _header, metric in self.TABLE_METRICS:
                value = metric_value(record, metric)
                if metric == "energy" and value is not None:
                    value = round(value / 1000.0, 2)      # pJ -> nJ
                elif isinstance(value, float):
                    value = round(value, 4)
                row.append(value)
            rows.append(row)
        return {"columns": columns, "rows": rows}

    def to_json(self) -> dict:
        """The complete comparison payload (server / CLI ``--format json``)."""
        best = self.best()
        return {
            "name": self.name,
            "metric": self.metric,
            "runs": len(self.records),
            "failures": [{"label": r.get("label"),
                          "error": r.get("error"),
                          "kind": r.get("kind")} for r in self.failed],
            "table": self.table(),
            "ranking": self.ranking(),
            "best": None if best is None else best["label"],
            "pairwiseSpeedups": self.pairwise_speedups(),
        }

    def render_text(self) -> str:
        from repro.viz.sweep import render_sweep_report
        return render_sweep_report(self)
