"""Pluggable sweep execution backends.

One protocol, three ways to burn CPU on a design-space sweep:

* :class:`SerialBackend` — every job in-process, in order.  The baseline
  every other backend is pinned bit-identical against.
* :class:`ProcessBackend` — the :class:`repro.explore.pool.ProcessWorkerPool`
  (W local processes, per-job timeouts, crash isolation) behind the
  backend interface.
* :class:`RemoteBackend` — jobs fan out over HTTP to a fleet of
  repro-server sweep workers (the protocol-v4 ``/worker/execute``
  endpoint): a bounded in-flight window per worker, per-job
  timeout/retry with **at most one re-dispatch**, and worker health
  tracking that excludes a dead worker while the sweep completes on the
  rest.

(The server-owned, dynamically-membered fourth backend —
:class:`repro.fleet.scheduler.FleetBackend` — extends ``RemoteBackend``
from the fleet subsystem; its membership comes from a live
:class:`repro.fleet.registry.WorkerRegistry` instead of a fixed URL
list.)

The invariant that makes the plurality safe is inherited from the pool
and extended: every backend runs the *same* worker function
(:func:`repro.explore.runner.execute_payload`) on the *same* planned
payloads, and results carry no host-side timing — so serial, process and
remote sweeps produce **byte-identical JSONL records** for the same
spec.  Failure records follow the same discipline: a job that raises is
``kind="error"`` with the identical ``TypeName: message`` string on
every backend; a worker that dies mid-job is ``kind="crash"`` and a job
that overruns its budget is ``kind="timeout"``, with matching messages
on the process and remote backends.

Cooperative cancellation extends the same discipline: ``run`` accepts an
optional cancel token (any object with a ``cancelled() -> bool`` method,
canonically :class:`repro.fleet.cancel.CancelToken`); once it fires, no
further job is dispatched, undispatched jobs report ``kind="cancelled"``
with the identical message on every backend, and in-flight jobs are
stopped as fast as the backend can manage — the serial loop via the
simulation's stride check, the process pool by killing the worker, the
remote backends by propagating ``/worker/cancel`` so the worker's own
stride check halts the job within one interval.
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence

from repro.explore.pool import (CANCELLED_MESSAGE, CancelLike, JobResult,
                                ProcessWorkerPool)
from repro.obs.metrics import default_registry

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ProcessBackend",
    "RemoteBackend",
    "BACKEND_NAMES",
    "resolve_backend",
]

#: names accepted by the CLI / ``resolve_backend``.  The server-side
#: ``/explore/submit`` additionally accepts ``"fleet"`` — that backend is
#: built from the server's worker registry, never from CLI arguments.
BACKEND_NAMES = ("serial", "process", "remote")

#: spawn-safe dotted reference of the worker task (shared with the
#: engine; re-declared here so the backend layer has no engine import)
_RUNNER_TASK = "repro.explore.runner:execute_payload"

#: message used for a worker lost mid-job, byte-identical across the
#: process and remote backends so crash records compare equal
_CRASH_MESSAGE = "worker process died mid-job"

OnResult = Optional[Callable[[JobResult], None]]
OnDispatch = Optional[Callable[[int, object], None]]

# every backend reports finished jobs into the same two series, labelled
# by backend name — the substrate /metrics exposes for placement logic
_JOBS_TOTAL = default_registry().counter(
    "repro_sweep_jobs_total", "Sweep jobs finished, by backend and kind")
_JOB_WALL = default_registry().histogram(
    "repro_job_wall_seconds", "Per-job wall time, by backend")


def _observe_result(backend_name: str, result: JobResult) -> None:
    _JOBS_TOTAL.inc(backend=backend_name, kind=result.kind)
    if result.elapsed_s:
        _JOB_WALL.observe(result.elapsed_s, backend=backend_name)


def _job_tracer(payload: dict):
    """Build a :class:`repro.obs.trace.JobTracer` from a payload's
    ``trace`` context (``None`` when the sweep is untraced)."""
    context = payload.get("trace")
    if not context:
        return None
    from repro.obs.trace import JobTracer
    return JobTracer(context["traceId"], context["parentId"])


def _is_cancelled(cancel: CancelLike) -> bool:
    return cancel is not None and cancel.cancelled()


class ExecutionBackend:
    """How a planned job list turns into ordered :class:`JobResult`\\ s.

    ``run`` executes every payload and returns results ordered by
    submission index; ``on_result`` fires in completion order,
    ``on_dispatch`` fires with ``(index, worker)`` when a job is handed
    to a worker, and ``cancel`` (an object with ``cancelled()``) stops
    dispatch and drains the queue as ``kind="cancelled"`` results once
    fired.  ``workers`` is the backend's parallelism (0 = serial),
    ``describe()`` its JSON-shaped execution metadata (per-worker rows
    for the sweep report's execution summary).
    """

    name = "?"
    workers = 0

    def run(self, payloads: Sequence[dict], on_result: OnResult = None,
            on_dispatch: OnDispatch = None,
            cancel: CancelLike = None) -> List[JobResult]:
        raise NotImplementedError

    def describe(self) -> dict:
        return {"backend": self.name, "workers": self.workers}

    def close(self) -> None:
        """Release workers (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """The in-process, in-order baseline (the old ``workers=0`` loop)."""

    name = "serial"
    workers = 0

    def run(self, payloads: Sequence[dict], on_result: OnResult = None,
            on_dispatch: OnDispatch = None,
            cancel: CancelLike = None) -> List[JobResult]:
        from repro.explore.runner import JobCancelled, execute_payload
        results: List[JobResult] = []
        for index, payload in enumerate(payloads):
            if _is_cancelled(cancel):
                result = JobResult(index=index, kind="cancelled",
                                   error=CANCELLED_MESSAGE, worker=0)
            else:
                if on_dispatch is not None:
                    on_dispatch(index, 0)
                tracer = _job_tracer(payload)
                spans = (lambda: tracer.export()) if tracer \
                    else (lambda: None)
                t0 = time.monotonic()
                try:
                    value = execute_payload(payload, cancel=cancel,
                                            tracer=tracer)
                    result = JobResult(index=index, kind="ok", value=value,
                                       worker=0,
                                       elapsed_s=time.monotonic() - t0,
                                       spans=spans())
                except JobCancelled:
                    result = JobResult(index=index, kind="cancelled",
                                       error=CANCELLED_MESSAGE, worker=0,
                                       elapsed_s=time.monotonic() - t0,
                                       spans=spans())
                except Exception as exc:  # noqa: BLE001 - per-job isolation
                    result = JobResult(index=index, kind="error",
                                       error=f"{type(exc).__name__}: {exc}",
                                       worker=0,
                                       elapsed_s=time.monotonic() - t0,
                                       spans=spans())
            _observe_result(self.name, result)
            results.append(result)
            if on_result is not None:
                on_result(result)
        return results


class ProcessBackend(ExecutionBackend):
    """The local :class:`ProcessWorkerPool` behind the backend protocol."""

    name = "process"

    def __init__(self, workers: Optional[int] = None,
                 job_timeout_s: Optional[float] = None,
                 start_method: Optional[str] = None):
        self._pool = ProcessWorkerPool(_RUNNER_TASK, workers=workers,
                                       job_timeout_s=job_timeout_s,
                                       start_method=start_method)
        self.workers = self._pool.workers
        self.job_timeout_s = job_timeout_s

    def run(self, payloads: Sequence[dict], on_result: OnResult = None,
            on_dispatch: OnDispatch = None,
            cancel: CancelLike = None) -> List[JobResult]:
        def observed(result: JobResult) -> None:
            _observe_result(self.name, result)
            if on_result is not None:
                on_result(result)
        return self._pool.map(payloads, on_result=observed,
                              on_dispatch=on_dispatch, cancel=cancel)

    def close(self) -> None:
        self._pool.close()


class _RemoteWorker:
    """Parent-side health record of one sweep-worker server."""

    __slots__ = ("url", "host", "port", "dispatched", "ok", "failures",
                 "consecutive_failures", "excluded", "excluded_reason")

    def __init__(self, url: str):
        self.url = url
        self.host, self.port = _parse_worker_url(url)
        self.dispatched = 0
        self.ok = 0
        self.failures = 0
        self.consecutive_failures = 0
        self.excluded = False
        #: human-readable *why* (debuggability of mid-sweep exclusions;
        #: surfaced on describe() rows and /explore/status)
        self.excluded_reason: Optional[str] = None

    def exclude(self, reason: str) -> None:
        self.excluded = True
        if self.excluded_reason is None:
            self.excluded_reason = reason

    def readmit(self) -> None:
        """Clear exclusion state (a fleet worker re-joining mid-sweep)."""
        self.excluded = False
        self.excluded_reason = None
        self.consecutive_failures = 0

    def to_json(self) -> dict:
        row = {"url": self.url, "dispatched": self.dispatched,
               "ok": self.ok, "failures": self.failures,
               "excluded": self.excluded}
        if self.excluded_reason is not None:
            row["excludedReason"] = self.excluded_reason
        return row


def _parse_worker_url(url: str) -> tuple:
    """``host:port`` or ``http://host:port`` -> ``(host, port)``."""
    text = url.strip()
    if "//" in text:
        text = text.split("//", 1)[1]
    text = text.rstrip("/")
    host, _, port_text = text.partition(":")
    if not host or not port_text or not port_text.isdigit():
        raise ValueError(f"worker URL must look like 'host:port' "
                         f"(or 'http://host:port'), got {url!r}")
    return host, int(port_text)


class _PendingJob:
    __slots__ = ("index", "attempts", "excluded_url", "inline")

    def __init__(self, index: int):
        self.index = index
        self.attempts = 0          #: dispatches so far (0 or 1)
        self.excluded_url: Optional[str] = None
        #: dispatch the original inline payload instead of the artifact
        #: reference (set after a worker answers artifactUnavailable)
        self.inline = False


class RemoteBackend(ExecutionBackend):
    """HTTP fan-out over a fleet of repro-server sweep workers.

    Parameters
    ----------
    worker_urls:
        ``host:port`` (or ``http://host:port``) per worker server (a
        ``repro-sim worker`` / ``repro-server`` exposing the protocol-v4
        ``/worker/execute`` endpoint).
    job_timeout_s:
        Per-job wall-clock budget, enforced client-side as the HTTP
        request timeout.  On expiry the job reports ``kind="timeout"``
        with the same message the process pool produces; it is *not*
        re-dispatched (matching the pool's timeout semantics — a slow
        job would only time out twice).
    inflight_per_worker:
        In-flight window per worker: each slot is one connection thread,
        so at most ``workers x inflight_per_worker`` jobs are on the
        wire at once.
    fail_threshold:
        Consecutive transport failures after which a worker is excluded
        from the rest of the sweep.
    cancel_jobs_on_workers:
        When true, every dispatch carries a ``cancelId`` and a fired
        cancel token is propagated to the owning worker via
        ``POST /worker/cancel`` — the worker's stride check then stops
        the job within one interval.  The fleet backend turns this on;
        the plain CLI remote backend leaves it off by default (its jobs
        are bounded by ``job_timeout_s`` / the cycle budget either way).
    artifact_store:
        The frontend's :class:`repro.explore.artifacts.ArtifactCache`.
        Together with *artifact_origin* it turns on the artifact data
        plane (protocol v8): dispatch payloads replace inline program
        sources with ``{sourceKey, compileKey?, fetchFrom}`` references
        registered in this store, each worker gets the sweep's key-set
        warm-pushed (``POST /artifact/prefetch``) before its first job,
        and a worker that cannot resolve a reference gets the job
        re-sent inline.  ``None`` (or ``REPRO_ARTIFACT_FETCH=0``)
        keeps every dispatch inline.
    artifact_origin:
        ``host:port`` workers can fetch artifacts from (normally the
        frontend server's bound address).

    A job lost to a transport failure (connection refused/reset — the
    worker died) is re-dispatched **at most once**, preferably to a
    different worker; a second loss reports ``kind="crash"`` with the
    same message the process pool uses, so crash records compare equal
    across backends.  Job-level errors returned by the worker
    (``ok: false`` — the program is broken) are final on first answer:
    they are deterministic, so retrying could only waste a machine.
    """

    name = "remote"

    def __init__(self, worker_urls: Sequence[str],
                 job_timeout_s: Optional[float] = None,
                 inflight_per_worker: int = 2,
                 fail_threshold: int = 2,
                 client_factory: Optional[Callable] = None,
                 cancel_jobs_on_workers: bool = False,
                 artifact_store=None,
                 artifact_origin: Optional[str] = None):
        if not worker_urls:
            raise ValueError("remote backend needs at least one worker URL")
        if inflight_per_worker < 1:
            raise ValueError("inflight_per_worker must be >= 1")
        if fail_threshold < 1:
            raise ValueError("fail_threshold must be >= 1")
        if job_timeout_s is not None and job_timeout_s <= 0:
            raise ValueError("job_timeout_s must be positive")
        self._workers = [_RemoteWorker(url) for url in worker_urls]
        addresses = [(w.host, w.port) for w in self._workers]
        if len(set(addresses)) != len(addresses):
            raise ValueError(f"duplicate worker URLs: "
                             f"{[w.url for w in self._workers]}")
        self.workers = len(self._workers)
        self.job_timeout_s = job_timeout_s
        self.inflight_per_worker = inflight_per_worker
        self.fail_threshold = fail_threshold
        self.cancel_jobs_on_workers = cancel_jobs_on_workers
        self.artifact_store = artifact_store
        self.artifact_origin = artifact_origin
        self._client_factory = client_factory or self._default_client
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)

    #: socket timeout when no per-job budget is set: generous enough for
    #: any sane job, small enough that a hung (open but dead) worker
    #: socket cannot stall a sweep forever
    DEFAULT_SOCKET_TIMEOUT_S = 600.0

    #: supervision tick: how often the run loop checks thread liveness,
    #: the cancel token, and (fleet) registry membership
    SUPERVISE_TICK_S = 0.05

    def _default_client(self, worker: _RemoteWorker):
        from repro.server.client import SimClient
        timeout = self.job_timeout_s if self.job_timeout_s is not None \
            else self.DEFAULT_SOCKET_TIMEOUT_S
        return SimClient(worker.host, worker.port, timeout=timeout)

    # -- artifact data plane (protocol v8) -------------------------------
    def _fetch_from_for(self, ref: dict) -> List[str]:
        """Fetch-source URLs for one artifact reference: the frontend
        origin; the fleet subclass appends peer-worker hints for keys
        other workers already advertise."""
        return [self.artifact_origin]

    def _prepare_dataplane(self, payloads: Sequence[dict]):
        """``(wire payloads, prefetch refs)`` for this run.

        With the data plane on (store + origin configured, kill switch
        unset), each payload's inline program is registered in the
        artifact store and replaced by its content-keyed reference; the
        deduplicated reference list is what :meth:`_RemoteRun.serve`
        warm-pushes to each worker before its first job.  Otherwise the
        payloads go out unchanged."""
        from repro.explore.artifacts import fetch_enabled
        if self.artifact_store is None or not self.artifact_origin \
                or not fetch_enabled():
            return list(payloads), []
        wire: List[dict] = []
        refs: List[dict] = []
        seen: Dict[str, bool] = {}
        for payload in payloads:
            spec = payload.get("program")
            if not isinstance(spec, dict) or not (
                    isinstance(spec.get("c"), str)
                    or isinstance(spec.get("source"), str)):
                wire.append(payload)
                continue
            # same level resolution as the worker's build_simulation, so
            # the registered recipe compiles exactly what the job would
            level = int(payload.get("optimizeLevel",
                                    spec.get("optimizeLevel", 1)))
            ref = dict(self.artifact_store.register_program(spec, level))
            ref["fetchFrom"] = self._fetch_from_for(ref)
            program = {"artifactRef": ref}
            if "name" in spec:
                program["name"] = spec["name"]
            stripped = dict(payload)
            stripped["program"] = program
            wire.append(stripped)
            dedup = ref.get("compileKey") or ref["sourceKey"]
            if dedup not in seen:
                seen[dedup] = True
                refs.append(ref)
        return wire, refs

    # ------------------------------------------------------------------
    def run(self, payloads: Sequence[dict], on_result: OnResult = None,
            on_dispatch: OnDispatch = None,
            cancel: CancelLike = None) -> List[JobResult]:
        total = len(payloads)
        if total == 0:
            return []
        wire_payloads, prefetch_refs = self._prepare_dataplane(payloads)
        state = _RemoteRun(self, payloads, on_result, on_dispatch, cancel,
                           wire_payloads=wire_payloads,
                           prefetch_refs=prefetch_refs)
        for worker in self._workers:
            worker.readmit()
            self._start_worker(state, worker)
        self._supervise(state)
        # jobs no healthy worker could take (every worker excluded),
        # unless the run was cancelled — then they are cancellations
        tail_kind = "cancelled" if state.cancel_fired else "crash"
        tail_error = CANCELLED_MESSAGE if state.cancel_fired \
            else "no healthy remote workers remain"
        for index in range(total):
            if index not in state.results:
                state.finish(JobResult(index=index, kind=tail_kind,
                                       error=tail_error))
        return [state.results[index] for index in range(total)]

    def _start_worker(self, state: "_RemoteRun",
                      worker: _RemoteWorker) -> None:
        """Spawn the serve threads of one worker for this run."""
        for slot in range(self.inflight_per_worker):
            thread = threading.Thread(
                target=state.serve, args=(worker,), daemon=True,
                name=f"remote-sweep-{worker.url}-{slot}")
            state.threads.append(thread)
            thread.start()

    def _supervise(self, state: "_RemoteRun") -> None:
        """Babysit the serve threads until the run settles.

        Checks the cancel token (draining + propagating on the first
        fire) and gives subclasses a membership hook each tick; exits
        when every thread is done and :meth:`_keep_waiting` declines to
        wait for replacements.
        """
        while True:
            if _is_cancelled(state.cancel):
                state.handle_cancel()
            self._poll_membership(state)
            alive = False
            for thread in list(state.threads):
                thread.join(timeout=self.SUPERVISE_TICK_S)
                if thread.is_alive():
                    alive = True
                    break
            if alive:
                continue
            with self._lock:
                settled = len(state.results) == len(state.payloads)
            if settled or state.cancel_fired \
                    or not self._keep_waiting(state):
                return
            time.sleep(self.SUPERVISE_TICK_S)

    # -- subclass hooks -------------------------------------------------
    def _poll_membership(self, state: "_RemoteRun") -> None:
        """Fleet hook: reconcile workers with live registry membership."""

    def _keep_waiting(self, state: "_RemoteRun") -> bool:
        """Whether an idle run (no live threads, jobs unfinished) should
        keep waiting for workers to appear.  The static remote backend
        never waits — its fleet cannot grow."""
        return False

    def describe(self) -> dict:
        return {"backend": self.name, "workers": self.workers,
                "inflightPerWorker": self.inflight_per_worker,
                "remoteWorkers": [w.to_json() for w in self._workers]}


class _RemoteRun:
    """Shared state of one :meth:`RemoteBackend.run` invocation."""

    def __init__(self, backend: RemoteBackend, payloads: Sequence[dict],
                 on_result: OnResult, on_dispatch: OnDispatch,
                 cancel: CancelLike = None,
                 wire_payloads: Optional[Sequence[dict]] = None,
                 prefetch_refs: Optional[List[dict]] = None):
        self.backend = backend
        self.payloads = payloads
        #: what actually goes on the wire: reference payloads when the
        #: data plane is on, the originals otherwise (and per-job after
        #: an artifactUnavailable re-dispatch)
        self.wire_payloads = wire_payloads \
            if wire_payloads is not None else payloads
        self.prefetch_refs = prefetch_refs or []
        #: worker URLs already sent the prefetch announcement (once per
        #: worker per run, under the backend lock)
        self.prefetched: Dict[str, bool] = {}
        self.on_result = on_result
        self.on_dispatch = on_dispatch
        self.cancel = cancel
        self.cancel_fired = False         #: handle_cancel ran
        self.run_id = uuid.uuid4().hex[:12]
        self.pending: Deque[_PendingJob] = deque(
            _PendingJob(index) for index in range(len(payloads)))
        self.results: Dict[int, JobResult] = {}
        self.outstanding = 0
        #: job index -> worker currently executing it (cancel targets)
        self.inflight: Dict[int, _RemoteWorker] = {}
        #: every serve thread of this run (supervision; grows mid-run
        #: when a fleet worker joins — mutated only by the supervisor
        #: and the initial spawn, both on the run's calling thread)
        self.threads: List[threading.Thread] = []

    def cancel_id(self, index: int) -> str:
        return f"{self.run_id}:{index}"

    # -- locked helpers ------------------------------------------------
    def finish(self, result: JobResult) -> None:
        with self.backend._lock:
            self.results[result.index] = result
            self.backend._wake.notify_all()
        # every settle path funnels through here, so the counter sees
        # drained cancellations and crash tails too (labelled "fleet"
        # for the registry-backed subclass via backend.name)
        _observe_result(self.backend.name, result)
        if self.on_result is not None:
            self.on_result(result)

    def _take_locked(self, worker: _RemoteWorker) -> Optional[_PendingJob]:
        """Next pending job this worker may run (its own past failure
        excludes it — unless it is the only worker left standing)."""
        alone = all(w.excluded or w is worker
                    for w in self.backend._workers)
        for position, job in enumerate(self.pending):
            if job.excluded_url == worker.url and not alone:
                continue
            del self.pending[position]
            return job
        return None

    # -- cancellation --------------------------------------------------
    def handle_cancel(self) -> None:
        """First-fire cancel handling: drain undispatched jobs as
        ``cancelled`` results and propagate ``/worker/cancel`` for every
        in-flight job (when the backend dispatches cancel ids)."""
        with self.backend._lock:
            if self.cancel_fired:
                return
            self.cancel_fired = True
            drained = []
            while self.pending:
                job = self.pending.popleft()
                if job.index not in self.results:
                    drained.append(job.index)
            inflight = dict(self.inflight)
            self.backend._wake.notify_all()
        for index in drained:
            self.finish(JobResult(index=index, kind="cancelled",
                                  error=CANCELLED_MESSAGE))
        if self.backend.cancel_jobs_on_workers:
            reason = getattr(self.cancel, "reason", None) or "cancelled"
            for index, worker in inflight.items():
                self._send_worker_cancel(worker, self.cancel_id(index),
                                         reason)

    def _send_worker_cancel(self, worker: _RemoteWorker, cancel_id: str,
                            reason: str) -> None:
        """Best-effort ``POST /worker/cancel`` (the job is also bounded
        by its timeout/cycle budget, so a lost cancel only wastes CPU)."""
        from repro.server.client import SimClient
        client = SimClient(worker.host, worker.port, timeout=5.0)
        try:
            client.worker_cancel(cancel_id, reason=reason)
        except Exception:  # noqa: BLE001 - worker gone: nothing to stop
            pass
        finally:
            client.close()

    # -- worker thread -------------------------------------------------
    def serve(self, worker: _RemoteWorker) -> None:
        backend = self.backend
        client = backend._client_factory(worker)
        try:
            self._announce_prefetch(client, worker)
            while True:
                with backend._lock:
                    job = None
                    while job is None:
                        if worker.excluded:
                            return
                        if self.cancel_fired:
                            return
                        if _is_cancelled(self.cancel):
                            # fired but not yet drained by the
                            # supervisor: stop taking work immediately
                            return
                        if len(self.results) == len(self.payloads):
                            return
                        job = self._take_locked(worker)
                        if job is None:
                            if self.outstanding == 0 and not self.pending:
                                return
                            # a retry may be requeued for us: wait, bounded
                            backend._wake.wait(0.05)
                    job.attempts += 1
                    self.outstanding += 1
                    worker.dispatched += 1
                    self.inflight[job.index] = worker
                if self.on_dispatch is not None:
                    self.on_dispatch(job.index, worker.url)
                self._execute(client, worker, job)
        finally:
            client.close()

    def _announce_prefetch(self, client, worker: _RemoteWorker) -> None:
        """Warm-push the sweep's artifact key-set, once per worker per
        run, before its first job — fetches then overlap the first jobs'
        simulation time.  Best-effort: a worker that cannot prefetch
        (old protocol, fetch disabled) just fetches lazily on miss."""
        if not self.prefetch_refs:
            return
        with self.backend._lock:
            if worker.url in self.prefetched:
                return
            self.prefetched[worker.url] = True
        try:
            client.artifact_prefetch(self.prefetch_refs)
        except Exception:  # noqa: BLE001 - data-plane errors never
            pass           # fail jobs; the per-job miss path still works

    def _execute(self, client, worker: _RemoteWorker,
                 job: _PendingJob) -> None:
        backend = self.backend
        started = time.monotonic()
        cancel_id = self.cancel_id(job.index) \
            if backend.cancel_jobs_on_workers else None
        body = self.payloads[job.index] if job.inline \
            else self.wire_payloads[job.index]
        try:
            reply = client.worker_execute(body, cancel_id=cancel_id)
        except TimeoutError:
            if backend.job_timeout_s is None:
                # no job budget configured: a socket timeout is just a
                # slow/dead transport — retry like any other failure
                self._retry_or_crash(worker, job, started)
                return
            # enforced client-side; matches the process pool's message so
            # timeout records are identical across backends.  No retry.
            self._settle(worker, job, JobResult(
                index=job.index, kind="timeout",
                error=f"job exceeded {backend.job_timeout_s:g}s timeout",
                worker=worker.url, elapsed_s=time.monotonic() - started),
                transport_failure=False)
            return
        except Exception as exc:  # noqa: BLE001 - refused/reset/rejected
            from repro.server.protocol import ApiError
            if isinstance(exc, ApiError):
                # an HTTP error reply is deterministic (bad payload, not
                # a bad worker): final on first answer, like ok=False
                self._settle(worker, job, JobResult(
                    index=job.index, kind="error",
                    error=f"worker rejected job: {exc}", worker=worker.url,
                    elapsed_s=time.monotonic() - started),
                    transport_failure=False)
                return
            self._retry_or_crash(worker, job, started)
            return
        elapsed = time.monotonic() - started
        spans = reply.get("spans")   # worker-side trace spans (protocol v7)
        if reply.get("ok"):
            result = JobResult(index=job.index, kind="ok",
                               value=reply.get("value"), worker=worker.url,
                               elapsed_s=elapsed, spans=spans)
        else:
            kind = str(reply.get("kind", "error"))
            if kind == "artifactUnavailable" and not job.inline:
                # the worker could not resolve the job's artifact
                # reference: degrade, never fail — re-dispatch with the
                # program inline (this reply is not a job outcome)
                self._redispatch_inline(worker, job)
                return
            result = JobResult(index=job.index, kind=kind,
                               error=str(reply.get("error", "?")),
                               worker=worker.url, elapsed_s=elapsed,
                               spans=spans)
        self._settle(worker, job, result, transport_failure=False)

    def _redispatch_inline(self, worker: _RemoteWorker,
                           job: _PendingJob) -> None:
        """Re-queue a job whose artifact reference a worker could not
        resolve, marked for inline dispatch.  The attempt is refunded:
        the reference dispatch never ran the job, so transport-crash
        accounting must look exactly as if the data plane were off."""
        with self.backend._lock:
            self.outstanding -= 1
            self.inflight.pop(job.index, None)
            worker.consecutive_failures = 0
            job.inline = True
            job.attempts -= 1
            self.pending.append(job)
            self.backend._wake.notify_all()

    def _settle(self, worker: _RemoteWorker, job: _PendingJob,
                result: JobResult, transport_failure: bool) -> None:
        with self.backend._lock:
            self.outstanding -= 1
            self.inflight.pop(job.index, None)
            if transport_failure:
                self._note_failure_locked(worker)
            else:
                worker.consecutive_failures = 0
                if result.ok:
                    worker.ok += 1
        self.finish(result)

    def _retry_or_crash(self, worker: _RemoteWorker, job: _PendingJob,
                        started: float) -> None:
        """Transport failure mid-job: re-dispatch once, then give up."""
        with self.backend._lock:
            self.outstanding -= 1
            self.inflight.pop(job.index, None)
            self._note_failure_locked(worker)
            if job.attempts <= 1 and not self.cancel_fired:
                job.excluded_url = worker.url
                self.pending.append(job)
                self.backend._wake.notify_all()
                return
            cancelled = self.cancel_fired
        if cancelled:
            self.finish(JobResult(index=job.index, kind="cancelled",
                                  error=CANCELLED_MESSAGE, worker=worker.url,
                                  elapsed_s=time.monotonic() - started))
            return
        self.finish(JobResult(index=job.index, kind="crash",
                              error=_CRASH_MESSAGE, worker=worker.url,
                              elapsed_s=time.monotonic() - started))

    def _note_failure_locked(self, worker: _RemoteWorker) -> None:
        worker.failures += 1
        worker.consecutive_failures += 1
        if worker.consecutive_failures >= self.backend.fail_threshold:
            worker.exclude(f"{worker.consecutive_failures} consecutive "
                           f"transport failures")
            self.backend._wake.notify_all()


def resolve_backend(name: Optional[str], workers: Optional[int] = None,
                    job_timeout_s: Optional[float] = None,
                    start_method: Optional[str] = None,
                    worker_urls: Sequence[str] = ()) -> ExecutionBackend:
    """Build a backend from CLI-shaped arguments.

    ``name=None`` keeps the historical inference: ``workers == 0`` is
    serial, anything else the process pool.  ``"fleet"`` is deliberately
    absent: the fleet backend belongs to a server's worker registry
    (submit the sweep with ``--host`` / ``"backend": "fleet"`` instead).
    """
    if name is None:
        name = "serial" if workers == 0 else "process"
    if name == "serial":
        return SerialBackend()
    if name == "process":
        return ProcessBackend(workers=workers or None,
                              job_timeout_s=job_timeout_s,
                              start_method=start_method)
    if name == "remote":
        return RemoteBackend(worker_urls, job_timeout_s=job_timeout_s)
    raise ValueError(f"unknown backend {name!r} "
                     f"(one of {list(BACKEND_NAMES)})")
