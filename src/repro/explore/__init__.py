"""repro.explore — the parallel experiment engine.

The paper's evaluation is a design-space study (ablations over issue
width, cache geometry, predictor type, optimization level); this package
turns that pattern into a first-class batch subsystem:

* :mod:`repro.explore.spec` — declarative, JSON-loadable sweep specs
  (grid or seeded random sampling over programs x configuration axes);
* :mod:`repro.explore.plan` — deterministic expansion into self-contained
  jobs;
* :mod:`repro.explore.pool` — the worker-pool layer: a multiprocessing
  pool with per-job timeouts and crash isolation for sweeps, and a keyed
  thread pool the simulation server reuses for per-session executors;
* :mod:`repro.explore.backend` — pluggable execution backends: serial
  loop, local process pool, and HTTP fan-out over a remote worker fleet
  (``repro-sim worker`` servers) — all record-for-record bit-identical;
* :mod:`repro.explore.runner` — worker-side job execution (pure function
  of the payload: every backend runs this same function, which is what
  makes their records bit-identical);
* :mod:`repro.explore.artifacts` — content-addressed per-job setup cache
  (C-compile and assembly artifacts), shared on-disk across the process
  pool's workers and held in-memory per remote worker server;
* :mod:`repro.explore.store` — JSONL result store;
* :mod:`repro.explore.report` — ranking, metric tables, pairwise
  speedups (text rendering in :mod:`repro.viz.sweep`);
* :mod:`repro.explore.engine` — ``run_sweep``, the one entry point;
* :mod:`repro.explore.service` — the server-side sweep queue behind the
  ``/explore/*`` endpoints;
* :mod:`repro.explore.warehouse` — the cross-run result warehouse behind
  ``/warehouse/*``: longitudinal queries, Pareto frontiers, and the
  baseline regression sentinel over every ingested sweep.

Quick tour::

    from repro.explore import SweepSpec, run_sweep

    spec = SweepSpec.from_json({
        "name": "width-vs-cache",
        "programs": [{"name": "kernel", "source": KERNEL_ASM}],
        "axes": [
            {"name": "width", "values": [
                {"config.buffers.fetchWidth": 1,
                 "config.buffers.commitWidth": 1},
                {"config.buffers.fetchWidth": 4,
                 "config.buffers.commitWidth": 4}],
             "labels": ["w1", "w4"]},
            {"name": "lines", "path": "config.cache.lineCount",
             "values": [8, 32]},
        ],
    })
    run = run_sweep(spec, workers=4)        # workers=0: the serial loop
    print(run.report(metric="cycles").render_text())
"""

from repro.explore.artifacts import ArtifactCache, default_cache
from repro.explore.backend import (BACKEND_NAMES, ExecutionBackend,
                                   ProcessBackend, RemoteBackend,
                                   SerialBackend, resolve_backend)
from repro.explore.engine import RUNNER_TASK, SweepRun, run_sweep
from repro.explore.plan import Job, plan_jobs
from repro.explore.pool import (Future, JobResult, KeyedThreadPool,
                                ProcessWorkerPool, default_worker_count)
from repro.explore.report import METRICS, MetricError, SweepReport
from repro.explore.runner import JobError, execute_payload
from repro.explore.service import ExploreManager
from repro.explore.spec import (Axis, ProgramSpec, SweepPoint, SweepSpec,
                                SweepSpecError)
from repro.explore.store import ResultStore, load_records
from repro.explore.warehouse import (BaselineMissing, ResultWarehouse,
                                     WarehouseError)

__all__ = [
    "ArtifactCache",
    "default_cache",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessBackend",
    "RemoteBackend",
    "BACKEND_NAMES",
    "resolve_backend",
    "SweepSpec",
    "SweepSpecError",
    "ProgramSpec",
    "Axis",
    "SweepPoint",
    "Job",
    "plan_jobs",
    "ProcessWorkerPool",
    "KeyedThreadPool",
    "Future",
    "JobResult",
    "default_worker_count",
    "execute_payload",
    "JobError",
    "ResultStore",
    "load_records",
    "SweepReport",
    "MetricError",
    "METRICS",
    "SweepRun",
    "run_sweep",
    "RUNNER_TASK",
    "ExploreManager",
    "ResultWarehouse",
    "WarehouseError",
    "BaselineMissing",
]
