"""Server-side sweep orchestration (the ``/explore/*`` endpoints' engine).

Submitted sweeps queue up and execute **one at a time** on a background
thread that drives the process pool — one sweep already saturates its
workers, so running sweeps concurrently would only thrash the machine and
blur every wall-clock number.  Status is cheap to poll; results are kept
for a bounded number of finished sweeps (oldest evicted first).
"""

from __future__ import annotations

import math
import multiprocessing
import threading
import time
import uuid
from collections import OrderedDict
from typing import List, Optional

from repro.explore.engine import run_sweep
from repro.explore.plan import plan_jobs
from repro.explore.pool import default_worker_count
from repro.explore.report import METRICS, MetricError, SweepReport
from repro.explore.spec import SweepSpec, SweepSpecError

__all__ = ["ExploreManager", "SweepState", "nearest_rank"]


def nearest_rank(ordered: List[float], quantile: float) -> float:
    """Nearest-rank percentile over an ascending-sorted list.

    The textbook rule — ``ceil(q * n)``-th smallest — so p50 of
    ``[1, 2, 3, 4, 5]`` is the 3rd element (the median), where a
    ``round()``-based index would land on the 2nd via banker's rounding.
    Shared by the status payload and the CLI execution summary, so the
    two never disagree about the same sweep's distribution."""
    index = max(0, math.ceil(quantile * len(ordered)) - 1)
    return ordered[index]


class SweepState:
    """Lifecycle record of one submitted sweep."""

    __slots__ = ("id", "spec", "jobs", "workers", "job_timeout_s", "state",
                 "total", "completed", "failed", "records", "error",
                 "submitted", "started", "finished", "elapsed_s",
                 "backend", "running", "dispatched", "elapsed_jobs")

    def __init__(self, spec: SweepSpec, jobs: list, workers: int,
                 job_timeout_s: Optional[float] = None):
        self.id = uuid.uuid4().hex[:16]
        self.spec = spec
        self.jobs = jobs                  #: planned once, at submit time
        self.workers = workers
        self.job_timeout_s = job_timeout_s
        self.state = "queued"             #: queued/running/done/failed
        self.total = len(jobs)
        self.completed = 0
        self.failed = 0
        self.records: List[dict] = []
        self.error: Optional[str] = None
        self.submitted = time.monotonic()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.elapsed_s = 0.0
        self.backend = "serial" if workers == 0 else "process"
        #: job indices currently on a worker (dispatched, not finished)
        self.running: set = set()
        #: every job index ever handed to a worker
        self.dispatched: set = set()
        #: host-side wall time of each finished job, completion order
        self.elapsed_jobs: List[float] = []

    def status_json(self) -> dict:
        """Progress payload — enriched so a long sweep is observable
        without pulling the full ``/explore/result``: the per-job
        wall-time distribution (min/p50/p90/max, :func:`nearest_rank`)
        plus which job ids are in flight and which still queue."""
        data = {
            "sweepId": self.id,
            "name": self.spec.name,
            "state": self.state,
            "jobs": self.total,
            "completed": self.completed,
            "failed": self.failed,
            "backend": self.backend,
            "workers": self.workers,
            "runningJobs": sorted(self.running),
            "queuedJobs": [index for index in range(self.total)
                           if index not in self.dispatched],
        }
        if self.elapsed_jobs:
            ordered = sorted(self.elapsed_jobs)
            data["jobWallTime"] = {
                "minS": round(ordered[0], 4),
                "p50S": round(nearest_rank(ordered, 0.5), 4),
                "p90S": round(nearest_rank(ordered, 0.9), 4),
                "maxS": round(ordered[-1], 4),
            }
        if self.state in ("done", "failed"):
            data["elapsedS"] = round(self.elapsed_s, 4)
        if self.error is not None:
            data["error"] = self.error
        return data


class ExploreManager:
    """Bounded queue + registry of design-space sweeps."""

    def __init__(self, workers: Optional[int] = None,
                 job_timeout_s: Optional[float] = 300.0,
                 max_pending: int = 8, max_finished: int = 32,
                 max_jobs: int = 4096):
        self.workers = workers if workers is not None \
            else min(4, default_worker_count())
        self.job_timeout_s = job_timeout_s
        self.max_pending = max_pending
        self.max_finished = max_finished
        #: largest sweep a single submit may expand to — checked *before*
        #: planning, so a pathological grid (64^5 points) cannot OOM the
        #: submitting thread
        self.max_jobs = max_jobs
        #: hard cap on client-requested worker processes per sweep
        self.max_workers = max(4, default_worker_count())
        #: fork-free start method: the manager forks workers from inside a
        #: threaded server process, where plain fork can deadlock the
        #: child mid-import (the dotted RUNNER_TASK makes any method work)
        methods = multiprocessing.get_all_start_methods()
        self.start_method = "forkserver" if "forkserver" in methods \
            else "spawn"
        self._lock = threading.Lock()
        self._sweeps: "OrderedDict[str, SweepState]" = OrderedDict()
        self._queue: List[SweepState] = []
        self._wake = threading.Condition(self._lock)
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    # ------------------------------------------------------------------
    def submit(self, spec_data: dict, workers: Optional[int] = None,
               metric: str = "cycles",
               job_timeout_s: Optional[float] = None) -> SweepState:
        """Validate, plan, and enqueue a sweep; returns its state handle.

        Planning happens exactly once, here: the job list is carried on
        the state and reused by the runner thread, so a bad spec fails the
        submit (not the sweep) and a big grid is never expanded twice.
        Raises :class:`repro.explore.spec.SweepSpecError` on a bad spec,
        :class:`MetricError` on a bad metric and :class:`OverflowError`
        when the queue is full — the protocol layer maps each to an HTTP
        error without this module knowing about transports.
        """
        if metric not in METRICS:
            raise MetricError(f"unknown ranking metric {metric!r} "
                              f"(one of {sorted(METRICS)})")
        spec = SweepSpec.from_json(spec_data)
        planned = spec.samples if spec.sampling == "random" \
            else spec.grid_size()
        if planned > self.max_jobs:
            raise SweepSpecError(
                f"sweep expands to {planned} jobs, over this server's "
                f"limit of {self.max_jobs}; shrink the grid or use "
                f"random sampling")
        jobs = plan_jobs(spec)            # deterministic; also validates
        sweep_workers = self.workers if workers is None \
            else min(max(0, int(workers)), self.max_workers)
        state = SweepState(spec, jobs, sweep_workers,
                           job_timeout_s=job_timeout_s
                           if job_timeout_s is not None
                           else self.job_timeout_s)
        with self._lock:
            if self._closed:
                raise RuntimeError("explore manager is closed")
            pending = sum(1 for s in self._sweeps.values()
                          if s.state in ("queued", "running"))
            if pending >= self.max_pending:
                raise OverflowError(
                    f"too many pending sweeps ({pending}); retry later")
            self._sweeps[state.id] = state
            self._queue.append(state)
            self._evict_finished_locked()
            if self._thread is None or not self._thread.is_alive():
                self._thread = threading.Thread(
                    target=self._run_loop, daemon=True, name="explore-runner")
                self._thread.start()
            self._wake.notify()
        return state

    def get(self, sweep_id: str) -> Optional[SweepState]:
        with self._lock:
            return self._sweeps.get(sweep_id)

    def result_json(self, state: SweepState, metric: str = "cycles") -> dict:
        """Records + comparison report of a finished sweep."""
        report = SweepReport(state.records, name=state.spec.name,
                             metric=metric)
        data = state.status_json()
        data["records"] = list(state.records)
        data["report"] = report.to_json()
        data["reportText"] = report.render_text()
        return data

    # ------------------------------------------------------------------
    def _evict_finished_locked(self) -> None:
        finished = [sid for sid, s in self._sweeps.items()
                    if s.state in ("done", "failed")]
        while len(finished) > self.max_finished:
            del self._sweeps[finished.pop(0)]

    def _run_loop(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._closed:
                    self._wake.wait()
                if self._closed and not self._queue:
                    return
                state = self._queue.pop(0)
                state.state = "running"
                state.started = time.monotonic()

            def on_dispatch(index: int, _worker: object,
                            state: SweepState = state) -> None:
                with self._lock:
                    state.dispatched.add(index)
                    state.running.add(index)

            def on_result(result, state: SweepState = state) -> None:
                with self._lock:
                    state.running.discard(result.index)
                    state.completed += 1
                    if not result.ok:
                        state.failed += 1
                    state.elapsed_jobs.append(result.elapsed_s)

            try:
                run = run_sweep(state.spec, workers=state.workers,
                                job_timeout_s=state.job_timeout_s,
                                jobs=state.jobs,
                                on_dispatch=on_dispatch,
                                on_result=on_result,
                                start_method=self.start_method)
                with self._lock:
                    state.records = run.records
                    state.completed = len(run.records)
                    state.failed = len(run.failures)
                    state.elapsed_s = run.elapsed_s
                    state.running.clear()
                    state.state = "done"
                    state.finished = time.monotonic()
            except Exception as exc:  # noqa: BLE001 - keep serving
                with self._lock:
                    state.error = f"{type(exc).__name__}: {exc}"
                    state.running.clear()
                    state.state = "failed"
                    state.finished = time.monotonic()
                    state.elapsed_s = state.finished - (state.started
                                                        or state.finished)

    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._wake.notify_all()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=10.0)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sweeps)
