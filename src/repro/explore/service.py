"""Server-side sweep orchestration (the ``/explore/*`` endpoints' engine).

Submitted sweeps queue up and execute **one at a time** on a background
thread that drives the execution backend — one sweep already saturates
its workers, so running sweeps concurrently would only thrash the
machine and blur every wall-clock number.  Status is cheap to poll;
results are kept for a bounded number of finished sweeps (oldest evicted
first).

Three fleet-era capabilities live here:

* **backend selection** — a submit may name its execution backend:
  ``"serial"``, ``"process"`` (the historical ``workers`` inference
  picks between these two), or ``"fleet"`` — the server-owned
  :class:`repro.fleet.scheduler.FleetBackend` built from the live
  worker registry via the attached :class:`FleetScheduler`.
* **cancellation** — every sweep carries a
  :class:`repro.fleet.cancel.CancelToken`; :meth:`ExploreManager.cancel`
  dequeues a queued sweep outright and fires the token of a running one
  (the backend drains, in-flight fleet jobs get ``/worker/cancel``).
* **progress events** — every lifecycle transition and per-job
  dispatch/finish appends to the sweep's ordered event log;
  :meth:`ExploreManager.stream` follows it live (the chunked
  ``GET /explore/stream`` generator) and ``/explore/events`` serves it
  in one poll.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
import uuid
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

from repro.explore.engine import run_sweep
from repro.explore.plan import plan_jobs
from repro.explore.pool import default_worker_count
from repro.explore.report import METRICS, MetricError, SweepReport
from repro.explore.spec import SweepSpec, SweepSpecError
from repro.fleet.cancel import CancelToken
# nearest_rank is re-exported: the one percentile rule lives with the
# metrics registry now, but `from repro.explore.service import
# nearest_rank` keeps working for every historical caller
from repro.obs.metrics import default_registry, nearest_rank
from repro.obs.trace import make_span, rebase

__all__ = ["ExploreManager", "SweepState", "nearest_rank",
           "SERVER_BACKENDS"]

_SWEEPS_SUBMITTED = default_registry().counter(
    "repro_sweeps_submitted_total", "Sweeps accepted by /explore/submit")
_SWEEPS_FINISHED = default_registry().counter(
    "repro_sweeps_finished_total", "Sweeps reaching a terminal state")

#: backend names ``/explore/submit`` accepts (``None`` keeps the
#: historical inference: ``workers == 0`` serial, otherwise process)
SERVER_BACKENDS = ("serial", "process", "fleet")

#: sweep states that accept no further work
TERMINAL_STATES = ("done", "failed", "cancelled")


class SweepState:
    """Lifecycle record of one submitted sweep."""

    __slots__ = ("id", "spec", "jobs", "workers", "job_timeout_s", "state",
                 "total", "completed", "failed", "records", "error",
                 "submitted", "started", "finished", "elapsed_s",
                 "backend", "running", "dispatched", "elapsed_jobs",
                 "cancel", "events", "execution", "live_backend",
                 "trace_enabled", "spans", "job_starts")

    def __init__(self, spec: SweepSpec, jobs: list, workers: int,
                 job_timeout_s: Optional[float] = None,
                 backend: Optional[str] = None):
        self.id = uuid.uuid4().hex[:16]
        self.spec = spec
        self.jobs = jobs                  #: planned once, at submit time
        self.workers = workers
        self.job_timeout_s = job_timeout_s
        self.state = "queued"             #: queued/running + TERMINAL_STATES
        self.total = len(jobs)
        self.completed = 0
        self.failed = 0
        self.records: List[dict] = []
        self.error: Optional[str] = None
        self.submitted = time.monotonic()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.elapsed_s = 0.0
        self.backend = backend if backend is not None \
            else ("serial" if workers == 0 else "process")
        #: job indices currently on a worker (dispatched, not finished)
        self.running: set = set()
        #: every job index ever handed to a worker
        self.dispatched: set = set()
        #: host-side wall time of each finished job, completion order
        self.elapsed_jobs: List[float] = []
        #: fired by /explore/cancel; checked by the executing backend
        self.cancel = CancelToken()
        #: ordered progress events (seq-stamped; see ExploreManager)
        self.events: List[dict] = []
        #: backend.describe() — live while running (fleet), final after
        self.execution: Optional[dict] = None
        self.live_backend = None
        #: span tree bookkeeping (GET /trace/<sweepId>); job/worker
        #: spans accumulate here, the root and queueWait spans are
        #: synthesized at read time so a mid-run trace is still a tree
        self.trace_enabled = True
        self.spans: List[dict] = []
        #: job index -> dispatch offset on the sweep timeline (seconds
        #: since submit) — worker spans are re-based by this
        self.job_starts: Dict[int, float] = {}

    def wall_time_json(self) -> Optional[dict]:
        if not self.elapsed_jobs:
            return None
        ordered = sorted(self.elapsed_jobs)
        return {
            "minS": round(ordered[0], 4),
            "p50S": round(nearest_rank(ordered, 0.5), 4),
            "p90S": round(nearest_rank(ordered, 0.9), 4),
            "maxS": round(ordered[-1], 4),
        }

    def status_json(self) -> dict:
        """Progress payload — enriched so a long sweep is observable
        without pulling the full ``/explore/result``: the per-job
        wall-time distribution (min/p50/p90/max, :func:`nearest_rank`),
        which job ids are in flight and which still queue, plus the
        backend's per-worker execution rows (health, exclusion reasons)
        once it is running."""
        data = {
            "sweepId": self.id,
            "name": self.spec.name,
            "state": self.state,
            "jobs": self.total,
            "completed": self.completed,
            "failed": self.failed,
            "backend": self.backend,
            "workers": self.workers,
            "runningJobs": sorted(self.running),
            "queuedJobs": [index for index in range(self.total)
                           if index not in self.dispatched],
            "events": len(self.events),
        }
        wall = self.wall_time_json()
        if wall is not None:
            data["jobWallTime"] = wall
        backend_obj = self.live_backend
        if backend_obj is not None:
            data["execution"] = backend_obj.describe()
        elif self.execution is not None:
            data["execution"] = self.execution
        if self.state in ("done", "failed", "cancelled"):
            data["elapsedS"] = round(self.elapsed_s, 4)
        if self.cancel.cancelled():
            data["cancelRequested"] = True
        if self.error is not None:
            data["error"] = self.error
        return data

    def trace_json(self) -> dict:
        """The sweep's span tree (``GET /trace/<sweepId>``).

        The root ``sweep`` span and its ``queueWait`` child are built
        from the lifecycle timestamps at read time, so the tree is
        connected whether the sweep is queued, mid-run, or finished;
        job and worker spans are whatever has accumulated so far."""
        now = time.monotonic()
        end = (self.finished if self.finished is not None else now) \
            - self.submitted
        queue_end = (self.started if self.started is not None
                     else (self.finished if self.finished is not None
                           else now)) - self.submitted
        spans = [
            make_span(self.id, self.id, None, "sweep", 0.0, end,
                      {"name": self.spec.name, "state": self.state,
                       "backend": self.backend, "jobs": self.total}),
            make_span(self.id, f"{self.id}.queue", self.id, "queueWait",
                      0.0, queue_end, {}),
        ]
        spans.extend(self.spans)
        return {"sweepId": self.id, "state": self.state,
                "traceEnabled": self.trace_enabled, "spans": spans}


class ExploreManager:
    """Bounded queue + registry of design-space sweeps.

    ``scheduler`` (a :class:`repro.fleet.scheduler.FleetScheduler`) is
    attached by the server's :class:`repro.server.protocol.Api`; without
    one, ``"backend": "fleet"`` submissions are rejected.
    """

    def __init__(self, workers: Optional[int] = None,
                 job_timeout_s: Optional[float] = 300.0,
                 max_pending: int = 8, max_finished: int = 32,
                 max_jobs: int = 4096, scheduler=None):
        self.workers = workers if workers is not None \
            else min(4, default_worker_count())
        self.job_timeout_s = job_timeout_s
        self.max_pending = max_pending
        self.max_finished = max_finished
        #: largest sweep a single submit may expand to — checked *before*
        #: planning, so a pathological grid (64^5 points) cannot OOM the
        #: submitting thread
        self.max_jobs = max_jobs
        #: hard cap on client-requested worker processes per sweep
        self.max_workers = max(4, default_worker_count())
        #: fork-free start method: the manager forks workers from inside a
        #: threaded server process, where plain fork can deadlock the
        #: child mid-import (the dotted RUNNER_TASK makes any method work)
        methods = multiprocessing.get_all_start_methods()
        self.start_method = "forkserver" if "forkserver" in methods \
            else "spawn"
        self.scheduler = scheduler
        #: attached cross-run result warehouse
        #: (:class:`repro.explore.warehouse.ResultWarehouse`); when set,
        #: the runner thread ingests every sweep that finishes ``done``
        self.warehouse = None
        self._lock = threading.Lock()
        self._sweeps: "OrderedDict[str, SweepState]" = OrderedDict()
        self._queue: List[SweepState] = []
        self._wake = threading.Condition(self._lock)
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    # -- events ---------------------------------------------------------
    def _emit_locked(self, state: SweepState, event_kind: str,
                     **data) -> None:
        event = {"seq": len(state.events), "event": event_kind,
                 "sweepId": state.id,
                 "tS": round(time.monotonic() - state.submitted, 4)}
        event.update(data)
        state.events.append(event)
        self._wake.notify_all()

    def _emit(self, state: SweepState, event_kind: str, **data) -> None:
        with self._lock:
            self._emit_locked(state, event_kind, **data)

    # ------------------------------------------------------------------
    def submit(self, spec_data: dict, workers: Optional[int] = None,
               metric: str = "cycles",
               job_timeout_s: Optional[float] = None,
               backend: Optional[str] = None,
               trace: bool = True) -> SweepState:
        """Validate, plan, and enqueue a sweep; returns its state handle.

        Planning happens exactly once, here: the job list is carried on
        the state and reused by the runner thread, so a bad spec fails the
        submit (not the sweep) and a big grid is never expanded twice.
        Raises :class:`repro.explore.spec.SweepSpecError` on a bad spec,
        :class:`MetricError` on a bad metric,
        :class:`repro.fleet.scheduler.FleetError` on a fleet submit with
        no registered workers, and :class:`OverflowError` when the queue
        is full — the protocol layer maps each to an HTTP error without
        this module knowing about transports.
        """
        if metric not in METRICS:
            raise MetricError(f"unknown ranking metric {metric!r} "
                              f"(one of {sorted(METRICS)})")
        if backend is not None and backend not in SERVER_BACKENDS:
            raise SweepSpecError(
                f"unknown backend {backend!r} "
                f"(one of {list(SERVER_BACKENDS)})")
        if backend == "fleet":
            from repro.fleet.scheduler import FleetError
            if self.scheduler is None:
                raise FleetError("this server has no fleet scheduler")
            if self.scheduler.available() < 1:
                raise FleetError(
                    "no registered fleet workers (start workers with "
                    "'repro-sim worker --register HOST:PORT' and wait "
                    "for their first heartbeat)")
        spec = SweepSpec.from_json(spec_data)
        planned = spec.samples if spec.sampling == "random" \
            else spec.grid_size()
        if planned > self.max_jobs:
            raise SweepSpecError(
                f"sweep expands to {planned} jobs, over this server's "
                f"limit of {self.max_jobs}; shrink the grid or use "
                f"random sampling")
        jobs = plan_jobs(spec)            # deterministic; also validates
        sweep_workers = self.workers if workers is None \
            else min(max(0, int(workers)), self.max_workers)
        if backend == "serial":
            sweep_workers = 0
        elif backend == "process":
            # an explicit process request must not fall through the
            # historical workers==0 inference into the serial loop
            sweep_workers = max(1, sweep_workers)
        state = SweepState(spec, jobs, sweep_workers,
                           job_timeout_s=job_timeout_s
                           if job_timeout_s is not None
                           else self.job_timeout_s,
                           backend=backend)
        state.trace_enabled = bool(trace)
        if state.trace_enabled:
            # trace context rides in the job payload (the one channel
            # that reaches every backend, local or HTTP); records never
            # echo the payload, so the byte-identity pin is untouched
            for index, job in enumerate(jobs):
                job.payload["trace"] = {
                    "traceId": state.id,
                    "parentId": f"{state.id}.j{index}",
                }
        _SWEEPS_SUBMITTED.inc(backend=state.backend)
        with self._lock:
            if self._closed:
                raise RuntimeError("explore manager is closed")
            pending = sum(1 for s in self._sweeps.values()
                          if s.state in ("queued", "running"))
            if pending >= self.max_pending:
                raise OverflowError(
                    f"too many pending sweeps ({pending}); retry later")
            self._sweeps[state.id] = state
            self._queue.append(state)
            self._evict_finished_locked()
            self._emit_locked(state, "queued", jobs=state.total,
                              backend=state.backend)
            if self._thread is None or not self._thread.is_alive():
                self._thread = threading.Thread(
                    target=self._run_loop, daemon=True, name="explore-runner")
                self._thread.start()
            self._wake.notify()
        return state

    def get(self, sweep_id: str) -> Optional[SweepState]:
        with self._lock:
            return self._sweeps.get(sweep_id)

    def result_json(self, state: SweepState, metric: str = "cycles") -> dict:
        """Records + comparison report of a finished sweep."""
        report = SweepReport(state.records, name=state.spec.name,
                             metric=metric)
        data = state.status_json()
        data["records"] = list(state.records)
        data["report"] = report.to_json()
        data["reportText"] = report.render_text()
        return data

    # -- cancellation ---------------------------------------------------
    def cancel(self, sweep_id: str,
               reason: str = "client request") -> dict:
        """Cancel a sweep: dequeue it if still queued, fire its token if
        running (the backend drains and stops in-flight jobs), no-op on
        a finished one.  Returns ``{"cancelled": bool, "state": ...}``;
        raises :class:`KeyError` for an unknown id."""
        with self._lock:
            state = self._sweeps.get(sweep_id)
            if state is None:
                raise KeyError(sweep_id)
            if state.state in TERMINAL_STATES:
                return {"cancelled": False, "state": state.state}
            if state.state == "queued":
                self._queue = [s for s in self._queue if s.id != sweep_id]
                state.state = "cancelled"
                state.finished = time.monotonic()
                state.cancel.cancel(reason)
                self._emit_locked(state, "cancelled", where="queue",
                                  reason=reason)
                _SWEEPS_FINISHED.inc(state="cancelled")
                return {"cancelled": True, "state": "cancelled"}
            # running: fire the token; the backend does the rest
            state.cancel.cancel(reason)
            self._emit_locked(state, "cancelling", reason=reason)
            return {"cancelled": True, "state": "running"}

    # -- event streaming ------------------------------------------------
    def events_since(self, sweep_id: str,
                     from_seq: int = 0) -> Tuple[List[dict], str]:
        """One poll: ``(events[from_seq:], current state)``.

        Raises :class:`KeyError` for an unknown sweep id."""
        with self._lock:
            state = self._sweeps.get(sweep_id)
            if state is None:
                raise KeyError(sweep_id)
            return list(state.events[from_seq:]), state.state

    def stream(self, sweep_id: str, from_seq: int = 0,
               poll_s: float = 0.25) -> Iterator[dict]:
        """Follow a sweep's event log live; ends after the terminal
        event (or when the sweep is evicted mid-stream).  Raises
        :class:`KeyError` immediately for an unknown sweep id."""
        with self._lock:
            if sweep_id not in self._sweeps:
                raise KeyError(sweep_id)
        seq = max(0, int(from_seq))
        while True:
            with self._lock:
                state = self._sweeps.get(sweep_id)
                if state is None:
                    return                 # evicted mid-stream
                events = list(state.events[seq:])
                terminal = state.state in TERMINAL_STATES
                if not events and not terminal:
                    self._wake.wait(poll_s)
                    continue
            for event in events:
                yield event
            seq += len(events)
            if terminal:
                with self._lock:
                    state = self._sweeps.get(sweep_id)
                    drained = state is None or seq >= len(state.events)
                if drained:
                    return

    # ------------------------------------------------------------------
    def _evict_finished_locked(self) -> None:
        finished = [sid for sid, s in self._sweeps.items()
                    if s.state in TERMINAL_STATES]
        while len(finished) > self.max_finished:
            del self._sweeps[finished.pop(0)]

    def _build_backend(self, state: SweepState):
        """Fleet sweeps get a registry-backed backend; serial/process
        keep the historical ``workers`` resolution inside run_sweep."""
        if state.backend != "fleet":
            return None
        from repro.fleet.scheduler import FleetError
        if self.scheduler is None:  # pragma: no cover - submit rejects
            raise FleetError("this server has no fleet scheduler")
        return self.scheduler.build_backend(
            job_timeout_s=state.job_timeout_s)

    def _run_loop(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._closed:
                    self._wake.wait()
                if self._closed and not self._queue:
                    return
                state = self._queue.pop(0)
                state.state = "running"
                state.started = time.monotonic()

            def on_dispatch(index: int, worker: object,
                            state: SweepState = state) -> None:
                with self._lock:
                    state.dispatched.add(index)
                    state.running.add(index)
                    state.job_starts[index] = round(
                        time.monotonic() - state.submitted, 6)
                    self._emit_locked(state, "dispatch", job=index,
                                      label=state.jobs[index].label,
                                      worker=worker)

            def on_result(result, state: SweepState = state) -> None:
                with self._lock:
                    now = time.monotonic() - state.submitted
                    state.running.discard(result.index)
                    state.completed += 1
                    if not result.ok:
                        state.failed += 1
                    state.elapsed_jobs.append(result.elapsed_s)
                    if state.trace_enabled:
                        # close the job span on the sweep timeline and
                        # graft the backend's interior spans under it
                        start = state.job_starts.get(result.index, now)
                        state.spans.append(make_span(
                            state.id, f"{state.id}.j{result.index}",
                            state.id, "job", start, now,
                            {"index": result.index,
                             "label": state.jobs[result.index].label,
                             "kind": result.kind,
                             "worker": result.worker}))
                        if result.spans:
                            state.spans.extend(rebase(result.spans, start))
                    self._emit_locked(
                        state, "finish", job=result.index,
                        label=state.jobs[result.index].label,
                        kind=result.kind, worker=result.worker,
                        elapsedS=round(result.elapsed_s, 6),
                        **({} if result.ok else {"error": result.error}))

            backend = None
            try:
                backend = self._build_backend(state)
                state.live_backend = backend
                self._emit(state, "started", backend=state.backend,
                           workers=(backend.workers if backend is not None
                                    else state.workers))
                run = run_sweep(state.spec, workers=state.workers,
                                job_timeout_s=state.job_timeout_s,
                                jobs=state.jobs,
                                on_dispatch=on_dispatch,
                                on_result=on_result,
                                start_method=self.start_method,
                                backend=backend,
                                cancel=state.cancel)
                with self._lock:
                    state.records = run.records
                    state.completed = len(run.records)
                    state.failed = len(run.failures)
                    state.elapsed_s = run.elapsed_s
                    state.execution = run.execution
                    state.live_backend = None
                    state.running.clear()
                    state.finished = time.monotonic()
                    if state.cancel.cancelled():
                        state.state = "cancelled"
                        self._emit_locked(
                            state, "cancelled", where="run",
                            reason=state.cancel.reason,
                            completed=state.completed,
                            elapsedS=round(state.elapsed_s, 4))
                    else:
                        state.state = "done"
                        self._emit_locked(
                            state, "done", ok=state.completed - state.failed,
                            failed=state.failed,
                            elapsedS=round(state.elapsed_s, 4),
                            jobWallTime=state.wall_time_json())
                if state.state == "done" and self.warehouse is not None:
                    # warehouse ingest is best-effort bookkeeping on top
                    # of a finished sweep: it must never flip the sweep
                    # to failed, so it gets its own exception scope
                    try:
                        self.warehouse.ingest(
                            state.records, sweep_id=state.id,
                            name=state.spec.name,
                            ingested_at=time.time())
                    except Exception:  # noqa: BLE001 - bookkeeping only
                        pass
            except Exception as exc:  # noqa: BLE001 - keep serving
                with self._lock:
                    state.error = f"{type(exc).__name__}: {exc}"
                    state.live_backend = None
                    state.running.clear()
                    state.state = "failed"
                    state.finished = time.monotonic()
                    state.elapsed_s = state.finished - (state.started
                                                        or state.finished)
                    self._emit_locked(state, "failed", error=state.error)
            finally:
                _SWEEPS_FINISHED.inc(state=state.state)
                if backend is not None:
                    backend.close()

    # ------------------------------------------------------------------
    def queue_depth(self) -> dict:
        """Scrape-time queue gauges: queued / running / known sweeps."""
        with self._lock:
            return {
                "queued": len(self._queue),
                "running": sum(1 for s in self._sweeps.values()
                               if s.state == "running"),
                "known": len(self._sweeps),
            }

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._wake.notify_all()
            thread = self._thread
        if thread is not None:
            thread.join(timeout=10.0)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sweeps)
