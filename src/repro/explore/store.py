"""JSONL result store for sweep records.

One line per run, append-only, human-greppable.  The engine writes records
in job-index order once a sweep completes (so a stored sweep file is
byte-deterministic for a deterministic spec), but ``append`` is public and
flushes eagerly so long-running custom drivers can stream records and
survive interruption with everything finished so far on disk.
"""

from __future__ import annotations

import json
import os
import warnings
from typing import IO, Iterable, List, Optional

__all__ = ["ResultStore", "load_records"]


def load_records(path: str) -> List[dict]:
    """Read every record of a JSONL result file (blank lines skipped).

    A final line with **no trailing newline** that fails to parse is the
    signature of an append interrupted mid-write (crash, SIGKILL, full
    disk): it is dropped with a warning instead of poisoning every
    complete record before it.  Corruption anywhere else — including a
    newline-terminated bad last line — still raises ``ValueError``:
    that is a damaged file, not an interrupted writer.
    """
    records: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if line_number == len(lines) and not raw.endswith("\n"):
                warnings.warn(
                    f"{path}:{line_number}: dropping truncated trailing "
                    f"JSONL record (interrupted append?): {exc}",
                    RuntimeWarning, stacklevel=2)
                break
            raise ValueError(f"{path}:{line_number}: bad JSONL record: "
                             f"{exc}") from exc
    return records


class ResultStore:
    """Sweep records, in memory and optionally mirrored to a JSONL file."""

    def __init__(self, path: Optional[str] = None, append: bool = False):
        self.path = path
        self._records: List[dict] = []
        self._handle: Optional[IO[str]] = None
        if path is not None:
            mode = "a" if append else "w"
            directory = os.path.dirname(path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._handle = open(path, mode, encoding="utf-8")

    # ------------------------------------------------------------------
    def append(self, record: dict) -> None:
        self._records.append(record)
        if self._handle is not None:
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
            self._handle.flush()

    def extend(self, records: Iterable[dict]) -> None:
        for record in records:
            self.append(record)

    def records(self) -> List[dict]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
