"""Deterministic job planner: sweep spec -> ordered, self-contained jobs.

Each :class:`Job` carries everything a worker process needs (program
source, fully-resolved architecture JSON, run limits) so jobs are picklable
and independent — the unit of crash isolation of the pool.  Planning is a
pure function of the spec: the same spec always yields the same job list,
labels included, which is what makes serial and parallel sweep executions
comparable record-for-record.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, List

from repro.explore.spec import SweepSpec, SweepSpecError

__all__ = ["Job", "plan_jobs", "apply_assignment"]

#: job-payload keys a dotted path may start with (everything else must be
#: under ``config.``)
_JOB_LEVEL_KEYS = ("optimizeLevel", "maxCycles", "entry")


@dataclass
class Job:
    """One planned run of the sweep."""

    index: int
    label: str                     #: "prog=qs/width=w4/lines=32"
    point: Dict[str, str]          #: axis name -> value label (+ program)
    payload: dict                  #: self-contained worker input

    def to_json(self) -> dict:
        return {"index": self.index, "label": self.label,
                "point": dict(self.point)}


def apply_assignment(payload: dict, path: str, value: object) -> None:
    """Assign *value* at dotted *path* inside the job payload.

    ``config.*`` descends into the architecture JSON; the run-level keys
    (``optimizeLevel``, ``maxCycles``, ``entry``) land on the payload
    itself.  Every path segment — including the leaf — must already exist
    in the resolved base configuration: ``CpuConfig.from_json`` ignores
    unknown keys, so a typo'd path (``fetchWdith``) that merely created a
    new key would sweep nothing while labelling N identical runs as a
    design-space study.  Better to fail planning than to sweep a typo
    that every run silently ignores.  (To sweep a subtree the base leaves
    as ``null`` — e.g. ``l2Cache`` — assign the whole object at its key.)
    """
    parts = path.split(".")
    if parts[0] == "config":
        if len(parts) < 2:
            raise SweepSpecError("path 'config' needs a field, "
                                 "e.g. 'config.cache.lineCount'")
        node = payload["config"]
        for depth, part in enumerate(parts[1:-1], start=1):
            nxt = node.get(part)
            if not isinstance(nxt, dict):
                raise SweepSpecError(
                    f"path '{path}': '{'.'.join(parts[:depth + 1])}' is "
                    f"not a configuration object (known keys here: "
                    f"{sorted(node)})")
            node = nxt
        if parts[-1] not in node:
            raise SweepSpecError(
                f"unknown configuration path '{path}' — the architecture "
                f"would silently ignore it (known keys here: "
                f"{sorted(node)})")
        node[parts[-1]] = value
        return
    if len(parts) == 1 and parts[0] in _JOB_LEVEL_KEYS:
        payload[parts[0]] = value
        return
    raise SweepSpecError(
        f"unsupported sweep path '{path}' (use 'config.*' or one of "
        f"{list(_JOB_LEVEL_KEYS)})")


def plan_jobs(spec: SweepSpec) -> List[Job]:
    """Expand *spec* into its ordered job list (pure, deterministic)."""
    spec.validate()
    base_config = spec.resolve_base_config()
    jobs: List[Job] = []
    for index, sweep_point in enumerate(spec.points()):
        program = spec.programs[sweep_point.program]
        payload: dict = {
            "program": program.to_json(),
            "config": copy.deepcopy(base_config),
            "collect": spec.collect,
        }
        if spec.max_cycles is not None:
            payload["maxCycles"] = spec.max_cycles
        point: Dict[str, str] = {"program": program.name}
        for axis, position in zip(spec.axes, sweep_point.choices):
            point[axis.name] = axis.label_of(position)
            for path, value in axis.assignments_of(position).items():
                apply_assignment(payload, path, value)
        if "optimizeLevel" in payload and program.c_source is None:
            raise SweepSpecError(
                f"axis sweeps 'optimizeLevel' but program "
                f"'{program.name}' is assembly — every point would run "
                f"identically under a different label")
        label = "/".join(f"{k}={v}" for k, v in point.items())
        payload["config"]["name"] = label
        jobs.append(Job(index=index, label=label, point=point,
                        payload=payload))
    return jobs
