"""Shared worker-pool layer of the experiment engine.

Two executors built on one idea — *work is queued, workers are expendable,
callers get ordered results*:

* :class:`ProcessWorkerPool` — W OS processes for CPU-bound batch jobs
  (design-space sweep points).  Each worker owns a private pipe; the parent
  dispatches one job at a time per worker, enforces a per-job wall-clock
  timeout, and survives worker *crashes* (``os._exit``, segfaults, OOM
  kills): the dead worker is reaped, the job is reported as ``crash``, and
  a replacement process is spawned so the rest of the sweep continues.
  Results are collected as they complete but returned ordered by job index,
  so a parallel sweep is record-for-record comparable with the serial loop.

* :class:`KeyedThreadPool` — W threads with **per-key FIFO queues** for the
  simulation server: all work for one key (a session id) runs in submit
  order on at most one worker at a time, so a heavy session can never
  occupy more than one executor while other sessions proceed on the rest.
  Threads are started lazily, keys are scheduled round-robin, and errors
  propagate through the returned :class:`Future`.

Both are transport-free (no repro imports) and are reused across the
stack: ``repro.explore.engine`` drives sweeps on the process pool, and
``repro.server.protocol`` dispatches ``session/*`` work onto the keyed
pool instead of simulating on the HTTP thread.
"""

from __future__ import annotations

import importlib
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection, get_context
from typing import Callable, Deque, Dict, List, Optional, Sequence, Union

__all__ = [
    "JobResult",
    "ProcessWorkerPool",
    "Future",
    "KeyedThreadPool",
    "default_worker_count",
    "CANCELLED_MESSAGE",
]

TaskRef = Union[str, Callable[[object], object]]

#: duck type of a cancellation token (``repro.fleet.cancel.CancelToken``
#: canonically): anything with a ``cancelled() -> bool`` method.  Typed
#: loosely so this transport-free layer needs no fleet import.
CancelLike = Optional[object]

#: error string of a job stopped by cancellation — byte-identical on
#: every backend, like the crash/timeout messages
CANCELLED_MESSAGE = "job cancelled"


def default_worker_count(jobs: Optional[int] = None) -> int:
    """Worker count matched to the machine (and optionally the job count)."""
    cpus = os.cpu_count() or 1
    if jobs is not None:
        return max(1, min(cpus, jobs))
    return max(1, cpus)


@dataclass
class JobResult:
    """Outcome of one pool job, in the caller's submission order.

    ``kind`` is one of ``ok`` / ``error`` (the task raised) / ``crash``
    (the worker process died) / ``timeout`` (the per-job deadline passed
    and the worker was killed) / ``cancelled`` (a cancel token fired
    before or during the job).  Only ``ok`` results carry a ``value``.

    ``spans`` (optional) carries the job's trace spans when the backend
    ran it under a tracer — host-side telemetry, like ``elapsed_s`` and
    ``worker``, that the sweep engine keeps out of the records.
    """

    index: int
    kind: str
    value: Optional[object] = None
    error: Optional[str] = None
    worker: int = -1
    elapsed_s: float = 0.0
    spans: Optional[list] = None

    @property
    def ok(self) -> bool:
        return self.kind == "ok"


def _resolve_task(task: TaskRef) -> Callable[[object], object]:
    """Resolve a ``module:function`` dotted reference (or pass a callable
    through).  Dotted references keep the pool spawn-safe: the worker
    imports the function instead of unpickling a closure."""
    if callable(task):
        return task
    module_name, _, attr = str(task).partition(":")
    if not module_name or not attr:
        raise ValueError(f"task reference must look like "
                         f"'package.module:function', got {task!r}")
    module = importlib.import_module(module_name)
    fn = getattr(module, attr)
    if not callable(fn):
        raise TypeError(f"{task!r} does not resolve to a callable")
    return fn


def _worker_main(conn_, task: TaskRef) -> None:  # pragma: no cover - child
    """Worker process loop: receive ``(index, payload)``, run, reply."""
    try:
        fn = _resolve_task(task)
    except BaseException as exc:  # noqa: BLE001 - report then die
        try:
            conn_.send((-1, "error", f"task resolution failed: {exc}"))
        finally:
            return
    while True:
        try:
            message = conn_.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        index, payload = message
        try:
            value = fn(payload)
            reply = (index, "ok", value)
        except KeyboardInterrupt:
            raise
        except BaseException as exc:  # noqa: BLE001 - isolate the job
            reply = (index, "error", f"{type(exc).__name__}: {exc}")
        try:
            conn_.send(reply)
        except (BrokenPipeError, OSError):
            return


class _Worker:
    """Parent-side handle of one worker process."""

    __slots__ = ("conn", "process", "wid", "job_index", "deadline", "started")

    def __init__(self, ctx, task: TaskRef, wid: int):
        self.conn, child = ctx.Pipe()
        self.process = ctx.Process(target=_worker_main, args=(child, task),
                                   daemon=True, name=f"explore-worker-{wid}")
        self.process.start()
        child.close()
        self.wid = wid
        self.job_index: Optional[int] = None
        self.deadline: Optional[float] = None
        self.started = 0.0

    @property
    def idle(self) -> bool:
        return self.job_index is None

    def kill(self) -> None:
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already gone
            pass
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - stuck in kernel
            self.process.kill()
            self.process.join(timeout=5.0)


class ProcessWorkerPool:
    """W-process pool with per-job timeouts and crash isolation.

    Parameters
    ----------
    task:
        ``"package.module:function"`` (spawn-safe) or a callable (fork
        only).  The function receives one picklable payload and returns a
        picklable value.
    workers:
        Process count (default: one per CPU).
    job_timeout_s:
        Wall-clock budget per job; on expiry the worker is terminated, the
        job reports ``kind="timeout"`` and a fresh worker takes over the
        remaining queue.  ``None`` disables the deadline.
    """

    def __init__(self, task: TaskRef, workers: Optional[int] = None,
                 job_timeout_s: Optional[float] = None,
                 start_method: Optional[str] = None):
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        if job_timeout_s is not None and job_timeout_s <= 0:
            raise ValueError("job_timeout_s must be positive")
        _resolve_task(task)               # fail fast on a bad reference
        self.task = task
        self.workers = workers or default_worker_count()
        self.job_timeout_s = job_timeout_s
        self._ctx = get_context(start_method) if start_method \
            else get_context()
        self._pool: List[_Worker] = []
        self._next_wid = 0
        self._closed = False

    # ------------------------------------------------------------------
    def __enter__(self) -> "ProcessWorkerPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _spawn(self) -> _Worker:
        worker = _Worker(self._ctx, self.task, self._next_wid)
        self._next_wid += 1
        return worker

    def _ensure_pool(self, jobs: int) -> None:
        want = min(self.workers, max(1, jobs))
        while len(self._pool) < want:
            self._pool.append(self._spawn())

    # ------------------------------------------------------------------
    def map(self, payloads: Sequence[object],
            on_result: Optional[Callable[[JobResult], None]] = None,
            on_dispatch: Optional[Callable[[int, object], None]] = None,
            cancel: CancelLike = None) -> List[JobResult]:
        """Run every payload; return results ordered by submission index.

        ``on_result`` (optional) fires in *completion* order as each job
        finishes — progress reporting for long sweeps.  ``on_dispatch``
        (optional) fires with ``(index, worker_id)`` the moment a job is
        handed to a worker — live queued/running introspection.
        ``cancel`` (optional, any object with ``cancelled() -> bool``)
        stops the run once fired: undispatched jobs report
        ``kind="cancelled"`` and in-flight workers are killed and
        respawned, the same mechanics as a per-job timeout.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        total = len(payloads)
        if total == 0:
            return []
        self._ensure_pool(total)
        pending: Deque[int] = deque(range(total))
        results: Dict[int, JobResult] = {}

        def finish(result: JobResult) -> None:
            results[result.index] = result
            if on_result is not None:
                on_result(result)

        def fail_running(worker: _Worker, kind: str, message: str) -> None:
            index = worker.job_index
            if index is not None:
                finish(JobResult(index=index, kind=kind, error=message,
                                 worker=worker.wid,
                                 elapsed_s=time.monotonic() - worker.started))
            worker.job_index = None
            worker.deadline = None
            worker.kill()
            self._pool[self._pool.index(worker)] = self._spawn()

        while len(results) < total:
            if cancel is not None and cancel.cancelled():
                # drain the queue, then stop in-flight jobs the way a
                # timeout does (kill + respawn keeps the pool reusable)
                while pending:
                    finish(JobResult(index=pending.popleft(),
                                     kind="cancelled",
                                     error=CANCELLED_MESSAGE))
                for worker in self._pool:
                    if not worker.idle:
                        fail_running(worker, "cancelled", CANCELLED_MESSAGE)
                continue
            # dispatch to every idle worker
            for slot, worker in enumerate(self._pool):
                if not worker.idle or not pending:
                    continue
                index = pending.popleft()
                try:
                    worker.conn.send((index, payloads[index]))
                except (BrokenPipeError, OSError):
                    # worker died before accepting work: respawn, requeue
                    pending.appendleft(index)
                    worker.kill()
                    self._pool[slot] = self._spawn()
                    continue
                worker.job_index = index
                worker.started = time.monotonic()
                worker.deadline = (worker.started + self.job_timeout_s
                                   if self.job_timeout_s else None)
                if on_dispatch is not None:
                    on_dispatch(index, worker.wid)
            busy = [w for w in self._pool if not w.idle]
            if not busy:  # pragma: no cover - defensive (dispatch failed)
                continue
            deadlines = [w.deadline for w in busy if w.deadline is not None]
            wait_s: Optional[float] = None
            if deadlines:
                wait_s = max(0.0, min(deadlines) - time.monotonic())
            if cancel is not None:
                # wake periodically so a cancel is honored promptly even
                # while every worker is deep in a long job
                wait_s = 0.1 if wait_s is None else min(wait_s, 0.1)
            ready = connection.wait([w.conn for w in busy], timeout=wait_s)
            now = time.monotonic()
            for conn_ in ready:
                worker = next(w for w in busy if w.conn is conn_)
                try:
                    index, kind, value = worker.conn.recv()
                except (EOFError, OSError):
                    fail_running(worker, "crash",
                                 "worker process died mid-job")
                    continue
                if index != worker.job_index:
                    # out-of-protocol reply (e.g. startup failure sentinel):
                    # the worker is not trustworthy — fail its job, respawn
                    fail_running(worker, "error",
                                 f"worker protocol error: {value}")
                    continue
                finish(JobResult(
                    index=index, kind=kind,
                    value=value if kind == "ok" else None,
                    error=None if kind == "ok" else str(value),
                    worker=worker.wid, elapsed_s=now - worker.started))
                worker.job_index = None
                worker.deadline = None
            for worker in busy:
                if (not worker.idle and worker.deadline is not None
                        and now >= worker.deadline):
                    fail_running(
                        worker, "timeout",
                        f"job exceeded {self.job_timeout_s:g}s timeout")
        return [results[i] for i in range(total)]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut every worker down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._pool:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in self._pool:
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.kill()
            else:
                worker.conn.close()
        self._pool.clear()


# ---------------------------------------------------------------------------
# keyed thread pool (simulation-server session executors)
# ---------------------------------------------------------------------------
class Future:
    """Minimal completion handle for :class:`KeyedThreadPool` work."""

    __slots__ = ("_event", "_value", "_error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value: object = None
        self._error: Optional[BaseException] = None

    def _resolve(self, value: object, error: Optional[BaseException]) -> None:
        self._value = value
        self._error = error
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> object:
        """Block for the outcome; re-raises the task's exception."""
        if not self._event.wait(timeout):
            raise TimeoutError("pool task did not complete in time")
        if self._error is not None:
            raise self._error
        return self._value


@dataclass
class _KeyQueue:
    tasks: Deque = field(default_factory=deque)
    active: bool = False


class KeyedThreadPool:
    """W worker threads with per-key FIFO ordering and key isolation.

    * All tasks of one key run **in submission order**, never concurrently
      with each other (the per-session lock discipline of the server holds
      by construction).
    * A key occupies at most one worker, so a session spamming heavy steps
      cannot starve other sessions: ready keys are scheduled round-robin
      over the remaining workers.
    * Threads are daemonic and started lazily — an idle server costs
      nothing; a closed pool rejects new work.
    """

    def __init__(self, workers: Optional[int] = None,
                 name: str = "keyed-pool"):
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers or default_worker_count()
        self.name = name
        self._lock = threading.Lock()
        self._work_ready = threading.Condition(self._lock)
        self._queues: Dict[object, _KeyQueue] = {}
        self._ready: Deque[object] = deque()
        self._threads: List[threading.Thread] = []
        self._idle = 0
        self._closed = False

    # ------------------------------------------------------------------
    def submit(self, key: object, fn: Callable, *args, **kwargs) -> Future:
        """Queue ``fn(*args, **kwargs)`` under *key*; returns a Future."""
        future = Future()
        with self._lock:
            if self._closed:
                raise RuntimeError("pool is closed")
            entry = self._queues.get(key)
            if entry is None:
                entry = self._queues[key] = _KeyQueue()
            entry.tasks.append((future, fn, args, kwargs))
            if not entry.active and len(entry.tasks) == 1:
                self._ready.append(key)
            # spawn whenever ready keys outnumber idle workers: an idle
            # thread that was *notified* for an earlier key but has not
            # resumed yet still counts as idle, so comparing against the
            # ready backlog (not just _idle == 0) is what guarantees a
            # second session never queues behind a busy worker while
            # capacity remains
            if len(self._ready) > self._idle \
                    and len(self._threads) < self.workers:
                thread = threading.Thread(
                    target=self._worker_loop, daemon=True,
                    name=f"{self.name}-{len(self._threads)}")
                self._threads.append(thread)
                thread.start()
            else:
                self._work_ready.notify()
        return future

    def run(self, key: object, fn: Callable, *args, **kwargs) -> object:
        """Submit and wait; the synchronous request path of the server."""
        return self.submit(key, fn, *args, **kwargs).result()

    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                while not self._ready and not self._closed:
                    self._idle += 1
                    self._work_ready.wait()
                    self._idle -= 1
                if self._closed and not self._ready:
                    return
                key = self._ready.popleft()
                entry = self._queues[key]
                future, fn, args, kwargs = entry.tasks.popleft()
                entry.active = True
            try:
                value, error = fn(*args, **kwargs), None
            except BaseException as exc:  # noqa: BLE001 - deliver to caller
                value, error = None, exc
            future._resolve(value, error)
            with self._lock:
                entry.active = False
                if entry.tasks:
                    self._ready.append(key)
                    self._work_ready.notify()
                elif not self._closed:
                    # drop empty idle queues so dead session keys don't leak
                    self._queues.pop(key, None)

    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Queued-but-unfinished task count (diagnostics)."""
        with self._lock:
            return sum(len(q.tasks) + (1 if q.active else 0)
                       for q in self._queues.values())

    def close(self, drain: bool = True) -> None:
        """Stop accepting work; optionally wait for queued tasks."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._work_ready.notify_all()
            # snapshot under the lock: submit() may be growing the list
            # concurrently right up to the _closed flip above
            threads = list(self._threads)
        if drain:
            for thread in threads:
                thread.join(timeout=10.0)

    def __enter__(self) -> "KeyedThreadPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
