"""Declarative design-space sweep specifications.

A :class:`SweepSpec` describes a whole experiment the way the paper's
evaluation section does: *programs* (assembly or C at a chosen optimization
level) crossed with *axes* over the architecture configuration — issue
width, cache geometry, predictor type, optimization level, anything
reachable through ``CpuConfig``'s JSON form.  Specs are plain JSON
(loadable from a file, postable to the server) and expand deterministically
into an ordered list of design points, either as the full grid or as a
seeded random sample of it.

Axis forms::

    {"name": "lines", "path": "config.cache.lineCount", "values": [8, 32]}
    {"name": "width", "values": [
        {"config.buffers.fetchWidth": 1, "config.buffers.commitWidth": 1},
        {"config.buffers.fetchWidth": 4, "config.buffers.commitWidth": 4}],
     "labels": ["w1", "w4"]}

A scalar-valued axis assigns each value at its dotted ``path``; a
dict-valued axis assigns several paths at once (the only way to move
coupled parameters — width plus functional-unit list — coherently).
Paths starting with ``config.`` descend into the architecture JSON;
``optimizeLevel`` retargets the C compiler; ``maxCycles`` and ``entry``
adjust the run itself.
"""

from __future__ import annotations

import itertools
import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import CpuConfig, preset_names
from repro.errors import ReproError

__all__ = ["SweepSpecError", "ProgramSpec", "Axis", "SweepPoint", "SweepSpec"]


class SweepSpecError(ReproError):
    """Invalid sweep specification."""


@dataclass
class ProgramSpec:
    """One workload of the sweep: assembly, or C compiled in the worker."""

    name: str
    source: Optional[str] = None          #: assembly source
    c_source: Optional[str] = None        #: C source (compiled per job)
    optimize_level: int = 1               #: C optimization level (O0..O3)
    entry: Optional[object] = None
    memory: List[dict] = field(default_factory=list)  #: MemoryLocation JSON

    def validate(self) -> None:
        if not self.name:
            raise SweepSpecError("every program needs a non-empty 'name'")
        if (self.source is None) == (self.c_source is None):
            raise SweepSpecError(
                f"program '{self.name}': exactly one of 'source' (assembly) "
                f"or 'c' (C source) is required")
        if not 0 <= int(self.optimize_level) <= 3:
            raise SweepSpecError(
                f"program '{self.name}': optimizeLevel must be 0..3")

    def to_json(self) -> dict:
        data: dict = {"name": self.name}
        if self.source is not None:
            data["source"] = self.source
        if self.c_source is not None:
            data["c"] = self.c_source
            data["optimizeLevel"] = self.optimize_level
        if self.entry is not None:
            data["entry"] = self.entry
        if self.memory:
            data["memory"] = list(self.memory)
        return data

    @staticmethod
    def from_json(data: dict) -> "ProgramSpec":
        if not isinstance(data, dict):
            raise SweepSpecError(f"program entries must be objects, "
                                 f"got {type(data).__name__}")
        return ProgramSpec(
            name=str(data.get("name", "")),
            source=data.get("source"),
            c_source=data.get("c"),
            optimize_level=int(data.get("optimizeLevel", 1)),
            entry=data.get("entry"),
            memory=list(data.get("memory", [])),
        )


@dataclass
class Axis:
    """One swept dimension: a label per value, a value per design point."""

    name: str
    values: List[object]
    path: Optional[str] = None
    labels: Optional[List[str]] = None

    def validate(self) -> None:
        if not self.name:
            raise SweepSpecError("every axis needs a non-empty 'name'")
        if not self.values:
            raise SweepSpecError(f"axis '{self.name}': 'values' is empty")
        if self.labels is not None and len(self.labels) != len(self.values):
            raise SweepSpecError(
                f"axis '{self.name}': {len(self.labels)} labels for "
                f"{len(self.values)} values")
        for value in self.values:
            if self.path is None and not isinstance(value, dict):
                raise SweepSpecError(
                    f"axis '{self.name}': values must be "
                    f"{{dotted.path: value}} objects when no 'path' is set")

    # ------------------------------------------------------------------
    def label_of(self, position: int) -> str:
        if self.labels is not None:
            return str(self.labels[position])
        value = self.values[position]
        if isinstance(value, dict):
            return str(position)
        return str(value)

    def assignments_of(self, position: int) -> Dict[str, object]:
        """Dotted-path assignments this axis applies at *position*."""
        value = self.values[position]
        if self.path is not None:
            return {self.path: value}
        return dict(value)

    def to_json(self) -> dict:
        data: dict = {"name": self.name, "values": list(self.values)}
        if self.path is not None:
            data["path"] = self.path
        if self.labels is not None:
            data["labels"] = list(self.labels)
        return data

    @staticmethod
    def from_json(data: dict) -> "Axis":
        if not isinstance(data, dict):
            raise SweepSpecError(f"axis entries must be objects, "
                                 f"got {type(data).__name__}")
        values = data.get("values")
        if not isinstance(values, list):
            raise SweepSpecError(
                f"axis '{data.get('name', '?')}': 'values' must be a list")
        labels = data.get("labels")
        return Axis(name=str(data.get("name", "")), values=list(values),
                    path=data.get("path"),
                    labels=None if labels is None else list(labels))


@dataclass
class SweepPoint:
    """One expanded design point (program index + one value per axis)."""

    program: int
    choices: Tuple[int, ...]              #: value index per axis


@dataclass
class SweepSpec:
    """A complete, JSON-round-trippable experiment description."""

    name: str = "sweep"
    programs: List[ProgramSpec] = field(default_factory=list)
    axes: List[Axis] = field(default_factory=list)
    #: architecture baseline: a preset name or CpuConfig JSON dict
    base_config: object = "default"
    max_cycles: Optional[int] = None
    sampling: str = "grid"                #: "grid" | "random"
    samples: int = 0                      #: sample count (random mode)
    seed: int = 0                         #: RNG seed (random mode)
    collect: str = "summary"              #: "summary" | "full" statistics

    # ------------------------------------------------------------------
    def validate(self) -> None:
        if not self.programs:
            raise SweepSpecError("a sweep needs at least one program")
        for program in self.programs:
            program.validate()
        names = [p.name for p in self.programs]
        if len(set(names)) != len(names):
            raise SweepSpecError(f"program names must be unique: {names}")
        axis_names = [a.name for a in self.axes]
        if len(set(axis_names)) != len(axis_names):
            raise SweepSpecError(f"axis names must be unique: {axis_names}")
        for axis in self.axes:
            axis.validate()
        if self.sampling not in ("grid", "random"):
            raise SweepSpecError(
                f"sampling must be 'grid' or 'random', got {self.sampling!r}")
        if self.sampling == "random" and self.samples < 1:
            raise SweepSpecError("random sampling needs 'samples' >= 1")
        if self.collect not in ("summary", "full"):
            raise SweepSpecError(
                f"collect must be 'summary' or 'full', got {self.collect!r}")
        if self.max_cycles is not None and self.max_cycles <= 0:
            raise SweepSpecError("maxCycles must be positive")
        self.resolve_base_config()        # raises on a bad architecture

    def resolve_base_config(self) -> dict:
        """Baseline architecture as a JSON dict (validated)."""
        if isinstance(self.base_config, str):
            if self.base_config not in preset_names():
                raise SweepSpecError(
                    f"unknown preset architecture {self.base_config!r}")
            return CpuConfig.preset(self.base_config).to_json()
        if isinstance(self.base_config, dict):
            config = CpuConfig.from_json(self.base_config)
            config.validate()
            return config.to_json()
        raise SweepSpecError("'config' must be a preset name or a "
                             "CpuConfig JSON object")

    # ------------------------------------------------------------------
    def grid_size(self) -> int:
        size = len(self.programs)
        for axis in self.axes:
            size *= len(axis.values)
        return size

    def points(self) -> List[SweepPoint]:
        """Deterministic expansion: full grid, or a seeded random sample.

        Grid order is programs-outermost, then axes in declaration order
        (the last axis varies fastest) — the order a hand-rolled nested
        loop would produce.  Random sampling draws ``samples`` points
        uniformly (with replacement) from the same grid via
        ``random.Random(seed)``, so re-expanding a spec always yields the
        same plan.
        """
        if self.sampling == "random":
            rng = random.Random(self.seed)
            out = []
            for _ in range(self.samples):
                program = rng.randrange(len(self.programs))
                choices = tuple(rng.randrange(len(axis.values))
                                for axis in self.axes)
                out.append(SweepPoint(program=program, choices=choices))
            return out
        ranges = [range(len(axis.values)) for axis in self.axes]
        return [SweepPoint(program=p, choices=tuple(combo))
                for p in range(len(self.programs))
                for combo in itertools.product(*ranges)]

    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        data: dict = {
            "name": self.name,
            "programs": [p.to_json() for p in self.programs],
            "axes": [a.to_json() for a in self.axes],
            "config": self.base_config,
            "sampling": self.sampling,
            "collect": self.collect,
        }
        if self.max_cycles is not None:
            data["maxCycles"] = self.max_cycles
        if self.sampling == "random":
            data["samples"] = self.samples
            data["seed"] = self.seed
        return data

    @staticmethod
    def from_json(data: dict) -> "SweepSpec":
        if not isinstance(data, dict):
            raise SweepSpecError("a sweep spec must be a JSON object")
        sampling = data.get("sampling", "grid")
        if isinstance(sampling, dict):     # {"mode": "random", ...} form
            mode = sampling
            sampling = str(mode.get("mode", "grid"))
            samples = int(mode.get("samples", 0))
            seed = int(mode.get("seed", 0))
        else:
            samples = int(data.get("samples", 0))
            seed = int(data.get("seed", 0))
        spec = SweepSpec(
            name=str(data.get("name", "sweep")),
            programs=[ProgramSpec.from_json(p)
                      for p in data.get("programs", [])],
            axes=[Axis.from_json(a) for a in data.get("axes", [])],
            base_config=data.get("config", "default"),
            max_cycles=(int(data["maxCycles"])
                        if data.get("maxCycles") is not None else None),
            sampling=str(sampling),
            samples=samples,
            seed=seed,
            collect=str(data.get("collect", "summary")),
        )
        spec.validate()
        return spec

    @staticmethod
    def from_json_str(text: str) -> "SweepSpec":
        try:
            return SweepSpec.from_json(json.loads(text))
        except json.JSONDecodeError as exc:
            raise SweepSpecError(f"invalid sweep JSON: {exc}") from exc

    @staticmethod
    def load(path: str) -> "SweepSpec":
        with open(path, "r", encoding="utf-8") as handle:
            return SweepSpec.from_json_str(handle.read())
