"""Worker-side job execution: one payload in, one statistics record out.

``execute_payload`` is the :class:`repro.explore.pool.ProcessWorkerPool`
task (referenced as ``"repro.explore.runner:execute_payload"`` so spawned
workers import it instead of unpickling a closure).  It is also called
directly by the serial execution path and by the remote sweep worker's
``/worker/execute`` endpoint, which is what makes all execution backends
bit-identical: the exact same function produces the record everywhere,
and the record deliberately contains **no host-side timing** — only
simulated quantities, which are deterministic for a (program, config)
pair.

Per-job setup (C compile, assembly) goes through a content-addressed
:class:`repro.explore.artifacts.ArtifactCache`, so design points that
share a program skip re-compiling/re-assembling it.  Cache hits are
byte-identical to cold builds by construction (artifacts are addressed
by the content of every input), so the determinism pin holds warm or
cold.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

from repro.core.config import CpuConfig
from repro.errors import ReproError
from repro.explore.artifacts import ArtifactCache, default_cache
from repro.sim.energy import estimate_area, estimate_energy
from repro.sim.simulation import CANCELLED_HALT_REASON, Simulation

__all__ = ["execute_payload", "build_simulation", "JobError",
           "JobCancelled"]


class JobError(ReproError):
    """A sweep job failed for a reportable, per-job reason."""


class JobCancelled(ReproError):
    """The job's cancel token fired mid-run (cooperative cancellation).

    Raised by :func:`execute_payload` — never by a cold simulation — so
    callers (the serial backend, the ``/worker/execute`` endpoint) can
    map it to a ``kind="cancelled"`` record distinct from job errors.
    """


class _NullTracer:
    """Default no-op tracer: ``execute_payload`` runs the same code path
    traced or not, and this module never imports :mod:`repro.obs.trace`
    (tracers cross in duck-typed), so the deterministic closure stays
    clock-free."""

    @contextmanager
    def span(self, name, **tags):
        yield


_NULL_TRACER = _NullTracer()


def build_simulation(payload: dict,
                     cache: Optional[ArtifactCache] = None) -> Simulation:
    """Per-job setup: payload -> ready-to-run :class:`Simulation`.

    All the work a cache hit elides lives here (compile, assemble); the
    benchmark suite times this function cold vs warm.  *cache* defaults
    to the process-wide cache (:func:`repro.explore.artifacts.default_cache`).
    """
    if cache is None:
        cache = default_cache()
    program_spec = payload.get("program") or {}
    fetch_from = None
    ref = program_spec.get("artifactRef")
    if isinstance(ref, dict):
        # data-plane dispatch (protocol v8): the payload carries a
        # content-keyed reference instead of the inline program; resolve
        # the original spec first (local registry, then remote fetch).
        # Raises ArtifactUnavailable — never a JobError — so the
        # dispatcher re-sends the job inline instead of failing it.
        program_spec = cache.resolve_source(ref)
        fetch_from = list(ref.get("fetchFrom") or ())
    source: Optional[str] = program_spec.get("source")
    if source is None:
        c_source = program_spec.get("c")
        if c_source is None:
            raise JobError(f"program '{program_spec.get('name', '?')}' "
                           f"carries neither assembly nor C source")
        level = int(payload.get("optimizeLevel",
                                program_spec.get("optimizeLevel", 1)))
        source = cache.compiled_assembly(c_source, level,
                                         fetch_from=fetch_from)
    config = CpuConfig.from_json(payload["config"])
    if payload.get("maxCycles") is not None:
        config.max_cycles = int(payload["maxCycles"])
    entry = payload.get("entry", program_spec.get("entry"))
    program = cache.assembled_program(
        source, stack_size=config.memory.call_stack_size, entry=entry,
        memory_locations=program_spec.get("memory", []))
    return Simulation(program, config)


def execute_payload(payload: dict,
                    cache: Optional[ArtifactCache] = None,
                    cancel: Optional[object] = None,
                    cancel_stride: Optional[int] = None,
                    tracer: Optional[object] = None) -> dict:
    """Run one planned job; return its per-run statistics record body.

    The summary covers every metric the paper's evaluation compares —
    cycles, IPC, branch-predictor accuracy, cache hit/miss rates, memory
    traffic, energy — plus the committed integer register file, so
    correctness-across-configs assertions (the ablation suites) can run
    off the record alone.  ``collect: "full"`` additionally embeds the
    complete statistics page.

    *cancel* (a token with ``cancelled()``) makes the simulation
    cooperatively cancellable at *cancel_stride* cycles; a run halted by
    the token raises :class:`JobCancelled` instead of returning a
    half-simulated record.

    *tracer* (anything with a ``span(name, **tags)`` context manager,
    canonically :class:`repro.obs.trace.JobTracer`) times the compile /
    simulate / record phases; timings stay on the tracer, never in the
    returned record.
    """
    if tracer is None:
        tracer = _NULL_TRACER
    with tracer.span("compile"):
        simulation = build_simulation(payload, cache)
    with tracer.span("simulate"):
        result = simulation.run(cancel=cancel, cancel_stride=cancel_stride)
    if result.halt_reason == CANCELLED_HALT_REASON:
        raise JobCancelled("job cancelled")
    with tracer.span("record"):
        cpu = simulation.cpu
        stats = result.statistics
        predictor = stats["branchPredictor"]
        summary = {
            "haltReason": result.halt_reason,
            "cycles": result.cycles,
            "committedInstructions": result.committed,
            "ipc": stats["ipc"],
            "branchAccuracy": predictor["accuracy"],
            "branchPredictions": predictor["predictions"],
            "robFlushes": stats["robFlushes"],
            "flopsTotal": stats["flopsTotal"],
            "dynamicMix": stats["dynamicMix"],
            "memory": stats["memory"],
            "intRegisters": cpu.arch_regs.snapshot()["int"],
        }
        for level in ("cache", "l2Cache"):
            if level in stats:
                cache = stats[level]
                summary[level] = {
                    "hitRatio": cache["hitRatio"],
                    "missRatio": cache["missRatio"],
                    "accesses": cache["accesses"],
                    "bytesWritten": cache["bytesWritten"],
                }
        energy = estimate_energy(cpu)
        summary["energy"] = {
            "totalPj": round(energy.total_pj, 2),
            "dynamicPj": round(energy.dynamic_total_pj, 2),
            "staticPj": round(energy.static_pj, 2),
        }
        summary["areaKGE"] = round(estimate_area(cpu.config).total, 3)
        record = {"stats": summary}
        if payload.get("collect") == "full":
            record["statistics"] = stats
    return record
