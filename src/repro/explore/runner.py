"""Worker-side job execution: one payload in, one statistics record out.

``execute_payload`` is the :class:`repro.explore.pool.ProcessWorkerPool`
task (referenced as ``"repro.explore.runner:execute_payload"`` so spawned
workers import it instead of unpickling a closure).  It is also called
directly by the serial execution path, which is what makes serial and
parallel sweeps bit-identical: the exact same function produces the record
either way, and the record deliberately contains **no host-side timing** —
only simulated quantities, which are deterministic for a (program, config)
pair.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import CpuConfig
from repro.errors import ReproError
from repro.memory.layout import MemoryLocation
from repro.sim.energy import estimate_area, estimate_energy
from repro.sim.simulation import Simulation

__all__ = ["execute_payload", "JobError"]


class JobError(ReproError):
    """A sweep job failed for a reportable, per-job reason."""


def _build_simulation(payload: dict) -> Simulation:
    program = payload.get("program") or {}
    source: Optional[str] = program.get("source")
    if source is None:
        c_source = program.get("c")
        if c_source is None:
            raise JobError(f"program '{program.get('name', '?')}' carries "
                           f"neither assembly nor C source")
        from repro.compiler.driver import compile_c
        level = int(payload.get("optimizeLevel",
                                program.get("optimizeLevel", 1)))
        result = compile_c(c_source, level)
        if not result.success:
            raise JobError(f"C compilation failed at O{level}: "
                           f"{result.errors}")
        source = result.assembly
    config = CpuConfig.from_json(payload["config"])
    if payload.get("maxCycles") is not None:
        config.max_cycles = int(payload["maxCycles"])
    memory = [MemoryLocation.from_json(d)
              for d in program.get("memory", [])]
    entry = payload.get("entry", program.get("entry"))
    return Simulation.from_source(source, config=config, entry=entry,
                                  memory_locations=memory)


def execute_payload(payload: dict) -> dict:
    """Run one planned job; return its per-run statistics record body.

    The summary covers every metric the paper's evaluation compares —
    cycles, IPC, branch-predictor accuracy, cache hit/miss rates, memory
    traffic, energy — plus the committed integer register file, so
    correctness-across-configs assertions (the ablation suites) can run
    off the record alone.  ``collect: "full"`` additionally embeds the
    complete statistics page.
    """
    simulation = _build_simulation(payload)
    result = simulation.run()
    cpu = simulation.cpu
    stats = result.statistics
    predictor = stats["branchPredictor"]
    summary = {
        "haltReason": result.halt_reason,
        "cycles": result.cycles,
        "committedInstructions": result.committed,
        "ipc": stats["ipc"],
        "branchAccuracy": predictor["accuracy"],
        "branchPredictions": predictor["predictions"],
        "robFlushes": stats["robFlushes"],
        "flopsTotal": stats["flopsTotal"],
        "dynamicMix": stats["dynamicMix"],
        "memory": stats["memory"],
        "intRegisters": cpu.arch_regs.snapshot()["int"],
    }
    for level in ("cache", "l2Cache"):
        if level in stats:
            cache = stats[level]
            summary[level] = {
                "hitRatio": cache["hitRatio"],
                "missRatio": cache["missRatio"],
                "accesses": cache["accesses"],
                "bytesWritten": cache["bytesWritten"],
            }
    energy = estimate_energy(cpu)
    summary["energy"] = {
        "totalPj": round(energy.total_pj, 2),
        "dynamicPj": round(energy.dynamic_total_pj, 2),
        "staticPj": round(energy.static_pj, 2),
    }
    summary["areaKGE"] = round(estimate_area(cpu.config).total, 3)
    record = {"stats": summary}
    if payload.get("collect") == "full":
        record["statistics"] = stats
    return record
