"""Content-addressed artifact cache for per-job sweep setup.

Design points that share a program pay the same setup bill per job —
compile the C source, assemble the assembly — because crash isolation
keeps jobs stateless.  The cache removes that waste without giving up
statelessness: artifacts are addressed purely by the *content* of their
inputs (SHA-256 of source + every layout-relevant parameter), so a hit
is byte-for-byte the artifact a cold build would have produced and
records stay bit-identical whether the cache was warm or cold.

Two tiers:

* **memory** — per-process LRU maps.  Holds compiled assembly *and*
  assembled :class:`repro.asm.program.Program` objects (a ``Program`` is
  immutable-once-assembled by the decode-cache contract, so sharing one
  instance across jobs in a process is safe; every ``Cpu`` copies the
  data segment before running).  This is the tier a remote sweep worker
  keeps per server.
* **disk** — an optional content-addressed directory holding the
  JSON-safe artifacts only (compiled assembly).  Worker *processes* of
  one host all point at the same directory, so a process-pool sweep
  compiles each distinct (C source, opt level) exactly once per host,
  not once per worker.  Writes are atomic (temp file + ``os.replace``)
  and any I/O failure silently degrades to the memory tier — the cache
  is an accelerator, never a correctness dependency.

* **remote** — the fleet artifact data plane (protocol v8).  When a
  dispatching backend hands a job an artifact *reference* instead of an
  inline program, the compile-miss path consults the reference's
  ``fetchFrom`` sources (the frontend origin, plus any peer workers the
  registry advertises for the key) over ``GET /artifact/<key>`` before
  compiling locally.  See :class:`RemoteArtifactSource`; the
  ``REPRO_ARTIFACT_FETCH=0`` kill switch turns the whole tier off.
  Fetch failures degrade to a local compile — the data plane is an
  accelerator, never a correctness dependency — and fetched artifacts
  are content-addressed, so a remote hit is byte-identical to the local
  compile it replaced.

``repro.explore.runner`` consults the process-default cache (see
:func:`default_cache`) for every job, on every execution backend.  The
default disk directory is per-host/per-user under the system temp dir
and can be redirected with ``REPRO_ARTIFACT_DIR=/path`` or disabled
entirely with ``REPRO_ARTIFACT_DIR=off``.

The disk tier is **size-bounded**: long-lived fleet workers compile
thousands of distinct programs, and a content-addressed store never
invalidates on its own.  Writes trigger an LRU garbage collection by
file mtime (reads touch the mtime, so recently-served artifacts
survive) whenever the tier exceeds ``max_disk_bytes`` — default
:data:`DEFAULT_MAX_DISK_BYTES`, overridable with
``REPRO_ARTIFACT_MAX_BYTES`` (``0``/``unlimited`` disables the GC).
Hit/miss/size stats are surfaced on the worker's ``/worker/status``
endpoint via :meth:`ArtifactCache.stats`.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import os
import tempfile
import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence

from repro.obs.metrics import default_registry

__all__ = ["ArtifactCache", "ArtifactUnavailable", "RemoteArtifactSource",
           "default_cache", "reset_default_cache", "fetch_enabled",
           "ARTIFACT_DIR_ENV", "ARTIFACT_MAX_BYTES_ENV",
           "ARTIFACT_FETCH_ENV", "DEFAULT_MAX_DISK_BYTES"]

# this module sits inside the runner's deterministic closure, so the
# instrumentation is counter bumps only (repro.obs.metrics is clock- and
# environment-free by contract); the one exception is the fetch-latency
# histogram below, whose clock reads never reach a record
_CACHE_REQUESTS = default_registry().counter(
    "repro_artifact_cache_requests_total",
    "Artifact cache lookups, by tier and outcome")

_FETCHES = default_registry().counter(
    "repro_artifact_fetch_total",
    "Remote artifact fetch attempts, by outcome")

_FETCH_SECONDS = default_registry().histogram(
    "repro_artifact_fetch_seconds",
    "Wall time of remote artifact fetch attempts")

#: environment override for the disk tier ("off"/"none"/"0" disables it)
ARTIFACT_DIR_ENV = "REPRO_ARTIFACT_DIR"

#: environment override for the disk-tier size budget in bytes
#: ("0"/"unlimited" disables garbage collection)
ARTIFACT_MAX_BYTES_ENV = "REPRO_ARTIFACT_MAX_BYTES"

#: default disk-tier budget: generous for a laptop, tight enough that a
#: fleet worker's tmp dir cannot grow without bound
DEFAULT_MAX_DISK_BYTES = 256 * 1024 * 1024

#: kill switch for the fetch-by-hash data plane ("0"/"off"/"none"
#: disables remote fetching, reference dispatch, and prefetch warm-up)
ARTIFACT_FETCH_ENV = "REPRO_ARTIFACT_FETCH"

#: heartbeat advertisements carry at most this many compiled-artifact
#: keys (the most recently used ones) — see ArtifactCache.heartbeat_stats
MAX_ADVERTISED_KEYS = 64

_DISABLED = ("off", "none", "0", "")


def fetch_enabled() -> bool:
    """Whether the artifact data plane may fetch by hash (default on;
    ``REPRO_ARTIFACT_FETCH=0`` switches every fetch path off)."""
    env = os.environ.get(ARTIFACT_FETCH_ENV)
    if env is None:
        return True
    return env.strip().lower() not in _DISABLED


class ArtifactUnavailable(RuntimeError):
    """A data-plane artifact reference could not be resolved.

    Deliberately *not* a job failure: ``/worker/execute`` maps it to the
    ``artifactUnavailable`` reply kind, and the dispatching backend
    re-sends the job with the program inline — fetch failures degrade to
    the pre-data-plane path, they never fail a job or taint a record."""


def _max_bytes_from_env() -> Optional[int]:
    env = os.environ.get(ARTIFACT_MAX_BYTES_ENV)
    if env is None:
        return DEFAULT_MAX_DISK_BYTES
    text = env.strip().lower()
    if text in ("", "0", "off", "none", "unlimited"):
        return None
    try:
        value = int(text)
    except ValueError:
        return DEFAULT_MAX_DISK_BYTES
    return value if value > 0 else None


def _default_directory() -> Optional[str]:
    env = os.environ.get(ARTIFACT_DIR_ENV)
    if env is not None:
        return None if env.strip().lower() in _DISABLED else env
    uid = getattr(os, "getuid", lambda: "any")()
    return os.path.join(tempfile.gettempdir(), f"repro-artifacts-{uid}")


_toolchain_tag: Optional[str] = None


def _toolchain_fingerprint() -> str:
    """Fingerprint of the code that *produces* artifacts.

    The disk tier outlives the process — and the repo checkout — so a
    content address must cover the toolchain, not just its inputs: an
    artifact compiled by yesterday's code generator is not the artifact
    today's would produce, and serving it would silently break the
    byte-identity pin between backends with differently-warmed caches.
    Hashing (path, size, mtime) of every ``repro.asm`` / ``repro.compiler``
    source file is cheap (one stat per file, once per process) and
    over-invalidates at worst (a touched file drops cache hits, never
    correctness)."""
    global _toolchain_tag
    if _toolchain_tag is None:
        import repro.asm
        import repro.compiler
        hasher = hashlib.sha256()
        for package in (repro.asm, repro.compiler):
            root = os.path.dirname(package.__file__)
            for name in sorted(os.listdir(root)):
                if not name.endswith(".py"):
                    continue
                try:
                    info = os.stat(os.path.join(root, name))
                    hasher.update(f"{name}:{info.st_size}:"
                                  f"{info.st_mtime_ns}".encode())
                except OSError:  # pragma: no cover - zip imports etc.
                    hasher.update(name.encode())
        _toolchain_tag = hasher.hexdigest()[:16]
    return _toolchain_tag


def _digest(*parts: object) -> str:
    """Stable content address of the given parts (JSON-canonicalized),
    qualified by the toolchain fingerprint."""
    hasher = hashlib.sha256()
    hasher.update(_toolchain_fingerprint().encode())
    for part in parts:
        hasher.update(json.dumps(part, sort_keys=True,
                                 ensure_ascii=False).encode("utf-8"))
        hasher.update(b"\x00")
    return hasher.hexdigest()


class _LruMap:
    """Tiny bounded LRU dict (thread-unsafe; callers hold the cache lock)."""

    __slots__ = ("max_entries", "_map")

    def __init__(self, max_entries: int):
        self.max_entries = max_entries
        self._map: "OrderedDict[str, object]" = OrderedDict()

    def get(self, key: str):
        value = self._map.get(key)
        if value is not None:
            self._map.move_to_end(key)
        return value

    def put(self, key: str, value: object) -> None:
        self._map[key] = value
        self._map.move_to_end(key)
        while len(self._map) > self.max_entries:
            self._map.popitem(last=False)

    def pop(self, key: str) -> None:
        self._map.pop(key, None)

    def keys(self) -> List[str]:
        """Keys in recency order, least recently used first."""
        return list(self._map)

    def __len__(self) -> int:
        return len(self._map)

    def clear(self) -> None:
        self._map.clear()


def _parse_origin(url: str):
    """``host:port`` (with or without a scheme prefix) -> ``(host, port)``."""
    text = url.strip()
    if "//" in text:
        text = text.split("//", 1)[1]
    host, _sep, port_text = text.rstrip("/").partition(":")
    if not host or not port_text.isdigit():
        raise ValueError(
            f"artifact source must look like 'host:port', got {url!r}")
    return host, int(port_text)


class RemoteArtifactSource:
    """Fetch-by-hash tier of the artifact data plane.

    Dials ``GET /artifact/<key>`` on each ``fetchFrom`` URL in order
    (frontend origin first, then any peer-worker hints) and returns the
    first artifact payload served.  A key every source 404s is
    negative-cached, so repeated misses — e.g. a sweep whose origin
    restarted with an empty cache — cost one round of fetches, not one
    per job; transport errors are *not* negative-cached (the artifact
    may well exist, the source was just unreachable).  Prefetch
    announcements clear matching negative entries (see
    :meth:`forget_negative`): the origin announcing a key is a stronger
    signal than a stale 404.

    Uses ``http.client`` directly rather than the high-level SimClient:
    this module sits inside the runner's deterministic closure and must
    not drag the client stack (and its clock use) into that scope.

    Every attempt feeds ``repro_artifact_fetch_total{outcome=...}`` and
    the ``repro_artifact_fetch_seconds`` histogram on the metrics plane.
    """

    DEFAULT_TIMEOUT_S = 10.0

    def __init__(self, timeout_s: float = DEFAULT_TIMEOUT_S,
                 negative_entries: int = 512):
        self.timeout_s = timeout_s
        self._lock = threading.Lock()
        self._negative = _LruMap(negative_entries)
        self._hits = 0
        self._misses = 0
        self._errors = 0
        self._negative_hits = 0

    def stats(self) -> dict:
        with self._lock:
            return {"hits": self._hits, "misses": self._misses,
                    "errors": self._errors,
                    "negativeHits": self._negative_hits}

    def forget_negative(self, keys: Sequence[str]) -> None:
        """Drop negative-cache entries for the given keys."""
        with self._lock:
            for key in keys:
                self._negative.pop(key)

    def fetch(self, key: str, fetch_from: Sequence[str]) -> Optional[dict]:
        """First artifact payload any source serves for *key*, else None."""
        with self._lock:
            if self._negative.get(key) is not None:
                self._negative_hits += 1
                _FETCHES.inc(outcome="negativeHit")
                return None
        started = time.perf_counter()
        artifact = None
        saw_error = False
        for url in fetch_from:
            status, data = self._get(url, key)
            if status == 200 and isinstance(data, dict) \
                    and isinstance(data.get("artifact"), dict):
                artifact = data["artifact"]
                break
            if status != 404:
                saw_error = True
        _FETCH_SECONDS.observe(time.perf_counter() - started)
        with self._lock:
            if artifact is not None:
                self._hits += 1
                _FETCHES.inc(outcome="hit")
            elif saw_error:
                self._errors += 1
                _FETCHES.inc(outcome="error")
            else:
                self._misses += 1
                _FETCHES.inc(outcome="miss")
                if fetch_from:
                    # a clean 404 from every source: remember the miss
                    self._negative.put(key, True)
        return artifact

    def _get(self, url: str, key: str):
        """``(status, parsed body)`` — status 0 on transport/parse errors."""
        try:
            host, port = _parse_origin(url)
        except ValueError:
            return 0, None
        connection = http.client.HTTPConnection(host, port,
                                                timeout=self.timeout_s)
        try:
            connection.request("GET", f"/artifact/{key}")
            response = connection.getresponse()
            raw = response.read()
            if response.status != 200:
                return response.status, None
            return 200, json.loads(raw.decode("utf-8"))
        except (OSError, ValueError, http.client.HTTPException):
            return 0, None
        finally:
            connection.close()


class ArtifactCache:
    """Content-addressed cache of compile / assemble artifacts.

    Parameters
    ----------
    directory:
        Disk-tier root for JSON-safe artifacts, shared across processes
        of one host.  ``None`` keeps the cache memory-only (the remote
        sweep worker's per-server mode).
    max_entries:
        Per-kind memory-tier capacity (LRU-evicted).
    max_disk_bytes:
        Disk-tier size budget; exceeding it on a write garbage-collects
        the least-recently-used artifacts (by file mtime — reads touch
        it) until the tier fits.  ``None`` disables the GC.
    """

    def __init__(self, directory: Optional[str] = None,
                 max_entries: int = 64,
                 max_disk_bytes: Optional[int] = DEFAULT_MAX_DISK_BYTES):
        self.directory = directory
        self.max_disk_bytes = max_disk_bytes
        self._lock = threading.Lock()
        self._compiled = _LruMap(max_entries)
        self._programs = _LruMap(max_entries)
        #: data-plane registries (frontend side): program specs by source
        #: key and compile recipes by compile key, both pinned at
        #: dispatch time so GET /artifact/<key> can answer for them
        self._sources = _LruMap(max_entries)
        self._recipes = _LruMap(max_entries)
        #: single-flight: cold keys being built right now -> the Event
        #: their waiters block on (builder crash included: the finally
        #: always signals, and waiters re-check the tiers)
        self._flights: Dict[str, threading.Event] = {}
        #: remote fetch tier; only consulted when a caller passes
        #: fetch_from sources and the kill switch is off
        self.remote = RemoteArtifactSource()
        self._hits = {"compile": 0, "assemble": 0}
        self._misses = {"compile": 0, "assemble": 0}
        self._disk_hits = 0
        self._disk_evicted = 0
        #: incrementally-maintained (files, bytes) of the disk tier —
        #: scanned once lazily, then updated per write/eviction, so the
        #: hot paths (/worker/execute replies carry stats()) never pay
        #: an O(files) directory scan.  Other processes sharing the
        #: directory can drift these; every GC pass re-syncs them from
        #: its authoritative scan.
        self._disk_files: Optional[int] = None
        self._disk_bytes = 0

    @staticmethod
    def from_env() -> "ArtifactCache":
        """Cache with the per-host default (or env-configured) disk tier."""
        return ArtifactCache(directory=_default_directory(),
                             max_disk_bytes=_max_bytes_from_env())

    # -- disk tier -----------------------------------------------------
    def _disk_read_locked(self, key: str) -> Optional[dict]:
        if self.directory is None:
            return None
        try:
            path = os.path.join(self.directory, f"{key}.json")
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return None
        try:
            # LRU touch: a served artifact should outlive cold ones when
            # the size-bounded GC picks eviction victims by mtime
            os.utime(path, None)
        except OSError:
            pass
        return data if isinstance(data, dict) else None

    def _disk_write_locked(self, key: str, payload: dict) -> None:
        if self.directory is None:
            return
        try:
            os.makedirs(self.directory, exist_ok=True)
            target = os.path.join(self.directory, f"{key}.json")
            try:
                previous_size = os.path.getsize(target)
            except OSError:
                previous_size = None
            fd, temp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle)
                size = os.path.getsize(temp)
                os.replace(temp, target)
            except BaseException:
                try:
                    os.unlink(temp)
                except OSError:
                    pass
                raise
            if self._disk_files is not None:
                if previous_size is None:
                    self._disk_files += 1
                    self._disk_bytes += size
                else:
                    self._disk_bytes += size - previous_size
            if self.max_disk_bytes is not None \
                    and self._disk_usage_locked()[1] > self.max_disk_bytes:
                self._disk_gc_locked()
        except OSError:
            # read-only tmp, disk full, ...: degrade to the memory tier
            self.directory = None

    def _disk_entries(self) -> List[tuple]:
        """``(mtime_ns, size, path)`` of every artifact on disk."""
        entries = []
        with os.scandir(self.directory) as scan:
            for entry in scan:
                if not entry.name.endswith(".json"):
                    continue
                try:
                    info = entry.stat()
                except OSError:
                    continue
                entries.append((info.st_mtime_ns, info.st_size,
                                entry.path))
        return entries

    def _disk_usage_locked(self) -> tuple:
        """``(files, bytes)`` of the disk tier — scanned lazily once,
        incrementally maintained afterwards (callers hold the lock)."""
        if self._disk_files is None:
            try:
                entries = self._disk_entries()
            except OSError:
                return 0, 0
            self._disk_files = len(entries)
            self._disk_bytes = sum(size for _m, size, _p in entries)
        return self._disk_files, self._disk_bytes

    def _disk_gc_locked(self) -> None:
        """Evict least-recently-used artifacts until the tier fits.

        Only runs when the (incrementally-tracked) usage exceeds the
        budget, and its scan is authoritative: the counters are re-synced
        from it, so drift from other processes sharing the directory
        self-corrects here.  Never raises: eviction is an
        accelerator-maintenance action, and a GC that cannot stat or
        unlink simply leaves the file for the next pass."""
        if self.max_disk_bytes is None or self.directory is None:
            return
        try:
            entries = self._disk_entries()
        except OSError:
            return
        total = sum(size for _mtime, size, _path in entries)
        files = len(entries)
        entries.sort()                     # oldest mtime first
        for _mtime, size, path in entries:
            if total <= self.max_disk_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            self._disk_evicted += 1
            total -= size
            files -= 1
        self._disk_files = files
        self._disk_bytes = total

    # -- artifacts -----------------------------------------------------
    def compiled_assembly(self, c_source: str, opt_level: int,
                          fetch_from: Optional[Sequence[str]] = None) -> str:
        """C source -> assembly, keyed by (source hash, opt level).

        Tier order on a cold key: memory -> disk -> remote fetch (when
        *fetch_from* names data-plane sources and fetching is enabled)
        -> local compile.  Concurrent requests for one cold key are
        single-flighted: the first caller builds while the rest wait on
        it and then take the memory tier, so a miss storm costs one
        compile (or one fetch), not N.

        Only successful compilations are cached; a failing translation
        unit raises :class:`repro.explore.runner.JobError` with the same
        message a cold compile produces, so failure records are
        identical warm or cold.
        """
        from repro.explore.runner import JobError
        key = _digest("compile", c_source, int(opt_level))
        while True:
            with self._lock:
                cached = self._compiled.get(key)
                if cached is not None:
                    self._hits["compile"] += 1
                    _CACHE_REQUESTS.inc(tier="compile", outcome="hit")
                    return cached
                disk = self._disk_read_locked(key)
                if disk is not None \
                        and isinstance(disk.get("assembly"), str):
                    self._hits["compile"] += 1
                    self._disk_hits += 1
                    _CACHE_REQUESTS.inc(tier="compile", outcome="diskHit")
                    self._compiled.put(key, disk["assembly"])
                    return disk["assembly"]
                flight = self._flights.get(key)
                if flight is None:
                    self._flights[key] = threading.Event()
                    break                    # this thread is the builder
            # another thread is building this key: wait (bounded, so a
            # lost signal cannot hang callers) and re-check the tiers —
            # if the builder failed, one waiter becomes the next builder
            flight.wait(5.0)
        try:
            return self._build_compiled_artifact(key, c_source,
                                               int(opt_level), fetch_from,
                                               JobError)
        finally:
            with self._lock:
                event = self._flights.pop(key, None)
            if event is not None:
                event.set()

    def _build_compiled_artifact(self, key: str, c_source: str,
                               opt_level: int,
                               fetch_from: Optional[Sequence[str]],
                               job_error: type) -> str:
        """Single-flight builder body: remote fetch, then local
        compile.  Exactly one builder per key runs here (the flight
        entry guarantees it); the shared maps are only touched under
        ``self._lock``."""
        if fetch_from and fetch_enabled():
            artifact = self.remote.fetch(key, list(fetch_from))
            if artifact is not None and artifact.get("kind") == "compileError" \
                    and isinstance(artifact.get("error"), str):
                # the compiler is deterministic: the origin's failure
                # message is exactly what a local compile would raise
                # (and like local failures, it is never cached)
                raise job_error(artifact["error"])
            if artifact is not None \
                    and isinstance(artifact.get("assembly"), str):
                with self._lock:
                    _CACHE_REQUESTS.inc(tier="compile", outcome="remoteHit")
                    self._compiled.put(key, artifact["assembly"])
                    self._disk_write_locked(
                        key, {"assembly": artifact["assembly"]})
                return artifact["assembly"]
        with self._lock:
            self._misses["compile"] += 1
            _CACHE_REQUESTS.inc(tier="compile", outcome="miss")
        from repro.compiler.driver import compile_c
        result = compile_c(c_source, opt_level)
        if not result.success:
            raise job_error(f"C compilation failed at O{opt_level}: "
                            f"{result.errors}")
        with self._lock:
            self._compiled.put(key, result.assembly)
            self._disk_write_locked(key, {"assembly": result.assembly})
        return result.assembly

    def assembled_program(self, source: str, stack_size: int,
                          entry: Optional[object],
                          memory_locations: List[dict]):
        """Assembly source -> assembled ``Program``, keyed by everything
        that shapes the memory layout (stack size, entry, data spec).

        Memory tier only: ``Program`` carries compiled expression code,
        which is not JSON-serializable — but it *is* safely shareable
        across jobs of one process (assembled programs are immutable by
        the decode-cache contract; the initial memory image is copied
        per ``Cpu``)."""
        key = _digest("assemble", source, int(stack_size), entry,
                      list(memory_locations))
        with self._lock:
            cached = self._programs.get(key)
            if cached is not None:
                self._hits["assemble"] += 1
                _CACHE_REQUESTS.inc(tier="assemble", outcome="hit")
                return cached
            self._misses["assemble"] += 1
            _CACHE_REQUESTS.inc(tier="assemble", outcome="miss")
        from repro.asm.parser import Assembler
        from repro.memory.layout import MemoryLocation
        program = Assembler().assemble(
            source, entry=entry,
            memory_locations=[MemoryLocation.from_json(d)
                              for d in memory_locations],
            stack_size=stack_size)
        with self._lock:
            self._programs.put(key, program)
        return program

    # -- data plane ----------------------------------------------------
    def register_program(self, program_spec: dict, opt_level: int) -> dict:
        """Dispatch-time registration (frontend side).

        Pins *program_spec* under a content key — and, for C programs,
        its compile recipe under the compile key — so
        :meth:`serve_artifact` can answer ``GET /artifact/<key>`` for
        both.  Returns the wire reference (``sourceKey`` plus optional
        ``compileKey``/``optimizeLevel``) that replaces the inline
        program in ``/worker/execute`` payloads."""
        spec = dict(program_spec)
        source_key = _digest("source", spec)
        ref = {"sourceKey": source_key}
        c_source = spec.get("c")
        with self._lock:
            self._sources.put(source_key, spec)
            if isinstance(c_source, str):
                compile_key = _digest("compile", c_source, int(opt_level))
                ref["compileKey"] = compile_key
                ref["optimizeLevel"] = int(opt_level)
                self._recipes.put(compile_key, (c_source, int(opt_level)))
        return ref

    def serve_artifact(self, key: str) -> Optional[dict]:
        """Artifact payload for ``GET /artifact/<key>``, or ``None``.

        Tiers, in order: compiled assembly (memory, then disk),
        registered program specs, and compile recipes.  A recipe key
        compiles on demand — single-flighted, so N workers fetching one
        cold key cost this process one compile — and a failing
        translation unit becomes a ``compileError`` artifact rather
        than an HTTP error, letting workers raise the exact message a
        local compile produces."""
        with self._lock:
            cached = self._compiled.get(key)
            if cached is not None:
                return {"kind": "assembly", "assembly": cached}
            spec = self._sources.get(key)
            if spec is not None:
                return {"kind": "source", "program": dict(spec)}
            disk = self._disk_read_locked(key)
            if disk is not None and isinstance(disk.get("assembly"), str):
                self._compiled.put(key, disk["assembly"])
                return {"kind": "assembly", "assembly": disk["assembly"]}
            recipe = self._recipes.get(key)
        if recipe is None:
            return None
        from repro.explore.runner import JobError
        c_source, opt_level = recipe
        try:
            assembly = self.compiled_assembly(c_source, opt_level)
        except JobError as exc:
            return {"kind": "compileError", "error": str(exc)}
        return {"kind": "assembly", "assembly": assembly}

    def resolve_source(self, ref: dict) -> dict:
        """Worker-side: artifact reference -> the original program spec.

        Tries the local registry first (the warm-push prefetch lands
        specs there), then a remote fetch over ``ref["fetchFrom"]``.
        Raises :class:`ArtifactUnavailable` — not a job failure — when
        the data plane cannot produce the spec; the dispatcher catches
        the matching reply kind and re-sends the job inline."""
        key = ref.get("sourceKey")
        if not isinstance(key, str) or not key:
            raise ArtifactUnavailable(
                "artifact reference carries no sourceKey")
        with self._lock:
            spec = self._sources.get(key)
        if spec is not None:
            return dict(spec)
        if fetch_enabled():
            artifact = self.remote.fetch(key,
                                         list(ref.get("fetchFrom") or ()))
            if artifact is not None and artifact.get("kind") == "source" \
                    and isinstance(artifact.get("program"), dict):
                spec = artifact["program"]
                with self._lock:
                    self._sources.put(key, spec)
                return dict(spec)
        raise ArtifactUnavailable(
            f"source artifact {key[:12]} not available from any "
            f"fetch source")

    def prefetch(self, refs: Sequence[dict]) -> int:
        """Warm-push: start fetching the announced artifacts now, so the
        transfers overlap the first jobs' simulation time.

        Fetches run on one background daemon thread (best-effort —
        errors only lose the warm-up; the per-job miss path still
        works), and the announcement clears matching negative-cache
        entries first: the origin announcing a key is a stronger signal
        than a stale 404.  Returns the number of accepted references,
        0 when fetching is disabled."""
        if not fetch_enabled():
            return 0
        accepted = [dict(ref) for ref in refs
                    if isinstance(ref, dict)
                    and isinstance(ref.get("sourceKey"), str)]
        if not accepted:
            return 0
        announced = []
        for ref in accepted:
            for field in ("sourceKey", "compileKey"):
                value = ref.get(field)
                if isinstance(value, str):
                    announced.append(value)
        self.remote.forget_negative(announced)
        thread = threading.Thread(target=self._prefetch_refs,
                                  args=(accepted,), daemon=True,
                                  name="artifact-prefetch")
        thread.start()
        return len(accepted)

    def _prefetch_refs(self, refs: List[dict]) -> None:
        for ref in refs:
            fetch_from = [url for url in (ref.get("fetchFrom") or ())
                          if isinstance(url, str)]
            if not fetch_from:
                continue
            source_key = ref["sourceKey"]
            with self._lock:
                have_source = self._sources.get(source_key) is not None
            if not have_source:
                artifact = self.remote.fetch(source_key, fetch_from)
                if artifact is not None \
                        and artifact.get("kind") == "source" \
                        and isinstance(artifact.get("program"), dict):
                    with self._lock:
                        self._sources.put(source_key, artifact["program"])
            compile_key = ref.get("compileKey")
            if not isinstance(compile_key, str):
                continue
            with self._lock:
                have_compiled = \
                    self._compiled.get(compile_key) is not None
            if have_compiled:
                continue
            artifact = self.remote.fetch(compile_key, fetch_from)
            if artifact is not None and artifact.get("kind") == "assembly" \
                    and isinstance(artifact.get("assembly"), str):
                with self._lock:
                    self._compiled.put(compile_key, artifact["assembly"])
                    self._disk_write_locked(
                        compile_key, {"assembly": artifact["assembly"]})

    def heartbeat_stats(self) -> dict:
        """:meth:`stats` plus the compiled-artifact key set (most recent
        last, capped at :data:`MAX_ADVERTISED_KEYS`).  Heartbeats carry
        this to the frontend registry, which lets the fleet backend hint
        peer workers as alternate ``fetchFrom`` sources for keys they
        already hold."""
        data = self.stats()
        with self._lock:
            keys = self._compiled.keys()
        data["keys"] = {"compiled": keys[-MAX_ADVERTISED_KEYS:]}
        return data

    # -- introspection -------------------------------------------------
    def stats(self) -> dict:
        fetch = self.remote.stats()
        with self._lock:
            data = {
                "compile": {"hits": self._hits["compile"],
                            "misses": self._misses["compile"],
                            "entries": len(self._compiled)},
                "assemble": {"hits": self._hits["assemble"],
                             "misses": self._misses["assemble"],
                             "entries": len(self._programs)},
                "diskHits": self._disk_hits,
                "directory": self.directory,
                "fetch": fetch,
            }
            disk = {"maxBytes": self.max_disk_bytes,
                    "evicted": self._disk_evicted}
            if self.directory is not None:
                files, size = self._disk_usage_locked()
                disk["files"] = files
                disk["bytes"] = size
            data["disk"] = disk
            return data

    def clear(self) -> None:
        """Drop the memory tier (the disk tier is content-addressed and
        never needs invalidation)."""
        with self._lock:
            self._compiled.clear()
            self._programs.clear()
            self._sources.clear()
            self._recipes.clear()


_default: Optional[ArtifactCache] = None
_default_lock = threading.Lock()


def default_cache() -> ArtifactCache:
    """The process-wide cache sweep runners consult (lazily built from
    the environment; worker processes each build their own on first job,
    all pointing at the same per-host disk directory)."""
    global _default
    if _default is None:
        with _default_lock:
            if _default is None:
                _default = ArtifactCache.from_env()
    return _default


def reset_default_cache() -> None:
    """Forget the process-default cache (tests re-point the disk tier
    via ``REPRO_ARTIFACT_DIR`` and need the lazy singleton rebuilt)."""
    global _default
    with _default_lock:
        _default = None
