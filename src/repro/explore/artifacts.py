"""Content-addressed artifact cache for per-job sweep setup.

Design points that share a program pay the same setup bill per job —
compile the C source, assemble the assembly — because crash isolation
keeps jobs stateless.  The cache removes that waste without giving up
statelessness: artifacts are addressed purely by the *content* of their
inputs (SHA-256 of source + every layout-relevant parameter), so a hit
is byte-for-byte the artifact a cold build would have produced and
records stay bit-identical whether the cache was warm or cold.

Two tiers:

* **memory** — per-process LRU maps.  Holds compiled assembly *and*
  assembled :class:`repro.asm.program.Program` objects (a ``Program`` is
  immutable-once-assembled by the decode-cache contract, so sharing one
  instance across jobs in a process is safe; every ``Cpu`` copies the
  data segment before running).  This is the tier a remote sweep worker
  keeps per server.
* **disk** — an optional content-addressed directory holding the
  JSON-safe artifacts only (compiled assembly).  Worker *processes* of
  one host all point at the same directory, so a process-pool sweep
  compiles each distinct (C source, opt level) exactly once per host,
  not once per worker.  Writes are atomic (temp file + ``os.replace``)
  and any I/O failure silently degrades to the memory tier — the cache
  is an accelerator, never a correctness dependency.

``repro.explore.runner`` consults the process-default cache (see
:func:`default_cache`) for every job, on every execution backend.  The
default disk directory is per-host/per-user under the system temp dir
and can be redirected with ``REPRO_ARTIFACT_DIR=/path`` or disabled
entirely with ``REPRO_ARTIFACT_DIR=off``.

The disk tier is **size-bounded**: long-lived fleet workers compile
thousands of distinct programs, and a content-addressed store never
invalidates on its own.  Writes trigger an LRU garbage collection by
file mtime (reads touch the mtime, so recently-served artifacts
survive) whenever the tier exceeds ``max_disk_bytes`` — default
:data:`DEFAULT_MAX_DISK_BYTES`, overridable with
``REPRO_ARTIFACT_MAX_BYTES`` (``0``/``unlimited`` disables the GC).
Hit/miss/size stats are surfaced on the worker's ``/worker/status``
endpoint via :meth:`ArtifactCache.stats`.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from collections import OrderedDict
from typing import List, Optional

from repro.obs.metrics import default_registry

__all__ = ["ArtifactCache", "default_cache", "reset_default_cache",
           "ARTIFACT_DIR_ENV", "ARTIFACT_MAX_BYTES_ENV",
           "DEFAULT_MAX_DISK_BYTES"]

# this module sits inside the runner's deterministic closure, so the
# instrumentation is counter bumps only (repro.obs.metrics is clock- and
# environment-free by contract)
_CACHE_REQUESTS = default_registry().counter(
    "repro_artifact_cache_requests_total",
    "Artifact cache lookups, by tier and outcome")

#: environment override for the disk tier ("off"/"none"/"0" disables it)
ARTIFACT_DIR_ENV = "REPRO_ARTIFACT_DIR"

#: environment override for the disk-tier size budget in bytes
#: ("0"/"unlimited" disables garbage collection)
ARTIFACT_MAX_BYTES_ENV = "REPRO_ARTIFACT_MAX_BYTES"

#: default disk-tier budget: generous for a laptop, tight enough that a
#: fleet worker's tmp dir cannot grow without bound
DEFAULT_MAX_DISK_BYTES = 256 * 1024 * 1024

_DISABLED = ("off", "none", "0", "")


def _max_bytes_from_env() -> Optional[int]:
    env = os.environ.get(ARTIFACT_MAX_BYTES_ENV)
    if env is None:
        return DEFAULT_MAX_DISK_BYTES
    text = env.strip().lower()
    if text in ("", "0", "off", "none", "unlimited"):
        return None
    try:
        value = int(text)
    except ValueError:
        return DEFAULT_MAX_DISK_BYTES
    return value if value > 0 else None


def _default_directory() -> Optional[str]:
    env = os.environ.get(ARTIFACT_DIR_ENV)
    if env is not None:
        return None if env.strip().lower() in _DISABLED else env
    uid = getattr(os, "getuid", lambda: "any")()
    return os.path.join(tempfile.gettempdir(), f"repro-artifacts-{uid}")


_toolchain_tag: Optional[str] = None


def _toolchain_fingerprint() -> str:
    """Fingerprint of the code that *produces* artifacts.

    The disk tier outlives the process — and the repo checkout — so a
    content address must cover the toolchain, not just its inputs: an
    artifact compiled by yesterday's code generator is not the artifact
    today's would produce, and serving it would silently break the
    byte-identity pin between backends with differently-warmed caches.
    Hashing (path, size, mtime) of every ``repro.asm`` / ``repro.compiler``
    source file is cheap (one stat per file, once per process) and
    over-invalidates at worst (a touched file drops cache hits, never
    correctness)."""
    global _toolchain_tag
    if _toolchain_tag is None:
        import repro.asm
        import repro.compiler
        hasher = hashlib.sha256()
        for package in (repro.asm, repro.compiler):
            root = os.path.dirname(package.__file__)
            for name in sorted(os.listdir(root)):
                if not name.endswith(".py"):
                    continue
                try:
                    info = os.stat(os.path.join(root, name))
                    hasher.update(f"{name}:{info.st_size}:"
                                  f"{info.st_mtime_ns}".encode())
                except OSError:  # pragma: no cover - zip imports etc.
                    hasher.update(name.encode())
        _toolchain_tag = hasher.hexdigest()[:16]
    return _toolchain_tag


def _digest(*parts: object) -> str:
    """Stable content address of the given parts (JSON-canonicalized),
    qualified by the toolchain fingerprint."""
    hasher = hashlib.sha256()
    hasher.update(_toolchain_fingerprint().encode())
    for part in parts:
        hasher.update(json.dumps(part, sort_keys=True,
                                 ensure_ascii=False).encode("utf-8"))
        hasher.update(b"\x00")
    return hasher.hexdigest()


class _LruMap:
    """Tiny bounded LRU dict (thread-unsafe; callers hold the cache lock)."""

    __slots__ = ("max_entries", "_map")

    def __init__(self, max_entries: int):
        self.max_entries = max_entries
        self._map: "OrderedDict[str, object]" = OrderedDict()

    def get(self, key: str):
        value = self._map.get(key)
        if value is not None:
            self._map.move_to_end(key)
        return value

    def put(self, key: str, value: object) -> None:
        self._map[key] = value
        self._map.move_to_end(key)
        while len(self._map) > self.max_entries:
            self._map.popitem(last=False)

    def __len__(self) -> int:
        return len(self._map)

    def clear(self) -> None:
        self._map.clear()


class ArtifactCache:
    """Content-addressed cache of compile / assemble artifacts.

    Parameters
    ----------
    directory:
        Disk-tier root for JSON-safe artifacts, shared across processes
        of one host.  ``None`` keeps the cache memory-only (the remote
        sweep worker's per-server mode).
    max_entries:
        Per-kind memory-tier capacity (LRU-evicted).
    max_disk_bytes:
        Disk-tier size budget; exceeding it on a write garbage-collects
        the least-recently-used artifacts (by file mtime — reads touch
        it) until the tier fits.  ``None`` disables the GC.
    """

    def __init__(self, directory: Optional[str] = None,
                 max_entries: int = 64,
                 max_disk_bytes: Optional[int] = DEFAULT_MAX_DISK_BYTES):
        self.directory = directory
        self.max_disk_bytes = max_disk_bytes
        self._lock = threading.Lock()
        self._compiled = _LruMap(max_entries)
        self._programs = _LruMap(max_entries)
        self._hits = {"compile": 0, "assemble": 0}
        self._misses = {"compile": 0, "assemble": 0}
        self._disk_hits = 0
        self._disk_evicted = 0
        #: incrementally-maintained (files, bytes) of the disk tier —
        #: scanned once lazily, then updated per write/eviction, so the
        #: hot paths (/worker/execute replies carry stats()) never pay
        #: an O(files) directory scan.  Other processes sharing the
        #: directory can drift these; every GC pass re-syncs them from
        #: its authoritative scan.
        self._disk_files: Optional[int] = None
        self._disk_bytes = 0

    @staticmethod
    def from_env() -> "ArtifactCache":
        """Cache with the per-host default (or env-configured) disk tier."""
        return ArtifactCache(directory=_default_directory(),
                             max_disk_bytes=_max_bytes_from_env())

    # -- disk tier -----------------------------------------------------
    def _disk_read_locked(self, key: str) -> Optional[dict]:
        if self.directory is None:
            return None
        try:
            path = os.path.join(self.directory, f"{key}.json")
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return None
        try:
            # LRU touch: a served artifact should outlive cold ones when
            # the size-bounded GC picks eviction victims by mtime
            os.utime(path, None)
        except OSError:
            pass
        return data if isinstance(data, dict) else None

    def _disk_write_locked(self, key: str, payload: dict) -> None:
        if self.directory is None:
            return
        try:
            os.makedirs(self.directory, exist_ok=True)
            target = os.path.join(self.directory, f"{key}.json")
            try:
                previous_size = os.path.getsize(target)
            except OSError:
                previous_size = None
            fd, temp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle)
                size = os.path.getsize(temp)
                os.replace(temp, target)
            except BaseException:
                try:
                    os.unlink(temp)
                except OSError:
                    pass
                raise
            if self._disk_files is not None:
                if previous_size is None:
                    self._disk_files += 1
                    self._disk_bytes += size
                else:
                    self._disk_bytes += size - previous_size
            if self.max_disk_bytes is not None \
                    and self._disk_usage_locked()[1] > self.max_disk_bytes:
                self._disk_gc_locked()
        except OSError:
            # read-only tmp, disk full, ...: degrade to the memory tier
            self.directory = None

    def _disk_entries(self) -> List[tuple]:
        """``(mtime_ns, size, path)`` of every artifact on disk."""
        entries = []
        with os.scandir(self.directory) as scan:
            for entry in scan:
                if not entry.name.endswith(".json"):
                    continue
                try:
                    info = entry.stat()
                except OSError:
                    continue
                entries.append((info.st_mtime_ns, info.st_size,
                                entry.path))
        return entries

    def _disk_usage_locked(self) -> tuple:
        """``(files, bytes)`` of the disk tier — scanned lazily once,
        incrementally maintained afterwards (callers hold the lock)."""
        if self._disk_files is None:
            try:
                entries = self._disk_entries()
            except OSError:
                return 0, 0
            self._disk_files = len(entries)
            self._disk_bytes = sum(size for _m, size, _p in entries)
        return self._disk_files, self._disk_bytes

    def _disk_gc_locked(self) -> None:
        """Evict least-recently-used artifacts until the tier fits.

        Only runs when the (incrementally-tracked) usage exceeds the
        budget, and its scan is authoritative: the counters are re-synced
        from it, so drift from other processes sharing the directory
        self-corrects here.  Never raises: eviction is an
        accelerator-maintenance action, and a GC that cannot stat or
        unlink simply leaves the file for the next pass."""
        if self.max_disk_bytes is None or self.directory is None:
            return
        try:
            entries = self._disk_entries()
        except OSError:
            return
        total = sum(size for _mtime, size, _path in entries)
        files = len(entries)
        entries.sort()                     # oldest mtime first
        for _mtime, size, path in entries:
            if total <= self.max_disk_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            self._disk_evicted += 1
            total -= size
            files -= 1
        self._disk_files = files
        self._disk_bytes = total

    # -- artifacts -----------------------------------------------------
    def compiled_assembly(self, c_source: str, opt_level: int) -> str:
        """C source -> assembly, keyed by (source hash, opt level).

        Only successful compilations are cached; a failing translation
        unit raises :class:`repro.explore.runner.JobError` with the same
        message a cold compile produces, so failure records are
        identical warm or cold.
        """
        key = _digest("compile", c_source, int(opt_level))
        with self._lock:
            cached = self._compiled.get(key)
            if cached is not None:
                self._hits["compile"] += 1
                _CACHE_REQUESTS.inc(tier="compile", outcome="hit")
                return cached
            disk = self._disk_read_locked(key)
            if disk is not None and isinstance(disk.get("assembly"), str):
                self._hits["compile"] += 1
                self._disk_hits += 1
                _CACHE_REQUESTS.inc(tier="compile", outcome="diskHit")
                self._compiled.put(key, disk["assembly"])
                return disk["assembly"]
            self._misses["compile"] += 1
            _CACHE_REQUESTS.inc(tier="compile", outcome="miss")
        from repro.compiler.driver import compile_c
        from repro.explore.runner import JobError
        result = compile_c(c_source, int(opt_level))
        if not result.success:
            raise JobError(f"C compilation failed at O{int(opt_level)}: "
                           f"{result.errors}")
        with self._lock:
            self._compiled.put(key, result.assembly)
            self._disk_write_locked(key, {"assembly": result.assembly})
        return result.assembly

    def assembled_program(self, source: str, stack_size: int,
                          entry: Optional[object],
                          memory_locations: List[dict]):
        """Assembly source -> assembled ``Program``, keyed by everything
        that shapes the memory layout (stack size, entry, data spec).

        Memory tier only: ``Program`` carries compiled expression code,
        which is not JSON-serializable — but it *is* safely shareable
        across jobs of one process (assembled programs are immutable by
        the decode-cache contract; the initial memory image is copied
        per ``Cpu``)."""
        key = _digest("assemble", source, int(stack_size), entry,
                      list(memory_locations))
        with self._lock:
            cached = self._programs.get(key)
            if cached is not None:
                self._hits["assemble"] += 1
                _CACHE_REQUESTS.inc(tier="assemble", outcome="hit")
                return cached
            self._misses["assemble"] += 1
            _CACHE_REQUESTS.inc(tier="assemble", outcome="miss")
        from repro.asm.parser import Assembler
        from repro.memory.layout import MemoryLocation
        program = Assembler().assemble(
            source, entry=entry,
            memory_locations=[MemoryLocation.from_json(d)
                              for d in memory_locations],
            stack_size=stack_size)
        with self._lock:
            self._programs.put(key, program)
        return program

    # -- introspection -------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            data = {
                "compile": {"hits": self._hits["compile"],
                            "misses": self._misses["compile"],
                            "entries": len(self._compiled)},
                "assemble": {"hits": self._hits["assemble"],
                             "misses": self._misses["assemble"],
                             "entries": len(self._programs)},
                "diskHits": self._disk_hits,
                "directory": self.directory,
            }
            disk = {"maxBytes": self.max_disk_bytes,
                    "evicted": self._disk_evicted}
            if self.directory is not None:
                files, size = self._disk_usage_locked()
                disk["files"] = files
                disk["bytes"] = size
            data["disk"] = disk
            return data

    def clear(self) -> None:
        """Drop the memory tier (the disk tier is content-addressed and
        never needs invalidation)."""
        with self._lock:
            self._compiled.clear()
            self._programs.clear()


_default: Optional[ArtifactCache] = None
_default_lock = threading.Lock()


def default_cache() -> ArtifactCache:
    """The process-wide cache sweep runners consult (lazily built from
    the environment; worker processes each build their own on first job,
    all pointing at the same per-host disk directory)."""
    global _default
    if _default is None:
        with _default_lock:
            if _default is None:
                _default = ArtifactCache.from_env()
    return _default


def reset_default_cache() -> None:
    """Forget the process-default cache (tests re-point the disk tier
    via ``REPRO_ARTIFACT_DIR`` and need the lazy singleton rebuilt)."""
    global _default
    with _default_lock:
        _default = None
