"""Sweep execution engine: plan -> run (serial or pooled) -> records.

``run_sweep`` is the one entry point every layer shares (CLI mode, server
endpoints, the ported ablation benches, the scaling benchmark).  With
``workers=0`` it is literally the hand-rolled serial loop the ablation
suites used to be; with ``workers=N`` the identical job payloads run on a
:class:`repro.explore.pool.ProcessWorkerPool`.  Records carry no host-side
timing, so the two modes produce **bit-identical per-run statistics** —
the property the scaling benchmark pins — while wall-clock scales with the
worker count.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Union

from repro.explore.plan import Job, plan_jobs
from repro.explore.pool import JobResult, ProcessWorkerPool
from repro.explore.report import SweepReport
from repro.explore.runner import execute_payload
from repro.explore.spec import SweepSpec
from repro.explore.store import ResultStore

__all__ = ["SweepRun", "run_sweep", "RUNNER_TASK"]

#: spawn-safe dotted reference of the worker task
RUNNER_TASK = "repro.explore.runner:execute_payload"


@dataclass
class SweepRun:
    """A finished sweep: ordered records plus execution metadata."""

    spec: SweepSpec
    jobs: List[Job]
    records: List[dict] = field(default_factory=list)
    workers: int = 0
    elapsed_s: float = 0.0

    @property
    def ok_records(self) -> List[dict]:
        return [r for r in self.records if r.get("ok")]

    @property
    def failures(self) -> List[dict]:
        return [r for r in self.records if not r.get("ok")]

    def report(self, metric: str = "cycles") -> SweepReport:
        return SweepReport(self.records, name=self.spec.name, metric=metric)

    def to_json(self) -> dict:
        return {
            "name": self.spec.name,
            "jobs": len(self.jobs),
            "workers": self.workers,
            "elapsedS": round(self.elapsed_s, 4),
            "ok": len(self.ok_records),
            "failed": len(self.failures),
            "records": self.records,
        }


def _record_of(job: Job, result: JobResult) -> dict:
    """Merge a pool outcome with its planned job into one JSONL record."""
    record = {"index": job.index, "label": job.label,
              "point": dict(job.point), "ok": result.ok}
    if result.ok:
        record.update(result.value)       # {"stats": ..., ["statistics"]}
    else:
        record["kind"] = result.kind
        record["error"] = result.error
    return record


def run_sweep(spec: Union[SweepSpec, dict], workers: int = 0,
              job_timeout_s: Optional[float] = None,
              store: Optional[ResultStore] = None,
              on_record: Optional[Callable[[dict], None]] = None,
              jobs: Optional[List[Job]] = None,
              start_method: Optional[str] = None) -> SweepRun:
    """Plan and execute a sweep.

    Parameters
    ----------
    spec:
        A :class:`SweepSpec` or its JSON dict form.
    workers:
        ``0`` — run every job in-process, in order (the serial baseline).
        ``>= 1`` — run on a process pool of that size with crash isolation
        and the given per-job timeout.
    job_timeout_s:
        Per-job wall-clock budget (pool mode only; the serial loop runs a
        job to completion — its cycle budget already bounds it).
    store:
        Optional :class:`ResultStore`; records are appended in job-index
        order after the run completes, so the JSONL mirror is deterministic.
    on_record:
        Progress callback, fired in completion order.
    jobs:
        A job list previously produced by :func:`plan_jobs` for this very
        spec — callers that already planned (the server's submit path)
        pass it through so a big grid is never expanded twice.  Planning
        is deterministic, so this is purely an optimization.
    start_method:
        Multiprocessing start method for the pool.  Single-threaded
        callers (CLI, benches) keep the platform default (``fork`` on
        Linux: fastest); **multi-threaded hosts must pass a fork-free
        method** (``forkserver``/``spawn``) — forking a threaded process
        can deadlock the child before it reaches the job loop.  The task
        is a dotted reference precisely so every method works.
    """
    if isinstance(spec, dict):
        spec = SweepSpec.from_json(spec)
    if workers < 0:
        raise ValueError("workers must be >= 0 (0 = serial)")
    if jobs is None:
        jobs = plan_jobs(spec)
    run = SweepRun(spec=spec, jobs=jobs, workers=workers)
    started = time.monotonic()
    if workers == 0:
        for job in jobs:
            t0 = time.monotonic()
            try:
                value = execute_payload(job.payload)
                result = JobResult(index=job.index, kind="ok", value=value,
                                   elapsed_s=time.monotonic() - t0)
            except Exception as exc:  # noqa: BLE001 - per-job isolation
                result = JobResult(index=job.index, kind="error",
                                   error=f"{type(exc).__name__}: {exc}",
                                   elapsed_s=time.monotonic() - t0)
            record = _record_of(job, result)
            run.records.append(record)
            if on_record is not None:
                on_record(record)
    else:
        def on_result(result: JobResult) -> None:
            if on_record is not None:
                on_record(_record_of(jobs[result.index], result))

        with ProcessWorkerPool(RUNNER_TASK, workers=workers,
                               job_timeout_s=job_timeout_s,
                               start_method=start_method) as pool:
            results = pool.map([job.payload for job in jobs],
                               on_result=on_result)
        run.records = [_record_of(job, result)
                       for job, result in zip(jobs, results)]
    run.elapsed_s = time.monotonic() - started
    if store is not None:
        store.extend(run.records)
    return run
