"""Sweep execution engine: plan -> run (on a pluggable backend) -> records.

``run_sweep`` is the one entry point every layer shares (CLI mode, server
endpoints, the ported ablation benches, the scaling benchmark).  Execution
is delegated to an :class:`repro.explore.backend.ExecutionBackend`:
``workers=0`` resolves to the in-process serial loop, ``workers=N`` to the
local process pool, and an explicit ``backend=`` (e.g. a
:class:`repro.explore.backend.RemoteBackend` over a worker fleet) plugs in
anything else.  Records carry no host-side timing, so **every backend
produces bit-identical per-run statistics** — the property the scaling
benchmark and the distributed smoke test pin — while wall-clock scales
with the backend's parallelism.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Union

from repro.explore.backend import ExecutionBackend, resolve_backend
from repro.explore.plan import Job, plan_jobs
from repro.explore.pool import JobResult
from repro.explore.report import SweepReport
from repro.explore.spec import SweepSpec
from repro.explore.store import ResultStore

__all__ = ["SweepRun", "run_sweep", "RUNNER_TASK"]

#: spawn-safe dotted reference of the worker task
RUNNER_TASK = "repro.explore.runner:execute_payload"


@dataclass
class SweepRun:
    """A finished sweep: ordered records plus execution metadata.

    ``records`` is the deterministic, backend-independent payload;
    ``backend``/``workers``/``elapsed_s``/``timings``/``execution`` are
    host-side metadata (never merged into the records, so the JSONL
    mirror stays byte-identical across backends).
    """

    spec: SweepSpec
    jobs: List[Job]
    records: List[dict] = field(default_factory=list)
    workers: int = 0
    elapsed_s: float = 0.0
    backend: str = "serial"
    #: per-job host-side timing, in job-index order:
    #: {"index", "kind", "worker", "elapsedS"}
    timings: List[dict] = field(default_factory=list)
    #: backend.describe() taken after the run (per-worker health rows)
    execution: dict = field(default_factory=dict)

    @property
    def ok_records(self) -> List[dict]:
        return [r for r in self.records if r.get("ok")]

    @property
    def failures(self) -> List[dict]:
        return [r for r in self.records if not r.get("ok")]

    def report(self, metric: str = "cycles") -> SweepReport:
        return SweepReport(self.records, name=self.spec.name, metric=metric)

    def to_json(self) -> dict:
        return {
            "name": self.spec.name,
            "jobs": len(self.jobs),
            "backend": self.backend,
            "workers": self.workers,
            "elapsedS": round(self.elapsed_s, 4),
            "ok": len(self.ok_records),
            "failed": len(self.failures),
            "records": self.records,
            "timings": self.timings,
            "execution": self.execution,
        }


def _record_of(job: Job, result: JobResult) -> dict:
    """Merge a pool outcome with its planned job into one JSONL record."""
    record = {"index": job.index, "label": job.label,
              "point": dict(job.point), "ok": result.ok}
    if result.ok:
        record.update(result.value)       # {"stats": ..., ["statistics"]}
    else:
        record["kind"] = result.kind
        record["error"] = result.error
    return record


def run_sweep(spec: Union[SweepSpec, dict], workers: int = 0,
              job_timeout_s: Optional[float] = None,
              store: Optional[ResultStore] = None,
              on_record: Optional[Callable[[dict], None]] = None,
              jobs: Optional[List[Job]] = None,
              start_method: Optional[str] = None,
              backend: Optional[ExecutionBackend] = None,
              on_result: Optional[Callable[[JobResult], None]] = None,
              on_dispatch: Optional[Callable[[int, object], None]] = None,
              cancel: Optional[object] = None) -> SweepRun:
    """Plan and execute a sweep.

    Parameters
    ----------
    spec:
        A :class:`SweepSpec` or its JSON dict form.
    workers:
        ``0`` — run every job in-process, in order (the serial baseline).
        ``>= 1`` — run on a process pool of that size with crash isolation
        and the given per-job timeout.  Ignored when ``backend`` is given.
    job_timeout_s:
        Per-job wall-clock budget (process/remote backends; the serial
        loop runs a job to completion — its cycle budget already bounds
        it).
    store:
        Optional :class:`ResultStore`; records are appended in job-index
        order after the run completes, so the JSONL mirror is deterministic.
    on_record:
        Progress callback, fired in completion order with each record.
    jobs:
        A job list previously produced by :func:`plan_jobs` for this very
        spec — callers that already planned (the server's submit path)
        pass it through so a big grid is never expanded twice.  Planning
        is deterministic, so this is purely an optimization.
    start_method:
        Multiprocessing start method for the process pool.  Single-threaded
        callers (CLI, benches) keep the platform default (``fork`` on
        Linux: fastest); **multi-threaded hosts must pass a fork-free
        method** (``forkserver``/``spawn``) — forking a threaded process
        can deadlock the child before it reaches the job loop.  The task
        is a dotted reference precisely so every method works.
    backend:
        An explicit :class:`ExecutionBackend` (e.g. ``RemoteBackend``).
        The caller keeps ownership (it is *not* closed here), so one
        backend — and its worker fleet health state — can serve many
        sweeps.
    on_result:
        Raw :class:`JobResult` callback, fired in completion order —
        host-side timing/worker metadata the record deliberately omits.
    on_dispatch:
        ``(index, worker)`` callback when a job is handed to a worker —
        live queued/running introspection for the status endpoint.
    cancel:
        Optional cancel token (``cancelled() -> bool``, canonically
        :class:`repro.fleet.cancel.CancelToken`).  Once fired, the
        backend stops dispatching, drains undispatched jobs as
        ``kind="cancelled"`` records, and stops in-flight jobs as fast
        as it can (stride check / worker kill / ``/worker/cancel``).
    """
    if isinstance(spec, dict):
        spec = SweepSpec.from_json(spec)
    if workers < 0:
        raise ValueError("workers must be >= 0 (0 = serial)")
    if jobs is None:
        jobs = plan_jobs(spec)
    owned = backend is None
    if backend is None:
        backend = resolve_backend(None, workers=workers,
                                  job_timeout_s=job_timeout_s,
                                  start_method=start_method)
    run = SweepRun(spec=spec, jobs=jobs, workers=backend.workers,
                   backend=backend.name)

    def handle_result(result: JobResult) -> None:
        if on_record is not None:
            on_record(_record_of(jobs[result.index], result))
        if on_result is not None:
            on_result(result)

    started = time.monotonic()
    try:
        results = backend.run([job.payload for job in jobs],
                              on_result=handle_result,
                              on_dispatch=on_dispatch,
                              cancel=cancel)
    finally:
        if owned:
            backend.close()
    run.elapsed_s = time.monotonic() - started
    run.records = [_record_of(job, result)
                   for job, result in zip(jobs, results)]
    run.timings = [{"index": result.index, "kind": result.kind,
                    "worker": result.worker,
                    "elapsedS": round(result.elapsed_s, 6)}
                   for result in results]
    run.execution = backend.describe()
    if store is not None:
        store.extend(run.records)
    return run
