"""Cross-run result warehouse: queries, Pareto frontiers, regression sentinel.

PR 9 closed the artifact half of the ROADMAP's fleet data plane; this
module closes the result half.  Sweep records are write-once JSONL per
run (:mod:`repro.explore.store`), which answers "how did *this* sweep
go" but not the longitudinal questions a design-space harness lives on:
how does today's frontier compare with last week's, which config
regressed between two sweeps, what does the whole cycles-vs-energy
trade-off look like across every run ever made.

:class:`ResultWarehouse` is an indexed, append-only store over finished
sweeps' records:

* **ingest** — the :class:`repro.explore.service.ExploreManager` finish
  path feeds every completed sweep in automatically (server mode), and
  :meth:`ResultWarehouse.import_file` bulk-imports historical run files
  (tolerant of a truncated trailing line, like every JSONL reader
  here); rows are deduplicated on ``(sweepId, index)``, so re-ingesting
  or re-importing is idempotent;
* **query** — filter by sweep id/name, program, axis point values, or
  ingest-time range; results carry min/p50/p90/max metric summaries via
  :func:`repro.obs.metrics.summarize`, the one shared percentile rule;
* **Pareto frontiers** — direction-aware non-dominated sets over any
  metric pair (directions come from the
  :data:`repro.explore.report.METRICS` table: cycles/energy/area
  minimize, ipc maximizes), with per-point dominated counts;
* **regression sentinel** — pin one sweep as the baseline
  (:meth:`set_baseline`) and diff any other sweep's matching configs
  (same record ``label``) against it; a metric delta beyond the
  tolerance *in the worse direction* is a flag, and flags raised at
  ingest time bump ``repro_warehouse_regressions_total``.

Everything the warehouse returns is canonically ordered — rows by
``(sweepId, index)``, sweeps by id, flags by label — so query, frontier
and diff payloads are byte-deterministic and independent of ingest
order (pinned by test).  The module itself never reads a clock:
``ingestedAt`` stamps are supplied by callers (the explore service
passes server time), which keeps the warehouse importable from
deterministic record-producing contexts.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.explore.report import MetricError, _metric_path, metric_value
from repro.explore.store import load_records
from repro.obs.metrics import default_registry, summarize

__all__ = [
    "BaselineMissing",
    "DEFAULT_REGRESSION_METRICS",
    "DEFAULT_TOLERANCE",
    "ResultWarehouse",
    "SUMMARY_METRICS",
    "WarehouseError",
]

#: metrics the regression sentinel diffs by default — the three axes of
#: the paper's design-space trade-off, present in every record
DEFAULT_REGRESSION_METRICS = ("cycles", "energy", "area")

#: relative delta (in the worse direction) beyond which a matching
#: config counts as regressed
DEFAULT_TOLERANCE = 0.05

#: metrics summarized on every query payload
SUMMARY_METRICS = ("cycles", "ipc", "energy", "area")

_RECORDS = default_registry().gauge(
    "repro_warehouse_records",
    "Result-warehouse rows currently indexed")
_REGRESSIONS = default_registry().counter(
    "repro_warehouse_regressions_total",
    "Regression-sentinel flags raised at warehouse ingest, by metric")


class WarehouseError(ValueError):
    """Bad warehouse request (degenerate metric pair, bad tolerance)."""


class BaselineMissing(WarehouseError):
    """A regression diff was requested before any baseline sweep was
    pinned (the protocol layer maps this to 409, not 400)."""


def _resolve_metric(metric: str) -> Tuple[str, bool]:
    """Metric name -> (stats path, higher_is_better), under the report
    layer's rule: ``METRICS`` names, or raw dotted stats paths with an
    optional ``+`` higher-is-better suffix."""
    if not isinstance(metric, str) or not metric:
        raise MetricError(
            f"metric must be a non-empty string, got {metric!r}")
    return _metric_path(metric)


def _row_key(row: dict) -> tuple:
    """Canonical row order: every payload the warehouse emits is sorted
    with this key, which is what makes output ingest-order independent."""
    return (str(row.get("sweepId", "")), row.get("index") or 0,
            str(row.get("label", "")))


class ResultWarehouse:
    """Indexed, append-only store of sweep records across runs.

    With ``path`` the warehouse is file-backed: rows (and baseline-pin
    control rows) are appended eagerly as canonical JSONL and replayed
    on reopen, so the store — including the pinned baseline — survives
    process restarts.  Rows handed back by :meth:`query` are the live
    index entries; treat them as read-only.
    """

    def __init__(self, path: Optional[str] = None):
        self._lock = threading.Lock()
        self._rows: List[dict] = []
        self._seen: Set[tuple] = set()        # (sweepId, index) dedup keys
        self._sweeps: Dict[str, dict] = {}    # sweepId -> name/record count
        self._baseline: Optional[str] = None
        self._handle = None
        self.path = path
        if path is not None:
            directory = os.path.dirname(path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            if os.path.exists(path):
                for obj in load_records(path):
                    if obj.get("control") == "baseline":
                        if obj.get("sweepId") in self._sweeps:
                            self._baseline = obj["sweepId"]
                        continue
                    if "sweepId" not in obj:
                        continue              # not a warehouse row
                    self._add_locked(dict(obj), persist=False)
            self._handle = open(path, "a", encoding="utf-8")
        _RECORDS.set(len(self._rows))

    # -- ingest ----------------------------------------------------------

    def ingest(self, records: Iterable[dict], sweep_id: str,
               name: Optional[str] = None,
               ingested_at: Optional[float] = None) -> dict:
        """Add one finished sweep's records (idempotent per record).

        ``ingested_at`` is the caller's wall-clock stamp — the warehouse
        itself reads no clock; rows ingested without one fall outside
        time-range queries.  When a baseline is pinned and *sweep_id* is
        not the baseline itself, the regression sentinel runs on the
        newly ingested rows and every flag bumps
        ``repro_warehouse_regressions_total``.
        """
        if not sweep_id or not isinstance(sweep_id, str):
            raise WarehouseError("ingest needs a non-empty sweep id")
        with self._lock:
            ingested = skipped = 0
            for record in records:
                row = dict(record)
                row["sweepId"] = sweep_id
                row["sweep"] = (name if name is not None else
                                self._sweeps.get(sweep_id, {})
                                .get("name", sweep_id))
                if ingested_at is not None:
                    row["ingestedAt"] = round(float(ingested_at), 3)
                if self._add_locked(row, persist=True):
                    ingested += 1
                else:
                    skipped += 1
            flagged = 0
            if (ingested and self._baseline is not None
                    and sweep_id != self._baseline):
                flags = self._diff_locked(sweep_id,
                                          DEFAULT_REGRESSION_METRICS,
                                          DEFAULT_TOLERANCE)["flags"]
                flagged = len(flags)
                for flag in flags:
                    _REGRESSIONS.inc(metric=flag["metric"])
            _RECORDS.set(len(self._rows))
            total = self._sweeps.get(sweep_id, {}).get("records", 0)
        return {"sweepId": sweep_id, "ingested": ingested,
                "skipped": skipped, "records": total,
                "regressions": flagged}

    def import_file(self, path: str, sweep_id: Optional[str] = None,
                    name: Optional[str] = None,
                    ingested_at: Optional[float] = None) -> dict:
        """Bulk-import one historical JSONL run file.

        Without an explicit *sweep_id* the id is the first 16 hex chars
        of the SHA-256 over the canonical record JSON, so re-importing
        the same results (under any file path, on any machine) lands on
        the same sweep and is a no-op.  *name* defaults to the file's
        stem.  Inherits :func:`load_records` tolerance for a truncated
        trailing line (interrupted appends don't poison the import).
        """
        records = load_records(path)
        if sweep_id is None:
            canonical = "\n".join(json.dumps(record, sort_keys=True)
                                  for record in records)
            sweep_id = hashlib.sha256(
                canonical.encode("utf-8")).hexdigest()[:16]
        if name is None:
            name = os.path.splitext(os.path.basename(path))[0]
        return self.ingest(records, sweep_id, name=name,
                           ingested_at=ingested_at)

    def _add_locked(self, row: dict, persist: bool) -> bool:
        key = (row.get("sweepId"), row.get("index"))
        if key in self._seen:
            return False
        self._seen.add(key)
        self._rows.append(row)
        info = self._sweeps.setdefault(
            row["sweepId"],
            {"sweepId": row["sweepId"],
             "name": row.get("sweep", row["sweepId"]), "records": 0})
        info["records"] += 1
        if persist:
            self._persist_locked(row)
        return True

    def _persist_locked(self, obj: dict) -> None:
        if self._handle is not None:
            self._handle.write(json.dumps(obj, sort_keys=True) + "\n")
            self._handle.flush()

    # -- queries ---------------------------------------------------------

    def query(self, sweep: Optional[str] = None,
              program: Optional[str] = None,
              axes: Optional[Dict[str, str]] = None,
              since: Optional[float] = None,
              until: Optional[float] = None,
              metrics: Sequence[str] = SUMMARY_METRICS,
              limit: Optional[int] = None) -> dict:
        """Filtered rows plus shared metric summaries, canonically
        ordered.  ``since``/``until`` bound ``ingestedAt`` (rows without
        a stamp fail any time filter); summaries cover ok rows only."""
        for metric in metrics:
            _resolve_metric(metric)
        with self._lock:
            rows = self._filtered_locked(sweep, program, axes, since, until)
            baseline = self._baseline
        summary = {}
        for metric in metrics:
            values = [value for value in
                      (metric_value(row, metric) for row in rows
                       if row.get("ok"))
                      if value is not None]
            stats = summarize(values)
            if stats is not None:
                summary[metric] = stats
        return {"count": len(rows),
                "sweeps": sorted({row["sweepId"] for row in rows}),
                "baseline": baseline,
                "summary": summary,
                "rows": rows if limit is None else rows[:max(0, limit)]}

    def pareto(self, x: str = "cycles", y: str = "energy",
               sweep: Optional[str] = None, program: Optional[str] = None,
               axes: Optional[Dict[str, str]] = None) -> dict:
        """Direction-aware Pareto frontier over the metric pair (x, y).

        Frontier points carry how many candidates each one dominates;
        equal points dominate neither and both stay on the frontier.
        """
        if x == y:
            raise WarehouseError(
                f"Pareto needs two distinct metrics, got {x!r} twice")
        _path, x_higher = _resolve_metric(x)
        _path, y_higher = _resolve_metric(y)
        with self._lock:
            rows = self._filtered_locked(sweep, program, axes, None, None)
        # minimize-normalized coordinates so dominance is a single rule
        candidates = []
        for row in rows:
            if not row.get("ok"):
                continue
            value_x = metric_value(row, x)
            value_y = metric_value(row, y)
            if value_x is None or value_y is None:
                continue
            candidates.append((-value_x if x_higher else value_x,
                               -value_y if y_higher else value_y, row))
        frontier = []
        dominated = 0
        for mx, my, row in candidates:
            beats = 0
            beaten = False
            for ox, oy, other in candidates:
                if other is row:
                    continue
                if ox <= mx and oy <= my and (ox < mx or oy < my):
                    beaten = True
                if mx <= ox and my <= oy and (mx < ox or my < oy):
                    beats += 1
            if beaten:
                dominated += 1
            else:
                frontier.append((mx, my, beats, row))
        frontier.sort(key=lambda entry: (entry[0], entry[1],
                                         _row_key(entry[3])))
        return {"x": x, "y": y, "points": len(candidates),
                "dominated": dominated,
                "frontier": [{"label": row.get("label"),
                              "sweepId": row.get("sweepId"),
                              "sweep": row.get("sweep"),
                              "index": row.get("index"),
                              "x": metric_value(row, x),
                              "y": metric_value(row, y),
                              "dominates": beats}
                             for _mx, _my, beats, row in frontier]}

    def _filtered_locked(self, sweep, program, axes, since, until):
        rows = [row for row in self._rows
                if self._matches(row, sweep, program, axes, since, until)]
        rows.sort(key=_row_key)
        return rows

    @staticmethod
    def _matches(row, sweep, program, axes, since, until) -> bool:
        if sweep is not None and sweep not in (row.get("sweepId"),
                                               row.get("sweep")):
            return False
        point = row.get("point") or {}
        if program is not None and point.get("program") != program:
            return False
        if axes:
            for axis, value in axes.items():
                if str(point.get(axis)) != str(value):
                    return False
        if since is not None or until is not None:
            stamp = row.get("ingestedAt")
            if stamp is None:
                return False
            if since is not None and stamp < since:
                return False
            if until is not None and stamp > until:
                return False
        return True

    def sweeps(self) -> List[dict]:
        """Known sweeps, sorted by id: ``{"sweepId", "name", "records"}``."""
        with self._lock:
            return [dict(self._sweeps[sweep_id])
                    for sweep_id in sorted(self._sweeps)]

    # -- regression sentinel ---------------------------------------------

    def set_baseline(self, sweep_id: str) -> dict:
        """Pin *sweep_id* as the regression baseline (persisted as a
        control row when file-backed; last pin wins on replay).  Raises
        :class:`KeyError` for a sweep the warehouse has not ingested."""
        with self._lock:
            if sweep_id not in self._sweeps:
                raise KeyError(sweep_id)
            self._baseline = sweep_id
            self._persist_locked({"control": "baseline",
                                  "sweepId": sweep_id})
            info = dict(self._sweeps[sweep_id])
        return {"baseline": sweep_id, "name": info["name"],
                "records": info["records"]}

    def baseline(self) -> Optional[str]:
        with self._lock:
            return self._baseline

    def regressions(self, sweep: Optional[str] = None,
                    tolerance: float = DEFAULT_TOLERANCE,
                    metrics: Sequence[str] = DEFAULT_REGRESSION_METRICS,
                    ) -> dict:
        """Diff *sweep* (default: every non-baseline sweep) against the
        pinned baseline.  Configs match by record ``label``; a metric
        delta beyond *tolerance* in the worse direction (directions per
        the report table) becomes a flag.  Pure query: the exported
        regression counter only moves at ingest time."""
        if not metrics:
            raise WarehouseError("regression diff needs at least one metric")
        for metric in metrics:
            _resolve_metric(metric)
        if not isinstance(tolerance, (int, float)) or tolerance < 0:
            raise WarehouseError("tolerance must be a number >= 0")
        with self._lock:
            if self._baseline is None:
                raise BaselineMissing(
                    "no baseline sweep pinned — pin one with "
                    "POST /warehouse/baseline (or 'repro-sim warehouse "
                    "baseline SWEEP_ID')")
            baseline_id = self._baseline
            if sweep is not None:
                if sweep not in self._sweeps:
                    raise KeyError(sweep)
                targets = [sweep] if sweep != baseline_id else []
            else:
                targets = sorted(sweep_id for sweep_id in self._sweeps
                                 if sweep_id != baseline_id)
            sweeps = [self._diff_locked(target, metrics, tolerance)
                      for target in targets]
            baseline_name = self._sweeps[baseline_id]["name"]
        return {"baseline": baseline_id, "baselineName": baseline_name,
                "tolerance": tolerance, "metrics": list(metrics),
                "sweeps": sweeps,
                "flagged": sum(len(entry["flags"]) for entry in sweeps)}

    def _diff_locked(self, sweep_id, metrics, tolerance) -> dict:
        base = {row.get("label"): row for row in self._rows
                if row.get("sweepId") == self._baseline and row.get("ok")}
        rows = sorted((row for row in self._rows
                       if row.get("sweepId") == sweep_id and row.get("ok")),
                      key=_row_key)
        compared = 0
        flags = []
        for row in rows:
            other = base.get(row.get("label"))
            if other is None:
                continue
            compared += 1
            for metric in metrics:
                base_value = metric_value(other, metric)
                new_value = metric_value(row, metric)
                if base_value is None or new_value is None \
                        or base_value == 0:
                    continue
                _path, higher_better = _metric_path(metric)
                delta = (new_value - base_value) / abs(base_value)
                worse = -delta if higher_better else delta
                if worse > tolerance:
                    flags.append({"label": row.get("label"),
                                  "metric": metric,
                                  "baseline": base_value,
                                  "value": new_value,
                                  "deltaPct": round(delta * 100.0, 2)})
        info = self._sweeps.get(sweep_id, {})
        return {"sweepId": sweep_id, "name": info.get("name", sweep_id),
                "compared": compared, "flags": flags}

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "ResultWarehouse":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __len__(self) -> int:
        with self._lock:
            return len(self._rows)
