"""Runtime-statistics page (Fig. 10): instruction mixes, unit busy cycles,
cache statistics, predictor accuracy, FLOPS, IPC, wall time and more."""

from __future__ import annotations

from repro.sim.statistics import RuntimeStatistics


def render_statistics(stats: RuntimeStatistics) -> str:
    data = stats.to_json()
    lines = ["Runtime statistics", "=" * 60]

    lines.append(f"{'total cycles':<28}: {data['cycles']}")
    lines.append(f"{'committed instructions':<28}: "
                 f"{data['committedInstructions']}")
    lines.append(f"{'IPC':<28}: {data['ipc']:.4f}")
    lines.append(f"{'wall time':<28}: {data['wallTimeS'] * 1e6:.3f} us")
    lines.append(f"{'FLOPs (total)':<28}: {data['flopsTotal']}")
    lines.append(f"{'FLOPS (rate)':<28}: {data['flopsRate']:.3e} op/s")
    lines.append(f"{'reorder buffer flushes':<28}: {data['robFlushes']}")
    lines.append(f"{'decode redirects':<28}: {data['decodeRedirects']}")
    lines.append(f"{'fetch stall cycles':<28}: {data['fetchStallCycles']}")
    bp = data["branchPredictor"]
    lines.append(f"{'branch predictions':<28}: {bp['predictions']} "
                 f"(accuracy {bp['accuracy'] * 100:.2f} %)")
    lines.append(f"{'BTB hit rate':<28}: "
                 f"{bp['btbHits']}/{bp['btbLookups']}")
    lines.append("")

    lines.append("static / dynamic instruction mix:")
    lines.append(f"  {'type':<22} {'static':>8} {'dynamic':>9} {'dyn %':>7}")
    for key in sorted(data["staticMix"]):
        static = data["staticMix"][key]
        dynamic = data["dynamicMix"].get(key, 0)
        pct = data["dynamicMixPercent"].get(key, 0.0)
        lines.append(f"  {key:<22} {static:>8} {dynamic:>9} {pct:>6.1f}%")
    lines.append("")

    lines.append("functional unit busy cycles:")
    for name, info in sorted(data["functionalUnits"].items()):
        lines.append(f"  {name:<10} {info['kind']:<8} "
                     f"{info['busyCycles']:>8} ({info['busyPercent']:5.1f} %)")
    lines.append("")

    if "cache" in data:
        cache = data["cache"]
        lines.append("cache statistics:")
        lines.append(f"  accesses {cache['accesses']}, hits {cache['hits']} "
                     f"({cache['hitRatio'] * 100:.2f} %), misses "
                     f"{cache['misses']} ({cache['missRatio'] * 100:.2f} %)")
        lines.append(f"  loads {cache['loadAccesses']} "
                     f"(hits {cache['loadHits']}), stores "
                     f"{cache['storeAccesses']} (hits {cache['storeHits']})")
        lines.append(f"  evictions {cache['evictions']}, writebacks "
                     f"{cache['writebacks']}, bytes written "
                     f"{cache['bytesWritten']}")
        lines.append("")

    mem = data["memory"]
    lines.append(f"main memory: {mem['loads']} loads / {mem['stores']} "
                 f"stores, {mem['bytesRead']} B read, "
                 f"{mem['bytesWritten']} B written")
    lines.append("")
    lines.append("dispatch stalls: " + ", ".join(
        f"{key}={value}" for key, value in sorted(
            data["dispatchStalls"].items())))
    if data["haltReason"]:
        lines.append(f"halt reason: {data['haltReason']}")
    return "\n".join(lines)
