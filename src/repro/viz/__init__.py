"""Text renderers for every view the paper's web GUI shows.

The browser GUI is presentation only; all information it displays is
available from the simulator state.  These renderers regenerate the
*content* of each figure as monospace text, so the information channel is
reproducible, testable, and usable from the CLI:

* :func:`render_block` — a pipeline block panel (Fig. 1);
* :func:`render_memory_popup` — arrays + memory dump pop-up (Fig. 2);
* :func:`render_instruction_popup` — instruction detail pop-up (Fig. 3);
* :func:`render_statistics` — the runtime-statistics page (Fig. 10);
* :func:`render_processor` — the full main window (Fig. 12);
* :func:`render_sweep_report` — the experiment engine's design-space
  comparison table (``repro.explore``);
* :func:`render_metrics_table` / :func:`render_span_waterfall` — the
  telemetry plane: a ``GET /metrics`` scrape as a table, one sweep's
  ``GET /trace/<sweepId>`` span tree as a text waterfall;
* :func:`render_warehouse_table` / :func:`render_pareto_frontier` /
  :func:`render_regression_report` — the cross-run result warehouse:
  filtered record tables, Pareto frontiers with dominated counts,
  baseline regression reports (``/warehouse/*``).
"""

from repro.viz.blocks import render_block, render_processor
from repro.viz.memory import render_memory_popup
from repro.viz.instruction import render_instruction_popup
from repro.viz.stats import render_statistics
from repro.viz.sweep import (render_execution_summary, render_fleet_table,
                             render_sweep_report)
from repro.viz.obs import render_metrics_table, render_span_waterfall
from repro.viz.warehouse import (render_pareto_frontier,
                                 render_regression_report,
                                 render_warehouse_table)

__all__ = [
    "render_block",
    "render_processor",
    "render_memory_popup",
    "render_instruction_popup",
    "render_statistics",
    "render_sweep_report",
    "render_execution_summary",
    "render_fleet_table",
    "render_metrics_table",
    "render_span_waterfall",
    "render_warehouse_table",
    "render_pareto_frontier",
    "render_regression_report",
]
