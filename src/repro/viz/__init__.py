"""Text renderers for every view the paper's web GUI shows.

The browser GUI is presentation only; all information it displays is
available from the simulator state.  These renderers regenerate the
*content* of each figure as monospace text, so the information channel is
reproducible, testable, and usable from the CLI:

* :func:`render_block` — a pipeline block panel (Fig. 1);
* :func:`render_memory_popup` — arrays + memory dump pop-up (Fig. 2);
* :func:`render_instruction_popup` — instruction detail pop-up (Fig. 3);
* :func:`render_statistics` — the runtime-statistics page (Fig. 10);
* :func:`render_processor` — the full main window (Fig. 12);
* :func:`render_sweep_report` — the experiment engine's design-space
  comparison table (``repro.explore``).
"""

from repro.viz.blocks import render_block, render_processor
from repro.viz.memory import render_memory_popup
from repro.viz.instruction import render_instruction_popup
from repro.viz.stats import render_statistics
from repro.viz.sweep import render_sweep_report

__all__ = [
    "render_block",
    "render_processor",
    "render_memory_popup",
    "render_instruction_popup",
    "render_statistics",
    "render_sweep_report",
]
