"""Result-warehouse views as text (the longitudinal observability pane).

Same philosophy as the other renderers in :mod:`repro.viz`: everything
the cross-run warehouse serves — filtered record tables with metric
summaries, Pareto frontiers with dominated-point counts, regression
reports with per-metric deltas — as monospace text, so the experiment
trajectory is readable from the CLI and assertable in tests.  Each
renderer takes the matching ``/warehouse/*`` response payload (also what
:class:`repro.explore.warehouse.ResultWarehouse` returns in-process).
"""

from __future__ import annotations

from repro.explore.report import metric_value

__all__ = ["render_warehouse_table", "render_pareto_frontier",
           "render_regression_report"]

#: metric columns of the query table (shared with the query summaries)
_TABLE_METRICS = ("cycles", "ipc", "energy", "area")


def _format_cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _table(columns, rows, lines) -> None:
    widths = [len(str(column)) for column in columns]
    for row in rows:
        widths = [max(w, len(c)) for w, c in zip(widths, row)]
    header = "  ".join(f"{c:<{w}}" if i < 2 else f"{c:>{w}}"
                       for i, (c, w) in enumerate(zip(columns, widths)))
    lines.append("  " + header)
    lines.append("  " + "-" * len(header))
    for row in rows:
        lines.append("  " + "  ".join(
            f"{c:<{w}}" if i < 2 else f"{c:>{w}}"
            for i, (c, w) in enumerate(zip(row, widths))))


def render_warehouse_table(query_json: dict) -> str:
    """Render a ``/warehouse/query`` payload: one row per record, plus
    the min/p50/p90/max summary block."""
    count = query_json.get("count", 0)
    sweeps = query_json.get("sweeps") or []
    lines = [f"warehouse: {count} record(s) across {len(sweeps)} sweep(s)"]
    baseline = query_json.get("baseline")
    if baseline:
        lines[0] += f", baseline {baseline}"
    rows = query_json.get("rows") or []
    if rows:
        cells = []
        for row in rows:
            cells.append([str(row.get("sweep", row.get("sweepId", "?"))),
                          str(row.get("label", "?"))]
                         + [_format_cell(metric_value(row, metric))
                            if row.get("ok") else "FAILED"
                            for metric in _TABLE_METRICS])
        _table(["sweep", "label"] + list(_TABLE_METRICS), cells, lines)
    summary = query_json.get("summary") or {}
    if summary:
        lines.append("summary (ok rows):")
        for metric, stats in summary.items():
            lines.append(
                f"  {metric}: min {_format_cell(stats.get('min'))} "
                f"/ p50 {_format_cell(stats.get('p50'))} "
                f"/ p90 {_format_cell(stats.get('p90'))} "
                f"/ max {_format_cell(stats.get('max'))} "
                f"({stats.get('count', 0)} values)")
    return "\n".join(line.rstrip() for line in lines).rstrip() + "\n"


def render_pareto_frontier(pareto_json: dict) -> str:
    """Render a ``/warehouse/pareto`` payload: the non-dominated set
    with each point's dominated count."""
    x = pareto_json.get("x", "x")
    y = pareto_json.get("y", "y")
    frontier = pareto_json.get("frontier") or []
    lines = [f"Pareto frontier ({x} vs {y}): {len(frontier)} of "
             f"{pareto_json.get('points', 0)} point(s) non-dominated, "
             f"{pareto_json.get('dominated', 0)} dominated"]
    if frontier:
        cells = [[str(point.get("sweep", point.get("sweepId", "?"))),
                  str(point.get("label", "?")),
                  _format_cell(point.get("x")),
                  _format_cell(point.get("y")),
                  str(point.get("dominates", 0))]
                 for point in frontier]
        _table(["sweep", "label", x, y, "dominates"], cells, lines)
    return "\n".join(line.rstrip() for line in lines).rstrip() + "\n"


def render_regression_report(diff_json: dict) -> str:
    """Render a ``/warehouse/regressions`` payload: per-sweep compare
    counts and every flag's per-metric delta."""
    tolerance = diff_json.get("tolerance", 0)
    lines = [f"regression sentinel vs baseline "
             f"{diff_json.get('baseline', '?')} "
             f"({diff_json.get('baselineName', '?')}), "
             f"tolerance {tolerance * 100:g}%, metrics "
             f"{','.join(diff_json.get('metrics') or [])}"]
    sweeps = diff_json.get("sweeps") or []
    if not sweeps:
        lines.append("  nothing to diff (no non-baseline sweeps ingested)")
    for entry in sweeps:
        flags = entry.get("flags") or []
        lines.append(f"sweep {entry.get('sweepId', '?')} "
                     f"({entry.get('name', '?')}): "
                     f"{entry.get('compared', 0)} config(s) compared, "
                     f"{len(flags)} regression(s)")
        for flag in flags:
            lines.append(
                f"  REGRESSED {flag.get('label')}: {flag.get('metric')} "
                f"{_format_cell(flag.get('baseline'))} -> "
                f"{_format_cell(flag.get('value'))} "
                f"({flag.get('deltaPct', 0):+g}%)")
    total = diff_json.get("flagged", 0)
    lines.append(f"{total} regression(s) flagged"
                 if total else "no regressions beyond tolerance")
    return "\n".join(line.rstrip() for line in lines).rstrip() + "\n"
