"""Design-space sweep report as text (the experiment engine's table view).

Same philosophy as the other renderers in :mod:`repro.viz`: everything the
comparison layer knows — per-run metric table, best-config ranking,
pairwise speedups — as monospace text, so a sweep is readable from the CLI
and assertable in tests.
"""

from __future__ import annotations

__all__ = ["render_sweep_report", "render_execution_summary",
           "render_fleet_table"]

#: pairwise matrices beyond this many runs stop being readable as text
_MATRIX_LIMIT = 12


def _format_cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def render_sweep_report(report) -> str:
    """Render a :class:`repro.explore.report.SweepReport` as text."""
    lines = [f"Design-space sweep: {report.name}",
             "=" * 64,
             f"{len(report.records)} runs "
             f"({len(report.ok)} ok, {len(report.failed)} failed), "
             f"ranking metric: {report.metric}",
             ""]

    table = report.table()
    widths = [len(str(column)) for column in table["columns"]]
    str_rows = []
    for row in table["rows"]:
        cells = [_format_cell(cell) for cell in row]
        widths = [max(w, len(c)) for w, c in zip(widths, cells)]
        str_rows.append(cells)
    header = "  ".join(f"{c:<{w}}" if i == 0 else f"{c:>{w}}"
                       for i, (c, w) in enumerate(zip(table["columns"],
                                                      widths)))
    lines.append(header)
    lines.append("-" * len(header))
    for cells in str_rows:
        lines.append("  ".join(f"{c:<{w}}" if i == 0 else f"{c:>{w}}"
                               for i, (c, w) in enumerate(zip(cells,
                                                              widths))))
    lines.append("")

    ranking = report.ranking()
    if ranking:
        lines.append(f"ranking by {report.metric} (best first):")
        for entry in ranking:
            lines.append(f"  #{entry['rank']:<3} {entry['label']:<40} "
                         f"{_format_cell(entry['value'])}")
        lines.append("")

    pairwise = report.pairwise_speedups()
    labels = pairwise["labels"]
    if 1 < len(labels) <= _MATRIX_LIMIT:
        lines.append(f"pairwise speedups ({pairwise['metric']}; "
                     f"row vs column, > 1 = row wins):")
        tags = [f"[{i}]" for i in range(len(labels))]
        for i, label in enumerate(labels):
            lines.append(f"  {tags[i]} {label}")
        width = max(6, max(len(t) for t in tags) + 1)
        lines.append("  " + " " * width
                     + "".join(f"{t:>{width}}" for t in tags))
        for tag, row in zip(tags, pairwise["matrix"]):
            lines.append(f"  {tag:<{width}}"
                         + "".join(f"{value:>{width}.2f}" for value in row))
        lines.append("")

    for record in report.failed:
        # job id + axis values: a failed grid point must map back to its
        # config without cross-referencing the spec
        point = ", ".join(f"{k}={v}"
                          for k, v in record.get("point", {}).items())
        where = f" [job {record.get('index', '?')}" \
                + (f"; {point}]" if point else "]")
        lines.append(f"FAILED {record.get('label')}{where}: "
                     f"{record.get('kind', 'error')}: {record.get('error')}")
    return "\n".join(line.rstrip() for line in lines).rstrip() + "\n"


def _wall_time_cells(elapsed: list) -> str:
    if not elapsed:
        return "-"
    # the status endpoint's percentile rule, so the CLI summary and
    # /explore/status never disagree about the same sweep
    from repro.explore.service import nearest_rank
    ordered = sorted(elapsed)
    return (f"min {ordered[0] * 1e3:.1f} ms "
            f"/ p50 {nearest_rank(ordered, 0.5) * 1e3:.1f} ms "
            f"/ p90 {nearest_rank(ordered, 0.9) * 1e3:.1f} ms "
            f"/ max {ordered[-1] * 1e3:.1f} ms")


def render_execution_summary(run_json: dict) -> str:
    """Host-side execution view of one sweep (``SweepRun.to_json()``).

    Per-backend and per-worker columns: which worker ran how many jobs,
    how the per-job wall time distributed, and — for the remote backend —
    each fleet member's health row.  All of this is metadata the records
    deliberately omit (they must stay bit-identical across backends), so
    it renders separately from the comparison report."""
    timings = run_json.get("timings") or []
    if not timings:
        return ""
    lines = [f"execution ({run_json.get('backend', '?')} backend, "
             f"{run_json.get('workers', 0)} workers, "
             f"{run_json.get('elapsedS', 0)}s wall):",
             f"  per-job wall time: "
             f"{_wall_time_cells([t['elapsedS'] for t in timings])}"]
    by_worker = {}
    for timing in timings:
        entry = by_worker.setdefault(timing.get("worker", "?"),
                                     {"jobs": 0, "failed": 0, "busy": 0.0})
        entry["jobs"] += 1
        entry["failed"] += timing.get("kind") != "ok"
        entry["busy"] += timing.get("elapsedS", 0.0)
    health = {w.get("url"): w for w in
              (run_json.get("execution") or {}).get("remoteWorkers", [])}

    def excluded_cell(info: dict) -> str:
        if not info.get("excluded"):
            return ""
        reason = info.get("excludedReason")
        return f", EXCLUDED ({reason})" if reason else ", EXCLUDED"

    for worker, entry in sorted(by_worker.items(), key=lambda kv: str(kv[0])):
        line = (f"  worker {worker}: {entry['jobs']} jobs "
                f"({entry['failed']} failed), "
                f"busy {entry['busy']:.2f}s")
        info = health.pop(worker, None)
        if info is not None and (info.get("failures") or
                                 info.get("excluded")):
            line += (f", transport failures {info['failures']}"
                     + excluded_cell(info))
        lines.append(line)
    for url, info in health.items():     # fleet members that ran nothing
        lines.append(f"  worker {url}: 0 jobs"
                     + (f", transport failures {info.get('failures', 0)}"
                        if info.get("failures") else "")
                     + excluded_cell(info))
    return "\n".join(lines) + "\n"


def render_fleet_table(fleet_json: dict) -> str:
    """Fleet health table from a registry snapshot (the ``fleet`` object
    on ``/health`` and ``/fleet/status``).

    One row per known worker: address, advertised capacity, heartbeat
    count, seconds since the last beat, and live/EXCLUDED status with
    the registry's reason string — the operator view of who a
    ``"backend": "fleet"`` sweep will actually run on."""
    rows = fleet_json.get("rows") or []
    header = (f"fleet: {fleet_json.get('live', 0)} live / "
              f"{fleet_json.get('known', 0)} known workers "
              f"(heartbeat TTL {fleet_json.get('ttlS', '?')}s)")
    if not rows:
        return header + "\n"
    lines = [header]
    columns = ["url", "cap", "beats", "gen", "last beat", "status"]
    cells = []
    for row in rows:
        if row.get("excluded"):
            status = "EXCLUDED" + (f" ({row['excludedReason']})"
                                   if row.get("excludedReason") else "")
        else:
            status = "live"
        age = row.get("lastHeartbeatAgeS", row.get("ageS", 0))
        cells.append([str(row.get("url", "?")),
                      str(row.get("capacity", "?")),
                      str(row.get("heartbeats", 0)),
                      str(row.get("generation", 1)),
                      f"{age:.1f}s ago",
                      status])
    widths = [max(len(columns[i]), max(len(r[i]) for r in cells))
              for i in range(len(columns))]
    lines.append("  " + "  ".join(f"{c:<{w}}"
                                  for c, w in zip(columns, widths)))
    for row_cells in cells:
        lines.append("  " + "  ".join(f"{c:<{w}}"
                                      for c, w in zip(row_cells, widths)))
    return "\n".join(lines) + "\n"
