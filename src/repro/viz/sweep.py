"""Design-space sweep report as text (the experiment engine's table view).

Same philosophy as the other renderers in :mod:`repro.viz`: everything the
comparison layer knows — per-run metric table, best-config ranking,
pairwise speedups — as monospace text, so a sweep is readable from the CLI
and assertable in tests.
"""

from __future__ import annotations

__all__ = ["render_sweep_report"]

#: pairwise matrices beyond this many runs stop being readable as text
_MATRIX_LIMIT = 12


def _format_cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def render_sweep_report(report) -> str:
    """Render a :class:`repro.explore.report.SweepReport` as text."""
    lines = [f"Design-space sweep: {report.name}",
             "=" * 64,
             f"{len(report.records)} runs "
             f"({len(report.ok)} ok, {len(report.failed)} failed), "
             f"ranking metric: {report.metric}",
             ""]

    table = report.table()
    widths = [len(str(column)) for column in table["columns"]]
    str_rows = []
    for row in table["rows"]:
        cells = [_format_cell(cell) for cell in row]
        widths = [max(w, len(c)) for w, c in zip(widths, cells)]
        str_rows.append(cells)
    header = "  ".join(f"{c:<{w}}" if i == 0 else f"{c:>{w}}"
                       for i, (c, w) in enumerate(zip(table["columns"],
                                                      widths)))
    lines.append(header)
    lines.append("-" * len(header))
    for cells in str_rows:
        lines.append("  ".join(f"{c:<{w}}" if i == 0 else f"{c:>{w}}"
                               for i, (c, w) in enumerate(zip(cells,
                                                              widths))))
    lines.append("")

    ranking = report.ranking()
    if ranking:
        lines.append(f"ranking by {report.metric} (best first):")
        for entry in ranking:
            lines.append(f"  #{entry['rank']:<3} {entry['label']:<40} "
                         f"{_format_cell(entry['value'])}")
        lines.append("")

    pairwise = report.pairwise_speedups()
    labels = pairwise["labels"]
    if 1 < len(labels) <= _MATRIX_LIMIT:
        lines.append(f"pairwise speedups ({pairwise['metric']}; "
                     f"row vs column, > 1 = row wins):")
        tags = [f"[{i}]" for i in range(len(labels))]
        for i, label in enumerate(labels):
            lines.append(f"  {tags[i]} {label}")
        width = max(6, max(len(t) for t in tags) + 1)
        lines.append("  " + " " * width
                     + "".join(f"{t:>{width}}" for t in tags))
        for tag, row in zip(tags, pairwise["matrix"]):
            lines.append(f"  {tag:<{width}}"
                         + "".join(f"{value:>{width}.2f}" for value in row))
        lines.append("")

    for record in report.failed:
        lines.append(f"FAILED {record.get('label')}: "
                     f"{record.get('kind', 'error')}: {record.get('error')}")
    return "\n".join(line.rstrip() for line in lines).rstrip() + "\n"
