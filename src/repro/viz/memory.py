"""Memory pop-up window (Fig. 2): allocated arrays, their starting
addresses, and a memory dump."""

from __future__ import annotations

from repro.core.pipeline import Cpu


def render_memory_popup(cpu: Cpu, dump_start: int = 0,
                        dump_length: int = 128) -> str:
    """Render the main-memory pop-up: program pointers + expanded dump."""
    program = cpu.program
    lines = ["Main memory", "=" * 60,
             f"capacity: {cpu.memory.capacity} B, "
             f"stack top (initial sp): {program.stack_pointer:#x}",
             "",
             "allocated objects:",
             f"  {'name':<16} {'address':>10} {'size':>8} {'type':<8}"]
    for sym in program.symbols:
        lines.append(f"  {sym.name:<16} {sym.address:>#10x} "
                     f"{sym.size:>8} {sym.dtype:<8}")
    if not program.symbols:
        lines.append("  (none)")
    lines.append("")
    lines.append(f"labels: " + ", ".join(
        f"{name}={value:#x}" for name, value in sorted(program.labels.items())
        if not name.startswith(".")) if program.labels else "labels: (none)")
    lines.append("")
    lines.append(f"memory dump [{dump_start:#x} .. "
                 f"{dump_start + dump_length:#x}):")
    lines.append(cpu.memory.dump(dump_start, dump_length))
    return "\n".join(lines)
