"""Instruction pop-up window (Fig. 3): current state, parameters, renaming
details, values and validity, flags, and phase-completion timestamps."""

from __future__ import annotations

from repro.core.simcode import Phase, SimCode


def render_instruction_popup(simcode: SimCode) -> str:
    d = simcode.definition
    lines = [
        f"Instruction #{simcode.id}: {simcode.instruction.render()}",
        "=" * 60,
        f"pc          : {simcode.pc:#06x}",
        f"type        : {d.instruction_type.value}   unit class: "
        f"{d.fu_class.value}   op: {d.op_class}",
        "flags       : " + (" ".join(filter(None, [
            "SQUASHED" if simcode.squashed else "",
            "branch" if d.is_branch else "",
            "unconditional" if d.is_unconditional else "",
            "load" if d.is_load else "",
            "store" if d.is_store else "",
            f"exception({simcode.exception})" if simcode.exception else "",
        ])) or "-"),
        "",
        "parameters:",
    ]
    for arg in d.arguments:
        static = simcode.instruction.operands.get(arg.name)
        line = f"  {arg.name:<6} = {static}"
        if arg.name in simcode.renamed_sources:
            line += f"  (renamed: {simcode.renamed_sources[arg.name]})"
        if arg.name in simcode.operands:
            kind, value = simcode.operands[arg.name]
            if kind == "val":
                line += f"  value={value} [valid]"
            else:
                line += f"  waiting on t{value} [invalid]"
        lines.append(line)
    if simcode.dest_tag is not None:
        lines.append(f"  destination {simcode.dest_arch} renamed to "
                     f"t{simcode.dest_tag}")
    if simcode.result is not None:
        lines.append(f"  result = {simcode.result}")
    if d.is_branch:
        lines.append("")
        lines.append(
            f"branch      : predicted "
            f"{'taken->' + hex(simcode.predicted_target) if simcode.predicted_taken and simcode.predicted_target is not None else 'not taken'}"
            f", actual "
            f"{'taken->' + hex(simcode.actual_target) if simcode.actual_taken else ('not taken' if simcode.actual_taken is not None else '?')}")
    if d.memory_size:
        lines.append("")
        address = "?" if simcode.address is None else hex(simcode.address)
        lines.append(f"memory      : address={address} size={d.memory_size} "
                     f"delay={simcode.mem_delay}")
    lines.append("")
    lines.append("phase timestamps:")
    for phase in Phase:
        cycle = simcode.stamped(phase)
        lines.append(f"  {phase.value:<10} : "
                     f"{cycle if cycle is not None else '-'}")
    if simcode.fu_name:
        lines.append(f"executed on : {simcode.fu_name}")
    return "\n".join(lines)
