"""Observability renderers: metrics table and span waterfall as text.

Same philosophy as the rest of :mod:`repro.viz`: everything the
telemetry plane knows — the ``GET /metrics`` scrape, one sweep's span
tree from ``GET /trace/<sweepId>`` — as monospace text, readable from
the CLI and assertable as golden strings in tests.
"""

from __future__ import annotations

from typing import List

__all__ = ["render_metrics_table", "render_span_waterfall"]

#: character budget of a waterfall bar row
_BAR_WIDTH = 40


def _format_number(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _series_name(family_name: str, labels: dict) -> str:
    if not labels:
        return family_name
    cells = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{family_name}{{{cells}}}"


def render_metrics_table(scrape: List[dict]) -> str:
    """Render a :meth:`MetricsRegistry.scrape` payload as a table.

    One row per series (family x label set); histograms show count,
    sum, and the shared nearest-rank summary instead of raw buckets —
    the buckets are for Prometheus, the summary is for humans."""
    series = sum(len(family["values"]) for family in scrape)
    lines = [f"metrics: {len(scrape)} families, {series} series"]
    if not series:
        return lines[0] + "\n"
    rows = []
    for family in scrape:
        for cell in family["values"]:
            name = _series_name(family["name"], cell["labels"])
            if family["type"] == "histogram":
                summary = cell.get("summary") or {}
                value = (f"count {cell['count']}  "
                         f"sum {_format_number(round(cell['sum'], 6))}")
                if summary:
                    value += (f"  p50 {_format_number(summary['p50'])}"
                              f"  p90 {_format_number(summary['p90'])}")
            else:
                value = _format_number(cell["value"])
            rows.append([family["type"], name, value])
    width_type = max(len(row[0]) for row in rows)
    width_name = max(len(row[1]) for row in rows)
    for kind, name, value in rows:
        lines.append(f"  {kind:<{width_type}}  {name:<{width_name}}  {value}")
    return "\n".join(line.rstrip() for line in lines) + "\n"


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.1f}ms"


def render_span_waterfall(spans: List[dict]) -> str:
    """Render one sweep's span tree as an indented text waterfall.

    Each row is a span: tree-indented name, a bar positioned on the
    sweep timeline, duration, and start offset.  Sibling order and bar
    geometry are deterministic, so the output is golden-testable."""
    from repro.obs.trace import span_tree
    if not spans:
        return "trace: no spans\n"
    roots, children = span_tree(spans)
    t_min = min(span["startS"] for span in spans)
    t_max = max(span["endS"] for span in spans)
    extent = max(t_max - t_min, 1e-9)
    trace_id = spans[0]["traceId"]
    lines = [f"trace {trace_id}: {len(spans)} spans, "
             f"{_format_duration(t_max - t_min)} total"]

    rows = []

    def visit(span: dict, depth: int) -> None:
        rows.append((span, depth))
        for child in children.get(span["spanId"], []):
            visit(child, depth + 1)

    for root in roots:
        visit(root, 0)

    labels = []
    for span, depth in rows:
        label = "  " * depth + span["name"]
        tags = span.get("tags") or {}
        if tags:
            label += " [" + ", ".join(f"{k}={tags[k]}"
                                      for k in sorted(tags)) + "]"
        labels.append(label)
    width_label = max(len(label) for label in labels)

    for (span, _depth), label in zip(rows, labels):
        start = (span["startS"] - t_min) / extent
        end = (span["endS"] - t_min) / extent
        col0 = int(start * _BAR_WIDTH)
        col1 = max(int(end * _BAR_WIDTH), col0 + 1)
        bar = (" " * col0 + "#" * (col1 - col0)).ljust(_BAR_WIDTH)
        lines.append(
            f"  {label:<{width_label}} |{bar}| "
            f"{_format_duration(span['endS'] - span['startS']):>8} "
            f"@ {_format_duration(span['startS'] - t_min):>8}")
    return "\n".join(line.rstrip() for line in lines) + "\n"
