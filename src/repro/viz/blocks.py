"""Pipeline block panels and the full processor view (Figs. 1 and 12).

Each block is rendered with the control elements of Fig. 1: (1) the block
name in the top-left corner, (2) a line of crucial real-time information,
and (3) the block-specific list of active instructions.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.pipeline import Cpu
from repro.core.simcode import Phase

_WIDTH = 46


def _frame(title: str, info: str, rows: List[str],
           width: int = _WIDTH) -> str:
    """The shared block chrome of Fig. 1."""
    inner = width - 2
    top = f"+-[{title}]" + "-" * max(0, inner - len(title) - 3) + "+"
    lines = [top, "|" + info[:inner].ljust(inner) + "|",
             "|" + "-" * inner + "|"]
    if not rows:
        lines.append("|" + " (empty)".ljust(inner) + "|")
    for row in rows:
        lines.append("|" + (" " + row)[:inner].ljust(inner) + "|")
    lines.append("+" + "-" * inner + "+")
    return "\n".join(lines)


def render_block(cpu: Cpu, block: str) -> str:
    """Render one named block: fetch, decode, rob, issue.<CLASS>, fu.<NAME>,
    loadbuffer, storebuffer, registers, cache."""
    if block == "fetch":
        info = f"pc={cpu.pc:#06x}"
        if cpu.cycle < cpu.fetch_stall_until:
            info += f" STALLED until cycle {cpu.fetch_stall_until}"
        if cpu.fetch_past_end:
            info += " (past program end)"
        rows = [f"#{s.id:<4} {s.instruction.render()}"
                for s in cpu.fetch_buffer]
        return _frame("Fetch", info, rows)
    if block == "rob":
        info = (f"{len(cpu.rob)}/{cpu.config.buffers.rob_size} entries, "
                f"committed={cpu.committed}")
        rows = []
        for s in cpu.rob:
            state = "done" if s.stamped(Phase.WRITEBACK) is not None else "exec"
            rows.append(f"#{s.id:<4} {s.instruction.render():<28} {state}")
        return _frame("Reorder buffer", info, rows)
    if block.startswith("issue."):
        name = block.split(".", 1)[1]
        window = cpu.windows.get(name, [])
        info = f"{len(window)}/{cpu.config.buffers.issue_window_size} waiting"
        rows = []
        for s in sorted(window, key=lambda x: x.id):
            ready = "ready" if s.operands_ready else "waits"
            rows.append(f"#{s.id:<4} {s.instruction.render():<28} {ready}")
        return _frame(f"{name} issue window", info, rows)
    if block.startswith("fu."):
        name = block.split(".", 1)[1]
        for fu in cpu.fus + cpu.memory_units:
            if fu.spec.name == name:
                info = f"kind={fu.spec.kind} busy_cycles={fu.busy_cycles}"
                rows = []
                if fu.busy:
                    rows.append(f"#{fu.simcode.id:<4} "
                                f"{fu.simcode.instruction.render():<24} "
                                f"until cycle {fu.busy_until}")
                return _frame(f"Unit {name}", info, rows)
        raise KeyError(f"no functional unit named '{name}'")
    if block == "loadbuffer":
        info = (f"{len(cpu.load_buffer)}/"
                f"{cpu.config.memory.load_buffer_size} loads in flight")
        rows = [f"#{s.id:<4} {s.instruction.render():<24} "
                f"addr={'?' if s.address is None else hex(s.address)}"
                for s in cpu.load_buffer]
        return _frame("Load buffer", info, rows)
    if block == "storebuffer":
        info = (f"{len(cpu.store_buffer)}/"
                f"{cpu.config.memory.store_buffer_size} stores tracked")
        rows = []
        for e in cpu.store_buffer:
            state = "drain" if e.committed else (
                "ready" if e.address is not None else "addr?")
            addr = "?" if e.address is None else hex(e.address)
            rows.append(f"#{e.simcode.id:<4} "
                        f"{e.simcode.instruction.render():<22} "
                        f"{addr:<8} {state}")
        return _frame("Store buffer", info, rows)
    if block == "registers":
        snap = cpu.rename.snapshot()
        info = f"free rename tags: {snap['freeTags']}/{cpu.rename.size}"
        rows = []
        for i in range(32):
            value = cpu.arch_regs.read_int(i)
            tag = snap["rat"].get(f"x{i}")
            if value or tag is not None:
                renamed = f" -> t{tag}" if tag is not None else ""
                rows.append(f"x{i:<3} = {value}{renamed}")
        for i in range(32):
            value = cpu.arch_regs.read_fp(i)
            tag = snap["rat"].get(f"f{i}")
            if value or tag is not None:
                renamed = f" -> t{tag}" if tag is not None else ""
                rows.append(f"f{i:<3} = {value}{renamed}")
        return _frame("Registers", info, rows)
    if block == "cache":
        if cpu.cache is None:
            return _frame("L1 cache", "disabled", [])
        stats = cpu.cache.stats
        info = (f"{cpu.cache.config.line_count}x{cpu.cache.config.line_size}B "
                f"{cpu.cache.config.associativity}-way, "
                f"hit {stats.hit_ratio * 100:.1f}%")
        rows = []
        for line in cpu.cache.lines_snapshot():
            if line["valid"]:
                dirty = "D" if line["dirty"] else " "
                rows.append(f"set {line['set']:>2} way {line['way']} {dirty} "
                            f"base={line['baseAddress']:#06x}")
        return _frame("L1 cache", info, rows)
    raise KeyError(f"unknown block '{block}'")


def render_processor(cpu: Cpu) -> str:
    """The main simulator window (Fig. 12): top control bar, all processor
    components, and the right-hand status panel."""
    from repro.sim.statistics import RuntimeStatistics
    stats = RuntimeStatistics(cpu)
    header = (f"=== cycle {cpu.cycle} | pc={cpu.pc:#06x} | "
              f"IPC={stats.ipc:.2f} | committed={cpu.committed} | "
              f"branch acc={stats.branch_prediction_accuracy * 100:.1f}% | "
              f"{'HALTED: ' + cpu.halted if cpu.halted else 'running'} ===")
    sections = [header, render_block(cpu, "fetch"), render_block(cpu, "rob")]
    for name in ("FX", "FP", "LS", "Branch"):
        sections.append(render_block(cpu, f"issue.{name}"))
    for fu in cpu.fus + cpu.memory_units:
        sections.append(render_block(cpu, f"fu.{fu.spec.name}"))
    sections.append(render_block(cpu, "loadbuffer"))
    sections.append(render_block(cpu, "storebuffer"))
    sections.append(render_block(cpu, "registers"))
    sections.append(render_block(cpu, "cache"))
    panel = stats.panel(expanded=True)
    footer = "status: " + ", ".join(f"{k}={v}" for k, v in panel.items())
    sections.append(footer)
    return "\n".join(sections)
