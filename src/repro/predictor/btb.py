"""Branch target buffer.

Direct-mapped, indexed by PC; stores the last computed target of a branch
so the fetch unit can redirect without decoding.  A taken prediction whose
target is unknown falls through (and pays the mispredict penalty when the
branch resolves), which mirrors the behaviour users observe in the GUI.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigError


class BranchTargetBuffer:
    """PC -> predicted target mapping with a fixed number of entries."""

    def __init__(self, size: int = 64):
        if size <= 0:
            raise ConfigError("BTB size must be positive")
        self.size = size
        self._tags = [-1] * size
        self._targets = [0] * size
        self.lookups = 0
        self.hits = 0

    def _index(self, pc: int) -> int:
        return (pc >> 2) % self.size

    def lookup(self, pc: int) -> Optional[int]:
        """Predicted target of the branch at *pc* (None on miss)."""
        self.lookups += 1
        idx = self._index(pc)
        if self._tags[idx] == pc:
            self.hits += 1
            return self._targets[idx]
        return None

    def update(self, pc: int, target: int) -> None:
        """Record the resolved target of the branch at *pc*."""
        idx = self._index(pc)
        self._tags[idx] = pc
        self._targets[idx] = target

    def invalidate(self, pc: int) -> None:
        idx = self._index(pc)
        if self._tags[idx] == pc:
            self._tags[idx] = -1

    def reset(self) -> None:
        self._tags = [-1] * self.size
        self._targets = [0] * self.size
        self.lookups = 0
        self.hits = 0

    def snapshot(self) -> list:
        """Occupied entries, for the branch-unit pop-up view."""
        return [
            {"pc": tag, "target": target}
            for tag, target in zip(self._tags, self._targets) if tag >= 0
        ]

    # -- state-engine protocol (repro.sim.state) -------------------------
    def save_state(self) -> dict:
        return {
            "tags": list(self._tags),
            "targets": list(self._targets),
            "lookups": self.lookups,
            "hits": self.hits,
        }

    def restore_state(self, state: dict) -> None:
        self._tags = list(state["tags"])
        self._targets = list(state["targets"])
        self.lookups = state["lookups"]
        self.hits = state["hits"]
