"""Complete branch-prediction unit: PHT + history + BTB.

Configuration mirrors the Branch-prediction tab (Fig. 9): BTB size, PHT
size, predictor type (zero/one/two-bit), predictor default state, and the
choice between *local* history (per-branch shift registers) and a *global*
history shift register.  The PHT is indexed by ``(pc ^ history) % size``
(gshare-style) in global mode and by ``(pc + local_history)`` in local mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.predictor.bits import BitPredictor, make_bit_predictor
from repro.predictor.btb import BranchTargetBuffer


@dataclass
class PredictorConfig:
    """Branch-prediction tab of the architecture settings."""

    btb_size: int = 64
    pht_size: int = 64
    predictor_type: str = "two"       # zero | one | two
    default_state: int = 1            # seed state of fresh PHT entries
    use_global_history: bool = False  # False = local history registers
    history_bits: int = 4

    def validate(self) -> None:
        if self.btb_size <= 0 or self.pht_size <= 0:
            raise ConfigError("BTB and PHT sizes must be positive")
        if not 0 <= self.history_bits <= 16:
            raise ConfigError("history bits must be in 0..16")
        make_bit_predictor(self.predictor_type, self.default_state)

    def to_json(self) -> dict:
        return {
            "btbSize": self.btb_size,
            "phtSize": self.pht_size,
            "predictorType": self.predictor_type,
            "defaultState": self.default_state,
            "historyKind": "global" if self.use_global_history else "local",
            "historyBits": self.history_bits,
        }

    @staticmethod
    def from_json(data: dict) -> "PredictorConfig":
        return PredictorConfig(
            btb_size=int(data.get("btbSize", 64)),
            pht_size=int(data.get("phtSize", 64)),
            predictor_type=data.get("predictorType", "two"),
            default_state=int(data.get("defaultState", 1)),
            use_global_history=data.get("historyKind", "local") == "global",
            history_bits=int(data.get("historyBits", 4)),
        )


class BranchPredictor:
    """Prediction + training front-end used by fetch and the branch unit."""

    def __init__(self, config: PredictorConfig):
        config.validate()
        self.config = config
        self.btb = BranchTargetBuffer(config.btb_size)
        self._pht: List[Optional[BitPredictor]] = [None] * config.pht_size
        # Histories come in two copies: the *speculative* one is updated at
        # prediction time with the predicted direction (so back-to-back
        # correlated branches see each other), the *committed* one is
        # updated with actual outcomes at commit.  A pipeline flush repairs
        # the speculative copy from the committed copy.
        self._spec_global = 0
        self._commit_global = 0
        self._spec_local: Dict[int, int] = {}
        self._commit_local: Dict[int, int] = {}
        self._history_mask = (1 << config.history_bits) - 1
        #: state name reported for never-trained PHT entries (GUI queries
        #: must not allocate, so the default is rendered once up front)
        self._default_state_name = make_bit_predictor(
            config.predictor_type, config.default_state).state_name()
        # statistics
        self.predictions = 0
        self.correct = 0
        self.mispredictions = 0

    # ------------------------------------------------------------------
    def _index_for(self, pc: int, history: int) -> int:
        return ((pc >> 2) ^ history) % self.config.pht_size

    def _spec_index(self, pc: int) -> int:
        history = self._spec_global if self.config.use_global_history \
            else self._spec_local.get(pc, 0)
        return self._index_for(pc, history)

    def _entry_at(self, index: int) -> BitPredictor:
        entry = self._pht[index]
        if entry is None:
            entry = make_bit_predictor(self.config.predictor_type,
                                       self.config.default_state)
            self._pht[index] = entry
        return entry

    # ------------------------------------------------------------------
    def predict(self, pc: int, unconditional: bool = False) -> Tuple[bool, Optional[int]]:
        """Predict the branch at *pc*: returns (taken?, target-or-None)."""
        taken, target, _index = self.predict_indexed(pc, unconditional)
        return taken, target

    def predict_indexed(self, pc: int,
                        unconditional: bool = False) -> Tuple[bool, Optional[int], int]:
        """Predict and return the PHT index used, so commit-time training
        updates the exact entry that produced the prediction."""
        target = self.btb.lookup(pc)
        index = self._spec_index(pc)
        if unconditional:
            taken = True
        else:
            taken = self._entry_at(index).predict()
        # speculative history update with the predicted direction
        if self.config.use_global_history:
            self._spec_global = ((self._spec_global << 1) | int(taken)) \
                & self._history_mask
        else:
            old = self._spec_local.get(pc, 0)
            self._spec_local[pc] = ((old << 1) | int(taken)) \
                & self._history_mask
        return taken, target, index

    def entry_state(self, pc: int) -> str:
        """Human-readable PHT state for the GUI (e.g. 'weakly-taken').

        Read-only: a query for a PC whose entry was never trained reports
        the configured default state without allocating a PHT entry."""
        entry = self._pht[self._spec_index(pc)]
        if entry is None:
            return self._default_state_name
        return entry.state_name()

    # ------------------------------------------------------------------
    def train(self, pc: int, taken: bool, target: int,
              predicted_taken: bool, predicted_target: Optional[int],
              pht_index: Optional[int] = None,
              unconditional: bool = False) -> bool:
        """Record the resolved outcome; returns True if prediction correct.

        A prediction counts as correct only if both direction and (for taken
        branches) target were right — a taken guess without a BTB target is
        a misfetch and counts as a misprediction.

        Unconditional branches (``jal``/``ret``/``jalr``) never consult the
        direction counters at predict time, so training them would only
        pollute aliased conditional entries (gshare indexing makes PHT
        collisions routine); they still update the BTB, the histories and
        the statistics.
        """
        self.predictions += 1
        index = pht_index if pht_index is not None \
            else self._index_for(pc, self._commit_global
                                 if self.config.use_global_history
                                 else self._commit_local.get(pc, 0))
        if not unconditional:
            self._entry_at(index).update(taken)
        if self.config.use_global_history:
            self._commit_global = ((self._commit_global << 1) | int(taken)) \
                & self._history_mask
        else:
            old = self._commit_local.get(pc, 0)
            self._commit_local[pc] = ((old << 1) | int(taken)) \
                & self._history_mask
        if taken:
            self.btb.update(pc, target)
        correct = (predicted_taken == taken) and \
            (not taken or predicted_target == target)
        if correct:
            self.correct += 1
        else:
            self.mispredictions += 1
        return correct

    def on_flush(self) -> None:
        """Pipeline flush: repair speculative histories from committed."""
        self._spec_global = self._commit_global
        self._spec_local = dict(self._commit_local)

    # ------------------------------------------------------------------
    @property
    def accuracy(self) -> float:
        return self.correct / self.predictions if self.predictions else 1.0

    def reset(self) -> None:
        self.btb.reset()
        self._pht = [None] * self.config.pht_size
        self._spec_global = self._commit_global = 0
        self._spec_local.clear()
        self._commit_local.clear()
        self.predictions = self.correct = self.mispredictions = 0

    def stats(self) -> dict:
        return {
            "predictions": self.predictions,
            "correct": self.correct,
            "mispredictions": self.mispredictions,
            "accuracy": self.accuracy,
            "btbLookups": self.btb.lookups,
            "btbHits": self.btb.hits,
        }

    # -- state-engine protocol (repro.sim.state) -------------------------
    def save_state(self) -> dict:
        return {
            "btb": self.btb.save_state(),
            #: PHT as sparse (index, counter state) pairs
            "pht": [(i, e.state) for i, e in enumerate(self._pht)
                    if e is not None],
            "histories": (self._spec_global, self._commit_global,
                          dict(self._spec_local), dict(self._commit_local)),
            "counters": (self.predictions, self.correct,
                         self.mispredictions),
        }

    def restore_state(self, state: dict) -> None:
        self.btb.restore_state(state["btb"])
        self._pht = [None] * self.config.pht_size
        for index, counter_state in state["pht"]:
            entry = make_bit_predictor(self.config.predictor_type,
                                       self.config.default_state)
            entry.state = counter_state
            self._pht[index] = entry
        (self._spec_global, self._commit_global,
         spec_local, commit_local) = state["histories"]
        self._spec_local = dict(spec_local)
        self._commit_local = dict(commit_local)
        (self.predictions, self.correct,
         self.mispredictions) = state["counters"]
