"""Branch prediction: zero/one/two-bit predictors, BTB, PHT, history.

The Branch-prediction tab (Fig. 9) exposes: branch target buffer size,
pattern history table size, predictor type (zero, one, or two-bit),
predictor default state, and local vs. global history shift registers.
"""

from repro.predictor.bits import (
    BitPredictor,
    ZeroBitPredictor,
    OneBitPredictor,
    TwoBitPredictor,
    make_bit_predictor,
)
from repro.predictor.btb import BranchTargetBuffer
from repro.predictor.unit import BranchPredictor, PredictorConfig

__all__ = [
    "BitPredictor",
    "ZeroBitPredictor",
    "OneBitPredictor",
    "TwoBitPredictor",
    "make_bit_predictor",
    "BranchTargetBuffer",
    "BranchPredictor",
    "PredictorConfig",
]
