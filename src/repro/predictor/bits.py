"""Saturating-counter branch predictors (zero-, one- and two-bit).

Each PHT entry is one of these small state machines.  The "default state"
from the configuration seeds new entries (e.g. a two-bit predictor starting
at *weakly taken*).
"""

from __future__ import annotations

from repro.errors import ConfigError


class BitPredictor:
    """Base class: predicts taken/not-taken, learns from outcomes."""

    states = 1

    def __init__(self, initial_state: int = 0):
        if not 0 <= initial_state < self.states:
            raise ConfigError(
                f"{type(self).__name__}: initial state {initial_state} out of "
                f"range 0..{self.states - 1}")
        self.state = initial_state
        self.initial_state = initial_state

    def predict(self) -> bool:
        raise NotImplementedError

    def update(self, taken: bool) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        self.state = self.initial_state

    def state_name(self) -> str:
        raise NotImplementedError

    def clone(self) -> "BitPredictor":
        copy = type(self)(self.initial_state)
        copy.state = self.state
        return copy


class ZeroBitPredictor(BitPredictor):
    """Static predictor: always predicts its configured direction."""

    states = 2  # 0 = always not taken, 1 = always taken

    def predict(self) -> bool:
        return self.state == 1

    def update(self, taken: bool) -> None:
        pass  # static: never learns

    def state_name(self) -> str:
        return "always-taken" if self.state else "always-not-taken"


class OneBitPredictor(BitPredictor):
    """Remembers the last outcome."""

    states = 2  # 0 = not taken, 1 = taken

    def predict(self) -> bool:
        return self.state == 1

    def update(self, taken: bool) -> None:
        self.state = 1 if taken else 0

    def state_name(self) -> str:
        return "taken" if self.state else "not-taken"


class TwoBitPredictor(BitPredictor):
    """Classic 2-bit saturating counter."""

    states = 4  # 0 strongly-NT, 1 weakly-NT, 2 weakly-T, 3 strongly-T
    _NAMES = ("strongly-not-taken", "weakly-not-taken",
              "weakly-taken", "strongly-taken")

    def predict(self) -> bool:
        return self.state >= 2

    def update(self, taken: bool) -> None:
        if taken:
            self.state = min(3, self.state + 1)
        else:
            self.state = max(0, self.state - 1)

    def state_name(self) -> str:
        return self._NAMES[self.state]


_KINDS = {
    "zero": ZeroBitPredictor, "0bit": ZeroBitPredictor,
    "one": OneBitPredictor, "1bit": OneBitPredictor,
    "two": TwoBitPredictor, "2bit": TwoBitPredictor,
}


def make_bit_predictor(kind: str, initial_state: int = 0) -> BitPredictor:
    """Instantiate a predictor by configuration name."""
    cls = _KINDS.get(kind.lower())
    if cls is None:
        raise ConfigError(
            f"unknown predictor type '{kind}' (expected zero, one or two)")
    return cls(initial_state)
