"""Committed lint baseline.

The baseline records findings that were inspected and judged harmless
(each with a human-written justification) so they do not block CI, while
any *new* finding still fails.  Entries are keyed by
``(rule, file, message)`` -- line numbers are excluded so unrelated edits
do not churn the file.

The baseline also pins the HTTP protocol surface (``PROTOCOL_VERSION`` +
route list) so the protocol-completeness rule can detect a route-set
change that forgot to bump the version.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analyze.findings import Finding

BASELINE_SCHEMA_VERSION = 1

Key = Tuple[str, str, str]


class Baseline:
    def __init__(self,
                 entries: Optional[Dict[Key, str]] = None,
                 protocol_version: Optional[int] = None,
                 protocol_routes: Optional[List[str]] = None):
        #: accepted finding key -> justification text
        self.entries: Dict[Key, str] = dict(entries or {})
        #: protocol surface pinned at baseline time (None = not pinned yet)
        self.protocol_version = protocol_version
        self.protocol_routes = list(protocol_routes or []) or None

    # -- queries --------------------------------------------------------
    def is_baselined(self, finding: Finding) -> bool:
        return finding.key() in self.entries

    def split(self, findings: Iterable[Finding]):
        """Partition into (new, baselined) preserving order."""
        new: List[Finding] = []
        old: List[Finding] = []
        for finding in findings:
            (old if self.is_baselined(finding) else new).append(finding)
        return new, old

    def stale_keys(self, findings: Iterable[Finding]) -> List[Key]:
        """Baseline entries that no finding matched (candidates for
        removal on the next ``--update-baseline``)."""
        live = {f.key() for f in findings}
        return sorted(k for k in self.entries if k not in live)

    # -- persistence ----------------------------------------------------
    @classmethod
    def load(cls, path: Path) -> "Baseline":
        path = Path(path)
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        entries: Dict[Key, str] = {}
        for item in data.get("findings", []):
            key = (item["rule"], item["file"], item["message"])
            entries[key] = item.get("justification", "")
        protocol = data.get("protocol") or {}
        return cls(entries,
                   protocol_version=protocol.get("version"),
                   protocol_routes=protocol.get("routes"))

    def save(self, path: Path) -> None:
        items = []
        for (rule, file, message) in sorted(self.entries):
            item = {"rule": rule, "file": file, "message": message}
            justification = self.entries[(rule, file, message)]
            if justification:
                item["justification"] = justification
            items.append(item)
        data: dict = {"version": BASELINE_SCHEMA_VERSION, "findings": items}
        if self.protocol_version is not None:
            data["protocol"] = {"version": self.protocol_version,
                                "routes": sorted(self.protocol_routes or [])}
        Path(path).write_text(json.dumps(data, indent=2, sort_keys=False)
                              + "\n", encoding="utf-8")

    def updated(self, findings: Iterable[Finding],
                protocol_version: Optional[int] = None,
                protocol_routes: Optional[List[str]] = None) -> "Baseline":
        """New baseline accepting *findings*, keeping existing
        justifications for keys that persist."""
        entries: Dict[Key, str] = {}
        for finding in findings:
            key = finding.key()
            entries[key] = self.entries.get(key, "")
        return Baseline(
            entries,
            protocol_version=(protocol_version
                              if protocol_version is not None
                              else self.protocol_version),
            protocol_routes=(protocol_routes
                             if protocol_routes is not None
                             else self.protocol_routes))
