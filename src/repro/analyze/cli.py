"""``repro-sim lint`` — run the invariant checker from the command line.

Exit codes: 0 when every finding is baselined (or there are none),
1 when new findings exist, 2 on usage errors (argparse convention).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analyze.baseline import Baseline
from repro.analyze.engine import LintEngine
from repro.analyze.findings import Finding
from repro.analyze.project import Project, discover_root
from repro.analyze.rules.protocol import extract_protocol

#: JSON report schema version (tests pin this; bump on shape changes)
REPORT_SCHEMA_VERSION = 1

DEFAULT_BASELINE = "lint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim lint",
        description="Static invariant checker for the repro tree "
                    "(state contracts, lock discipline, determinism, "
                    "protocol completeness)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help=f"baseline file (default: "
                             f"<root>/{DEFAULT_BASELINE})")
    parser.add_argument("--update-baseline", action="store_true",
                        help="accept all current findings into the "
                             "baseline (preserving justifications) and "
                             "re-pin the protocol surface")
    parser.add_argument("--root", default=None, metavar="PATH",
                        help="repo root holding src/repro (default: "
                             "discovered from the installed package)")
    return parser


def _report_json(new: List[Finding], baselined: List[Finding],
                 stale: list) -> dict:
    return {
        "version": REPORT_SCHEMA_VERSION,
        "findings": [f.to_json() for f in new],
        "baselined": [f.to_json() for f in baselined],
        "staleBaselineEntries": [list(key) for key in stale],
        "counts": {"new": len(new), "baselined": len(baselined),
                   "stale": len(stale)},
    }


def lint_main(argv: Optional[List[str]] = None, out=None) -> int:
    args = build_parser().parse_args(argv)
    out = out if out is not None else sys.stdout

    try:
        root = (Path(args.root).resolve() if args.root
                else discover_root())
        project = Project.load(root)
    except (FileNotFoundError, SyntaxError) as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    baseline_path = (Path(args.baseline) if args.baseline
                     else root / DEFAULT_BASELINE)
    baseline = Baseline.load(baseline_path)
    engine = LintEngine(project, baseline=baseline)
    findings = engine.run()
    new, baselined = baseline.split(findings)
    stale = baseline.stale_keys(findings)

    if args.update_baseline:
        version, routes = extract_protocol(project)
        updated = baseline.updated(findings, protocol_version=version,
                                   protocol_routes=routes)
        updated.save(baseline_path)
        print(f"baseline updated: {baseline_path} "
              f"({len(findings)} finding(s) accepted)", file=out)
        return 0

    if args.format == "json":
        json.dump(_report_json(new, baselined, stale), out, indent=2)
        print(file=out)
    else:
        for finding in new:
            print(finding.render(), file=out)
        for key in stale:
            print(f"note: stale baseline entry (no longer fires): "
                  f"{key[0]} {key[1]}: {key[2]}", file=out)
        print(f"repro-lint: {len(new)} new finding(s), "
              f"{len(baselined)} baselined, {len(stale)} stale "
              f"baseline entr{'y' if len(stale) == 1 else 'ies'}",
              file=out)
    return 1 if new else 0
