"""The lint engine: run a set of rules over a parsed project."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analyze.baseline import Baseline
from repro.analyze.findings import Finding, sort_findings
from repro.analyze.project import Project


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`name` (the rule-family slug used in docs and
    tests) and implement :meth:`run`, returning findings whose ``rule``
    ids start with the family's prefix (e.g. ``SC001``).
    """

    name: str = "rule"

    def run(self, project: Project, baseline: Baseline) -> List[Finding]:
        raise NotImplementedError


def default_rules() -> List[Rule]:
    """The four project rule families, in documentation order."""
    # imported here so `repro.analyze.engine` stays importable from rule
    # modules without a cycle
    from repro.analyze.rules.state_contract import StateContractRule
    from repro.analyze.rules.lock_discipline import LockDisciplineRule
    from repro.analyze.rules.determinism import DeterminismRule
    from repro.analyze.rules.protocol import ProtocolCompletenessRule
    return [StateContractRule(), LockDisciplineRule(), DeterminismRule(),
            ProtocolCompletenessRule()]


class LintEngine:
    def __init__(self, project: Project,
                 rules: Optional[Sequence[Rule]] = None,
                 baseline: Optional[Baseline] = None):
        self.project = project
        self.rules = list(rules) if rules is not None else default_rules()
        self.baseline = baseline if baseline is not None else Baseline()

    def run(self) -> List[Finding]:
        """All findings from all rules, sorted by location."""
        findings: List[Finding] = []
        for rule in self.rules:
            findings.extend(rule.run(self.project, self.baseline))
        return sort_findings(findings)
