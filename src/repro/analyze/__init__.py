"""repro-lint: AST-based invariant checking for the repro tree.

The packages grown around the simulator (explore, fleet, server) rest on
conventions that ordinary tests cannot see: the save/restore state
contract with dirty-version counters (``repro.sim.state``), the
lock-discipline of the concurrent modules, the byte-identical-records
determinism bar of the sweep backends, and the completeness of the HTTP
protocol surface.  This package parses the whole ``src/repro`` tree with
:mod:`ast` and runs a pluggable set of project-specific rules over it,
emitting structured findings checked against a committed baseline.

Entry points:

- :func:`repro.analyze.cli.lint_main` -- the ``repro-sim lint`` command
- :class:`repro.analyze.engine.LintEngine` -- in-process API (used by the
  self-check test in ``tests/analyze``)
"""

from repro.analyze.findings import Finding, Severity
from repro.analyze.project import Project
from repro.analyze.engine import LintEngine, default_rules

__all__ = ["Finding", "Severity", "Project", "LintEngine", "default_rules"]
