"""Small AST helpers shared by the lint rules."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute/name chains; None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def self_attr(node: ast.AST) -> Optional[str]:
    """Attribute name when *node* is exactly ``self.<attr>``."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def iter_functions(class_node: ast.ClassDef) -> Iterator[ast.FunctionDef]:
    """Direct methods of a class (sync and async)."""
    for stmt in class_node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield stmt


def iter_classes(tree: ast.Module) -> Iterator[ast.ClassDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield node


def assign_targets(node: ast.AST) -> List[ast.expr]:
    """Store-context target expressions of any assignment statement."""
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        return [node.target]
    return []


def assigned_self_attrs(func: ast.AST) -> List[Tuple[str, int]]:
    """``(attr, line)`` for every ``self.X`` target assigned in *func*,
    including subscript/slice stores (``self.X[i] = ...``) and tuple
    unpacking (``self.a, self.b = ...``)."""
    out: List[Tuple[str, int]] = []

    def visit_target(target: ast.expr, line: int) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                visit_target(element, line)
            return
        if isinstance(target, ast.Starred):
            visit_target(target.value, line)
            return
        base = target
        while isinstance(base, ast.Subscript):
            base = base.value
        attr = self_attr(base)
        if attr is not None:
            out.append((attr, line))

    for node in ast.walk(func):
        for target in assign_targets(node):
            visit_target(target, node.lineno)
    return out


def string_constants(node: ast.AST) -> Iterator[Tuple[str, int]]:
    """Every string literal in *node*, including f-string fragments."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            yield sub.value, sub.lineno
