"""Project loader: parse the ``src/repro`` tree and build an import graph.

Rules operate on :class:`Project`, which holds every module of the
package as a parsed :mod:`ast` tree plus enough metadata (dotted name,
repo-relative path) to emit stable findings.  The import graph covers
*all* import statements -- including imports nested inside functions,
which the explore/fleet modules use to defer heavy dependencies -- so
reachability queries (e.g. "everything a sweep job can execute") see the
true runtime footprint.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set


class Module:
    """One parsed source file of the project package."""

    def __init__(self, name: str, path: Path, rel: str, source: str,
                 tree: ast.Module):
        self.name = name          # dotted module name, e.g. "repro.sim.state"
        self.path = path          # absolute path on disk
        self.rel = rel            # repo-root-relative POSIX path
        self.source = source
        self.tree = tree

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Module({self.name!r})"


class Project:
    """All parsed modules of a package tree, keyed by dotted name."""

    def __init__(self, root: Path, package: str, modules: Dict[str, Module]):
        self.root = root
        self.package = package
        self.modules = modules
        self._imports: Optional[Dict[str, Set[str]]] = None

    # -- loading --------------------------------------------------------
    @classmethod
    def load(cls, root: Path, package: str = "repro",
             src_dir: str = "src") -> "Project":
        """Parse every ``.py`` file under ``<root>/<src_dir>/<package>``."""
        root = Path(root).resolve()
        package_dir = root / src_dir / package
        if not package_dir.is_dir():
            raise FileNotFoundError(
                f"package directory not found: {package_dir}")
        modules: Dict[str, Module] = {}
        for path in sorted(package_dir.rglob("*.py")):
            rel_parts = path.relative_to(package_dir).with_suffix("").parts
            if rel_parts[-1] == "__init__":
                rel_parts = rel_parts[:-1]
            name = ".".join((package,) + rel_parts)
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
            rel = path.relative_to(root).as_posix()
            modules[name] = Module(name, path, rel, source, tree)
        return cls(root, package, modules)

    # -- lookups --------------------------------------------------------
    def get(self, name: str) -> Optional[Module]:
        return self.modules.get(name)

    def by_rel(self, rel: str) -> Optional[Module]:
        for module in self.modules.values():
            if module.rel == rel:
                return module
        return None

    def __iter__(self) -> Iterable[Module]:
        return iter(self.modules.values())

    # -- import graph ---------------------------------------------------
    def imports_of(self, name: str) -> Set[str]:
        """Project-internal modules imported (anywhere) by *name*."""
        if self._imports is None:
            self._imports = {m: self._extract_imports(self.modules[m])
                             for m in self.modules}
        return self._imports.get(name, set())

    def reachable_from(self, name: str) -> Set[str]:
        """Transitive closure of :meth:`imports_of` including *name*."""
        seen: Set[str] = set()
        stack: List[str] = [name]
        while stack:
            current = stack.pop()
            if current in seen or current not in self.modules:
                continue
            seen.add(current)
            stack.extend(self.imports_of(current))
        return seen

    def _extract_imports(self, module: Module) -> Set[str]:
        out: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self._note(alias.name, out)
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from(module, node)
                if base is None:
                    continue
                for alias in node.names:
                    # "from repro.x import y": y may itself be a module
                    candidate = f"{base}.{alias.name}"
                    if candidate in self.modules:
                        out.add(candidate)
                    else:
                        self._note(base, out)
        out.discard(module.name)
        return out

    def _resolve_from(self, module: Module,
                      node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module if (node.module or "").startswith(
                self.package) else None
        # relative import: trim `level` components off the importer
        parts = module.name.split(".")
        if module.path.name == "__init__.py":
            parts = parts + ["__init__"]
        base_parts = parts[:-node.level]
        if not base_parts:
            return None
        base = ".".join(base_parts)
        return f"{base}.{node.module}" if node.module else base

    def _note(self, name: str, out: Set[str]) -> None:
        """Record *name* (or its deepest existing parent package)."""
        if not name.startswith(self.package):
            return
        parts = name.split(".")
        while parts:
            candidate = ".".join(parts)
            if candidate in self.modules:
                out.add(candidate)
                return
            parts.pop()


def discover_root(start: Optional[Path] = None) -> Path:
    """Find the repo root: the nearest ancestor holding ``src/repro``.

    Defaults to starting from this file's own location, which resolves to
    the checkout the running package was imported from.
    """
    here = (start or Path(__file__)).resolve()
    for candidate in [here] + list(here.parents):
        if (candidate / "src" / "repro").is_dir():
            return candidate
    raise FileNotFoundError(
        f"no src/repro tree found above {here}")
