"""State-contract rules (the ``repro.sim.state`` save/restore protocol).

The checkpoint engine relies on two conventions:

- **SC001** -- a component that defines ``save_state`` must define
  ``restore_state`` and vice versa; a one-sided component either cannot
  be checkpointed or cannot be rewound.
- **SC002** -- components with a dirty-version counter (``self.version``
  / ``sver``, used by the snapshot caches to skip re-serialising
  unchanged sections) must bump it in **every** method that mutates an
  attribute captured by ``save_state``.  A missing bump silently serves
  stale checkpoint sections.

Persisted attributes are inferred from ``save_state`` itself: every
``self.X`` the method reads is part of the frozen state.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.analyze import astutil
from repro.analyze.baseline import Baseline
from repro.analyze.engine import Rule
from repro.analyze.findings import Finding
from repro.analyze.project import Project

#: attribute names recognised as dirty-version counters
VERSION_ATTRS = ("version", "_version", "sver", "_sver")

#: methods never treated as mutators (the protocol itself + construction)
EXEMPT_METHODS = ("__init__", "save_state")


class StateContractRule(Rule):
    name = "state-contract"

    def run(self, project: Project, baseline: Baseline) -> List[Finding]:
        findings: List[Finding] = []
        for module in project:
            for class_node in astutil.iter_classes(module.tree):
                findings.extend(self._check_class(module.rel, class_node))
        return findings

    # ------------------------------------------------------------------
    def _check_class(self, rel: str,
                     class_node: ast.ClassDef) -> List[Finding]:
        methods: Dict[str, ast.FunctionDef] = {
            f.name: f for f in astutil.iter_functions(class_node)}
        save = methods.get("save_state")
        restore = methods.get("restore_state")
        findings: List[Finding] = []

        if (save is None) != (restore is None):
            have, miss = (("save_state", "restore_state") if save
                          else ("restore_state", "save_state"))
            findings.append(Finding(
                rule="SC001", file=rel, line=class_node.lineno,
                message=(f"class {class_node.name} defines {have} "
                         f"without {miss}")))
        if save is None:
            return findings

        version_attr = self._version_attr(methods.get("__init__"))
        if version_attr is None:
            return findings
        persisted = self._persisted_attrs(save)
        persisted.discard(version_attr)
        if not persisted:
            return findings

        for method in astutil.iter_functions(class_node):
            if method.name in EXEMPT_METHODS:
                continue
            mutated = sorted({attr for attr, _ in
                              astutil.assigned_self_attrs(method)}
                             & persisted)
            if not mutated and method.name != "restore_state":
                continue
            if self._bumps(method, version_attr):
                continue
            if method.name == "restore_state":
                findings.append(Finding(
                    rule="SC002", file=rel, line=method.lineno,
                    message=(f"{class_node.name}.restore_state does not "
                             f"bump {version_attr} (snapshot caches keyed "
                             f"on it go stale after a rewind)")))
            else:
                findings.append(Finding(
                    rule="SC002", file=rel, line=method.lineno,
                    message=(f"{class_node.name}.{method.name} mutates "
                             f"persisted attribute(s) "
                             f"{', '.join(mutated)} without bumping "
                             f"{version_attr}")))
        return findings

    # ------------------------------------------------------------------
    def _version_attr(self,
                      init: Optional[ast.FunctionDef]) -> Optional[str]:
        """The dirty-counter attribute assigned in ``__init__`` (if any)."""
        if init is None:
            return None
        for attr, _ in astutil.assigned_self_attrs(init):
            if attr in VERSION_ATTRS:
                return attr
        return None

    def _persisted_attrs(self, save: ast.FunctionDef) -> Set[str]:
        """``self.X`` attributes read by ``save_state`` (excluding method
        calls like ``self.helper()``)."""
        call_funcs = {id(node.func) for node in ast.walk(save)
                      if isinstance(node, ast.Call)}
        out: Set[str] = set()
        for node in ast.walk(save):
            if not isinstance(node, ast.Attribute):
                continue
            if not isinstance(node.ctx, ast.Load):
                continue
            if id(node) in call_funcs:
                continue
            attr = astutil.self_attr(node)
            if attr is not None:
                out.add(attr)
        return out

    def _bumps(self, method: ast.FunctionDef, version_attr: str) -> bool:
        for node in ast.walk(method):
            for target in astutil.assign_targets(node):
                if astutil.self_attr(target) == version_attr:
                    return True
        return False
