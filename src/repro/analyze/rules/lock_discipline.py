"""Lock-discipline rules for the concurrent modules.

- **LD001** -- within each lock-bearing class, the set of private
  ``self._*`` attributes accessed inside ``with self._lock:`` blocks is
  inferred to be *guarded*; any access to a guarded attribute outside a
  lock context (and outside ``__init__`` / ``*_locked`` helpers, which
  are held-by-convention) is flagged.
- **LD002** -- ``with`` blocks acquiring one lock inside another define a
  lock-ordering edge; a pair of opposing edges (A taken under B *and* B
  taken under A) is a lock-order inversion, i.e. a latent ABBA deadlock.
  Re-acquiring a non-reentrant ``threading.Lock`` under itself is
  reported through the same check (a self-inversion).

``threading.Condition(self._lock)`` aliases (``_wake``, ``_work_ready``)
are canonicalised onto the underlying lock, so waiting on the condition
counts as holding the lock and never reports a spurious inversion.

The rule only examines the modules listed in :data:`LOCK_MODULES` -- the
parts of the tree that own threads; the simulator core is single-threaded
by design and stays out of scope.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analyze import astutil
from repro.analyze.baseline import Baseline
from repro.analyze.engine import Rule
from repro.analyze.findings import Finding
from repro.analyze.project import Project

#: repo-relative paths of the lock-bearing modules under the rule
LOCK_MODULES = (
    "src/repro/explore/pool.py",
    "src/repro/explore/service.py",
    "src/repro/explore/artifacts.py",
    "src/repro/explore/backend.py",
    "src/repro/explore/warehouse.py",
    "src/repro/fleet/registry.py",
    "src/repro/fleet/scheduler.py",
    "src/repro/fleet/cancel.py",
    "src/repro/server/session.py",
    "src/repro/obs/metrics.py",
)

#: attribute names accepted as lock objects when the owning class does not
#: construct them itself (e.g. inherited from a base in another module, or
#: reached through a chain like ``self.backend._lock``)
LOCK_NAME_HINTS = ("lock", "_lock", "_wake", "_work_ready", "_cond",
                   "_condition")

_LOCK_FACTORIES = {"Lock": "lock", "RLock": "rlock", "Condition": "condition",
                   "Semaphore": "semaphore",
                   "BoundedSemaphore": "semaphore"}


def _is_lockish_name(attr: str) -> bool:
    return attr in LOCK_NAME_HINTS or "lock" in attr.lower()


class _ClassLocks:
    """Lock attributes of one class: kinds + condition aliasing."""

    def __init__(self) -> None:
        self.kinds: Dict[str, str] = {}    # attr -> lock/rlock/condition/...
        self.alias: Dict[str, str] = {}    # condition attr -> lock attr

    def canonical(self, attr: str) -> str:
        return self.alias.get(attr, attr)

    @property
    def attrs(self) -> Set[str]:
        return set(self.kinds)

    def primary(self) -> Optional[str]:
        """The lock assumed held inside ``*_locked`` helper methods."""
        for preferred in ("_lock", "lock"):
            if preferred in self.kinds:
                return self.canonical(preferred)
        return self.canonical(next(iter(sorted(self.kinds))))  \
            if self.kinds else None


class LockDisciplineRule(Rule):
    name = "lock-discipline"

    def __init__(self, modules: Tuple[str, ...] = LOCK_MODULES):
        self.modules = modules

    def run(self, project: Project, baseline: Baseline) -> List[Finding]:
        findings: List[Finding] = []
        # (holder, acquired) -> (file, line) of first observation
        edges: Dict[Tuple[str, str], Tuple[str, int]] = {}
        kinds: Dict[str, str] = {}   # lock identity -> kind (if known)
        for rel in self.modules:
            module = project.by_rel(rel)
            if module is None:
                continue
            for class_node in astutil.iter_classes(module.tree):
                findings.extend(self._check_class(
                    rel, class_node, edges, kinds))
        findings.extend(self._inversions(edges, kinds))
        return findings

    # -- per-class analysis ---------------------------------------------
    def _check_class(self, rel: str, class_node: ast.ClassDef,
                     edges: Dict[Tuple[str, str], Tuple[str, int]],
                     kinds: Dict[str, str]) -> List[Finding]:
        locks = self._collect_locks(class_node)
        if not locks.kinds:
            return []
        for attr in locks.kinds:
            canon = locks.canonical(attr)
            kinds[self._identity(class_node, canon)] = \
                locks.kinds.get(canon, "unknown")

        # pass 1: guarded set = private attrs accessed while a lock is held
        guarded: Dict[str, str] = {}   # attr -> lock identity guarding it
        accesses: List[Tuple[str, bool, str, int]] = []
        #          (attr, held, method, line)
        method_names = {f.name for f in astutil.iter_functions(class_node)}
        for method in astutil.iter_functions(class_node):
            self._scan(rel, class_node, method, locks, method_names, edges,
                       guarded, accesses)

        # pass 2: guarded attrs touched without the lock
        findings: List[Finding] = []
        reported: Set[Tuple[str, str]] = set()
        for attr, held, method, line in accesses:
            if held or attr not in guarded:
                continue
            if method == "__init__" or method.endswith("_locked"):
                continue
            if (attr, method) in reported:
                continue
            reported.add((attr, method))
            findings.append(Finding(
                rule="LD001", file=rel, line=line,
                message=(f"{class_node.name}.{attr} is guarded by "
                         f"{guarded[attr]} but accessed outside it "
                         f"in {method}()")))
        return findings

    def _collect_locks(self, class_node: ast.ClassDef) -> _ClassLocks:
        locks = _ClassLocks()
        init = next((f for f in astutil.iter_functions(class_node)
                     if f.name == "__init__"), None)
        if init is not None:
            for node in ast.walk(init):
                if not isinstance(node, ast.Assign):
                    continue
                if not isinstance(node.value, ast.Call):
                    continue
                dotted = astutil.dotted_name(node.value.func) or ""
                factory = dotted.rsplit(".", 1)[-1]
                kind = _LOCK_FACTORIES.get(factory)
                if kind is None:
                    continue
                for target in node.targets:
                    attr = astutil.self_attr(target)
                    if attr is None:
                        continue
                    locks.kinds[attr] = kind
                    if kind == "condition" and node.value.args:
                        underlying = astutil.self_attr(node.value.args[0])
                        if underlying is not None:
                            locks.alias[attr] = underlying
        # locks used but not constructed here (inherited / chained)
        for node in ast.walk(class_node):
            if isinstance(node, ast.With):
                for item in node.items:
                    attr = astutil.self_attr(item.context_expr)
                    if (attr is not None and attr not in locks.kinds
                            and _is_lockish_name(attr)):
                        locks.kinds[attr] = "unknown"
        return locks

    # -- lexical lock-context scan --------------------------------------
    def _identity(self, class_node: ast.ClassDef, name: str) -> str:
        return f"{class_node.name}.{name}"

    def _lock_expr(self, class_node: ast.ClassDef, locks: _ClassLocks,
                   expr: ast.expr) -> Optional[str]:
        """Lock identity when *expr* is a lock acquisition, else None."""
        attr = astutil.self_attr(expr)
        if attr is not None:
            if attr in locks.kinds:
                return self._identity(class_node, locks.canonical(attr))
            return None
        dotted = astutil.dotted_name(expr)
        if dotted and dotted.startswith("self."):
            leaf = dotted.rsplit(".", 1)[-1]
            if _is_lockish_name(leaf):
                # chained lock (e.g. self.backend._lock): identity carries
                # the chain so different targets stay distinct
                return f"{class_node.name}.{dotted[len('self.'):]}"
        return None

    def _scan(self, rel: str, class_node: ast.ClassDef,
              method: ast.FunctionDef,
              locks: _ClassLocks, method_names: Set[str],
              edges: Dict[Tuple[str, str], Tuple[str, int]],
              guarded: Dict[str, str],
              accesses: List[Tuple[str, bool, str, int]]) -> None:
        rel_holder = []
        primary = locks.primary()
        if method.name.endswith("_locked") and primary is not None:
            rel_holder.append(self._identity(class_node, primary))
        own_identities = {self._identity(class_node, locks.canonical(a))
                         for a in locks.kinds}

        def visit(node: ast.AST, held: List[str]) -> None:
            if isinstance(node, ast.With):
                acquired: List[str] = []
                for item in node.items:
                    identity = self._lock_expr(class_node, locks,
                                               item.context_expr)
                    if identity is None:
                        continue
                    for holder in held + acquired:
                        edges.setdefault((holder, identity),
                                         (rel, node.lineno))
                    acquired.append(identity)
                for item in node.items:
                    visit(item.context_expr, held)
                    if item.optional_vars is not None:
                        visit(item.optional_vars, held)
                inner = held + acquired
                for stmt in node.body:
                    visit(stmt, inner)
                return
            if isinstance(node, ast.Attribute):
                attr = astutil.self_attr(node)
                if (attr is not None and attr.startswith("_")
                        and not attr.startswith("__")
                        and attr not in locks.kinds
                        and attr not in method_names):
                    holding = any(h in own_identities for h in held)
                    if holding:
                        guarded.setdefault(attr, held[-1])
                    accesses.append(
                        (attr, holding, method.name, node.lineno))
            for child in ast.iter_child_nodes(node):
                visit(child, held)

        for stmt in method.body:
            visit(stmt, rel_holder)

    # -- inversion detection --------------------------------------------
    def _inversions(self, edges: Dict[Tuple[str, str], Tuple[str, int]],
                    kinds: Dict[str, str]) -> List[Finding]:
        findings: List[Finding] = []
        seen: Set[Tuple[str, str]] = set()
        for (holder, acquired), (file, line) in sorted(edges.items()):
            if holder == acquired:
                # re-entrant acquisition: fatal for a plain Lock
                if kinds.get(holder) in ("lock", "condition"):
                    findings.append(Finding(
                        rule="LD002", file=file, line=line,
                        message=(f"non-reentrant lock {holder} acquired "
                                 f"while already held (self-deadlock)")))
                continue
            pair = tuple(sorted((holder, acquired)))
            if pair in seen:
                continue
            if (acquired, holder) in edges:
                seen.add(pair)
                findings.append(Finding(
                    rule="LD002", file=file, line=line,
                    message=(f"lock-order inversion: {holder} -> "
                             f"{acquired} here, but {acquired} -> "
                             f"{holder} elsewhere (ABBA deadlock)")))
        return findings
