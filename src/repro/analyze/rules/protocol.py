"""Protocol-completeness rules for the HTTP surface.

The server routes (``server/protocol.py``) and the :class:`SimClient`
wrappers (``server/client.py``) are two halves of one contract; a route
without a wrapper is untestable from the load tests, and a wrapper no
test exercises is dead weight that can silently rot.

- **PC001** -- a route handled in ``protocol.py`` has no ``SimClient``
  wrapper whose body mentions the route path.
- **PC002** -- a wrapper for a route is never referenced by any test
  under ``tests/``.
- **PC003** -- the route set differs from the baseline-pinned set but
  ``PROTOCOL_VERSION`` was not bumped.

Routes are extracted from comparison expressions over the dispatch tuple
(``route == ("POST", "/compile")`` and ``route in ((...), (...))``), so
only genuinely dispatched routes count -- documentation tables do not.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analyze import astutil
from repro.analyze.baseline import Baseline
from repro.analyze.engine import Rule
from repro.analyze.findings import Finding
from repro.analyze.project import Project

PROTOCOL_MODULE = "src/repro/server/protocol.py"
CLIENT_MODULE = "src/repro/server/client.py"
CLIENT_CLASS = "SimClient"
TESTS_DIR = "tests"

_METHODS = ("GET", "POST", "PUT", "DELETE", "PATCH", "HEAD")

#: client plumbing that is not a route wrapper
_NON_WRAPPERS = ("__init__", "request", "close", "_connection")


def _route_tuple(node: ast.AST) -> Optional[Tuple[str, str, int]]:
    """``("POST", "/compile")`` tuple constants -> (method, path, line)."""
    if not isinstance(node, ast.Tuple) or len(node.elts) != 2:
        return None
    first, second = node.elts
    if not (isinstance(first, ast.Constant)
            and isinstance(second, ast.Constant)):
        return None
    if not (isinstance(first.value, str) and isinstance(second.value, str)):
        return None
    if first.value not in _METHODS or not second.value.startswith("/"):
        return None
    return first.value, second.value, node.lineno


def extract_routes(tree: ast.Module) -> Dict[Tuple[str, str], int]:
    """Dispatched routes -> first dispatch line."""
    routes: Dict[Tuple[str, str], int] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        for op, comparator in zip(node.ops, node.comparators):
            candidates: List[ast.AST] = []
            if isinstance(op, ast.Eq):
                candidates = [comparator]
            elif isinstance(op, ast.In) and isinstance(
                    comparator, (ast.Tuple, ast.List, ast.Set)):
                candidates = list(comparator.elts)
            for candidate in candidates:
                parsed = _route_tuple(candidate)
                if parsed is not None:
                    method, path, line = parsed
                    routes.setdefault((method, path), line)
    return routes


def extract_protocol_version(
        tree: ast.Module) -> Tuple[Optional[int], int]:
    """(PROTOCOL_VERSION value, assignment line) from the module."""
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (isinstance(target, ast.Name)
                        and target.id == "PROTOCOL_VERSION"
                        and isinstance(node.value, ast.Constant)):
                    return node.value.value, node.lineno
    return None, 1


def extract_protocol(project: Project):
    """(version, sorted route strings) for baseline pinning; None when the
    protocol module is absent (fixture projects)."""
    module = project.by_rel(PROTOCOL_MODULE)
    if module is None:
        return None, None
    version, _ = extract_protocol_version(module.tree)
    routes = extract_routes(module.tree)
    return version, sorted(f"{m} {p}" for (m, p) in routes)


class ProtocolCompletenessRule(Rule):
    name = "protocol-completeness"

    def run(self, project: Project, baseline: Baseline) -> List[Finding]:
        protocol = project.by_rel(PROTOCOL_MODULE)
        client = project.by_rel(CLIENT_MODULE)
        if protocol is None or client is None:
            return []
        findings: List[Finding] = []
        routes = extract_routes(protocol.tree)
        wrappers = self._client_wrappers(client.tree)

        # PC001: every route needs a wrapper mentioning its path
        path_to_wrappers: Dict[str, List[str]] = {}
        for wrapper, (paths, _) in wrappers.items():
            for path in paths:
                path_to_wrappers.setdefault(path, []).append(wrapper)
        for (method, path), line in sorted(routes.items()):
            if path not in path_to_wrappers:
                findings.append(Finding(
                    rule="PC001", file=protocol.rel, line=line,
                    message=(f"route {method} {path} has no SimClient "
                             f"wrapper in server/client.py")))

        # PC002: every route wrapper needs at least one test reference
        test_text = self._tests_text(project)
        route_paths = {path for (_, path) in routes}
        for wrapper in sorted(wrappers):
            paths, line = wrappers[wrapper]
            if not (paths & route_paths):
                continue
            if f".{wrapper}(" not in test_text:
                findings.append(Finding(
                    rule="PC002", file=client.rel, line=line,
                    message=(f"SimClient.{wrapper} (route wrapper) is "
                             f"not referenced by any test under "
                             f"{TESTS_DIR}/")))

        # PC003: route-set change requires a PROTOCOL_VERSION bump
        version, version_line = extract_protocol_version(protocol.tree)
        if (baseline.protocol_routes is not None
                and baseline.protocol_version is not None):
            current = sorted(f"{m} {p}" for (m, p) in routes)
            if (current != sorted(baseline.protocol_routes)
                    and version == baseline.protocol_version):
                added = sorted(set(current) - set(baseline.protocol_routes))
                removed = sorted(
                    set(baseline.protocol_routes) - set(current))
                detail = "; ".join(
                    part for part in (
                        f"added: {', '.join(added)}" if added else "",
                        f"removed: {', '.join(removed)}" if removed else "")
                    if part)
                findings.append(Finding(
                    rule="PC003", file=protocol.rel, line=version_line,
                    message=(f"route set changed ({detail}) but "
                             f"PROTOCOL_VERSION is still {version}; bump "
                             f"it and refresh the lint baseline")))
        return findings

    # ------------------------------------------------------------------
    def _client_wrappers(
            self, tree: ast.Module) -> Dict[str, Tuple[Set[str], int]]:
        """SimClient method -> (route paths mentioned, def line)."""
        wrappers: Dict[str, Tuple[Set[str], int]] = {}
        for class_node in astutil.iter_classes(tree):
            if class_node.name != CLIENT_CLASS:
                continue
            for method in astutil.iter_functions(class_node):
                if method.name in _NON_WRAPPERS:
                    continue
                paths: Set[str] = set()
                for text, _ in astutil.string_constants(method):
                    if text.startswith("/"):
                        paths.add(text.split("?")[0])
                wrappers[method.name] = (paths, method.lineno)
        return wrappers

    def _tests_text(self, project: Project) -> str:
        tests_dir = project.root / TESTS_DIR
        if not tests_dir.is_dir():
            return ""
        chunks = []
        for path in sorted(tests_dir.rglob("*.py")):
            try:
                chunks.append(path.read_text(encoding="utf-8"))
            except OSError:   # pragma: no cover - unreadable test file
                continue
        return "\n".join(chunks)
