"""Project-specific lint rules (see each module's docstring)."""

from repro.analyze.rules.state_contract import StateContractRule
from repro.analyze.rules.lock_discipline import LockDisciplineRule
from repro.analyze.rules.determinism import DeterminismRule
from repro.analyze.rules.protocol import ProtocolCompletenessRule

__all__ = ["StateContractRule", "LockDisciplineRule", "DeterminismRule",
           "ProtocolCompletenessRule"]
