"""Determinism rules for record-producing code.

The sweep engine promises byte-identical records for the same job across
every backend (serial, process pool, remote worker, fleet) -- that is
what makes the artifact cache content-addressable and cross-run
comparisons meaningful.  Anything executed while *producing* a record
therefore must not observe the host: no wall clocks, no process-global
RNG, no ``id()``-keyed maps or set-iteration ordering in serialized
output, no environment reads outside the documented ``REPRO_*`` knobs.

Scope: ``explore/runner.py`` (the job executor), everything transitively
imported by it (the whole simulator core a job can reach), plus
``explore/engine.py``, ``sim/statistics.py`` and the superblock trace
tier (``core/trace.py`` / ``core/tracegen.py`` -- generated code must be
bit-exact with the interpreter, so the generator is held to the same
standard) explicitly.

Rules:

- **DT001** wall-clock read (``time.time``/``monotonic``/...,
  ``datetime.now``/``utcnow``/``today``)
- **DT002** process-global ``random`` module use (a seeded
  ``random.Random(seed)`` instance is fine)
- **DT003** ``id()`` used as a mapping key (addresses differ across
  processes; membership tests against an ``id()`` *set* are fine --
  that's dedup, not ordering)
- **DT004** iteration over a set display / ``set()`` call (unordered)
- **DT005** ``os.environ`` / ``os.getenv`` read outside the ``REPRO_*``
  allowlist
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.analyze import astutil
from repro.analyze.baseline import Baseline
from repro.analyze.engine import Rule
from repro.analyze.findings import Finding
from repro.analyze.project import Project

#: the job executor: everything it can reach runs while records are made
ENTRY_MODULE = "repro.explore.runner"

#: record-adjacent modules checked even when not imported by the entry;
#: the trace tier generates the record-producing hot loop, so the
#: generator itself is held to determinism discipline
EXPLICIT_MODULES = ("repro.explore.engine", "repro.sim.statistics",
                    "repro.core.trace", "repro.core.tracegen")

ENV_PREFIX = "REPRO_"

_WALL_CLOCK_CALLS = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today",
}

#: bare names banned when imported via ``from time import ...`` etc.
_WALL_CLOCK_FROM = {
    "time": ("time", "time_ns", "monotonic", "monotonic_ns",
             "perf_counter", "perf_counter_ns", "process_time",
             "process_time_ns"),
}


class DeterminismRule(Rule):
    name = "determinism"

    def __init__(self, entry: str = ENTRY_MODULE,
                 explicit: tuple = EXPLICIT_MODULES):
        self.entry = entry
        self.explicit = explicit

    def scope(self, project: Project) -> Set[str]:
        names = set(project.reachable_from(self.entry))
        names.update(n for n in self.explicit if n in project.modules)
        return names

    def run(self, project: Project, baseline: Baseline) -> List[Finding]:
        findings: List[Finding] = []
        for name in sorted(self.scope(project)):
            module = project.get(name)
            if module is not None:
                findings.extend(self._check_module(module))
        return findings

    # ------------------------------------------------------------------
    def _check_module(self, module) -> List[Finding]:
        findings: List[Finding] = []
        rel = module.rel
        banned_bare = self._from_import_bans(module.tree)
        id_keys = self._id_key_nodes(module.tree)
        constants = self._module_str_constants(module.tree)

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                findings.extend(self._check_call(rel, node, banned_bare))
            if id(node) in id_keys:
                findings.append(Finding(
                    rule="DT003", file=rel, line=node.lineno,
                    message=("id() used as a mapping key (addresses are "
                             "not stable across processes)")))
            iter_expr = self._set_iteration(node)
            if iter_expr is not None:
                findings.append(Finding(
                    rule="DT004", file=rel, line=iter_expr.lineno,
                    message=("iteration over an unordered set (order "
                             "varies run to run; sort first)")))
            findings.extend(self._check_env(rel, node, constants))
        return findings

    def _module_str_constants(self, tree: ast.Module) -> dict:
        """Top-level ``NAME = "literal"`` bindings (env-key constants)."""
        out = {}
        for node in tree.body:
            if (isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, str)):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        out[target.id] = node.value.value
        return out

    # -- DT001 / DT002 --------------------------------------------------
    def _from_import_bans(self, tree: ast.Module) -> Set[str]:
        banned: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0:
                names = _WALL_CLOCK_FROM.get(node.module or "")
                if names:
                    for alias in node.names:
                        if alias.name in names:
                            banned.add(alias.asname or alias.name)
        return banned

    def _check_call(self, rel: str, node: ast.Call,
                    banned_bare: Set[str]) -> List[Finding]:
        dotted = astutil.dotted_name(node.func)
        if dotted is None:
            return []
        if dotted in _WALL_CLOCK_CALLS or dotted in banned_bare:
            return [Finding(
                rule="DT001", file=rel, line=node.lineno,
                message=(f"wall-clock read {dotted}() in a "
                         f"record-producing path"))]
        if dotted.startswith("random."):
            leaf = dotted.split(".", 1)[1]
            if leaf == "Random" and node.args:
                return []   # seeded instance: allowed
            return [Finding(
                rule="DT002", file=rel, line=node.lineno,
                message=(f"process-global {dotted}() (use a seeded "
                         f"random.Random instance carried in the job "
                         f"payload)"))]
        return []

    # -- DT003 ----------------------------------------------------------
    def _id_key_nodes(self, tree: ast.Module) -> Set[int]:
        """ast node ids of ``id(...)`` calls used as mapping keys."""
        out: Set[int] = set()

        def is_id_call(expr: ast.AST) -> bool:
            return (isinstance(expr, ast.Call)
                    and isinstance(expr.func, ast.Name)
                    and expr.func.id == "id")

        for node in ast.walk(tree):
            if isinstance(node, ast.Subscript):
                key = node.slice
                keys = key.elts if isinstance(key, ast.Tuple) else [key]
                for k in keys:
                    if is_id_call(k):
                        out.add(id(k))
            elif isinstance(node, ast.Dict):
                for k in node.keys:
                    if k is not None and is_id_call(k):
                        out.add(id(k))
            elif isinstance(node, ast.DictComp):
                if is_id_call(node.key):
                    out.add(id(node.key))
        return out

    # -- DT004 ----------------------------------------------------------
    def _set_iteration(self, node: ast.AST) -> Optional[ast.expr]:
        def is_set_expr(expr: ast.AST) -> bool:
            if isinstance(expr, (ast.Set, ast.SetComp)):
                return True
            return (isinstance(expr, ast.Call)
                    and isinstance(expr.func, ast.Name)
                    and expr.func.id in ("set", "frozenset"))

        if isinstance(node, ast.For) and is_set_expr(node.iter):
            return node.iter
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            for gen in node.generators:
                if is_set_expr(gen.iter):
                    return gen.iter
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("list", "tuple")
                and node.args and is_set_expr(node.args[0])):
            return node.args[0]
        return None

    # -- DT005 ----------------------------------------------------------
    def _check_env(self, rel: str, node: ast.AST,
                   constants: dict) -> List[Finding]:
        key_expr: Optional[ast.AST] = None
        if isinstance(node, ast.Subscript):
            if astutil.dotted_name(node.value) == "os.environ":
                key_expr = node.slice
        elif isinstance(node, ast.Call):
            dotted = astutil.dotted_name(node.func)
            if dotted in ("os.getenv", "os.environ.get") and node.args:
                key_expr = node.args[0]
        if key_expr is None:
            return []
        key = None
        if isinstance(key_expr, ast.Constant) and isinstance(
                key_expr.value, str):
            key = key_expr.value
        elif isinstance(key_expr, ast.Name):
            key = constants.get(key_expr.id)
        if key is not None and key.startswith(ENV_PREFIX):
            return []
        if key is None:
            key = "<dynamic>"
        return [Finding(
            rule="DT005", file=rel, line=node.lineno,
            message=(f"environment read {key!r} outside the "
                     f"{ENV_PREFIX}* allowlist in a record-producing "
                     f"path"))]
