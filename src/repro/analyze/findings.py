"""Structured lint findings.

A finding is identified for baseline purposes by ``(rule, file, message)``
-- deliberately *not* by line number, so that unrelated edits shifting a
baselined construct up or down the file do not invalidate the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


class Severity:
    ERROR = "error"
    WARNING = "warning"

    ALL = (ERROR, WARNING)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    ``file`` is repo-root-relative with POSIX separators (stable across
    machines, usable as a baseline key).
    """

    rule: str
    file: str
    line: int
    message: str
    severity: str = Severity.ERROR

    def key(self) -> Tuple[str, str, str]:
        """Identity used for baseline matching (line-number independent)."""
        return (self.rule, self.file, self.message)

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "file": self.file,
            "line": self.line,
            "message": self.message,
            "severity": self.severity,
        }

    @classmethod
    def from_json(cls, data: dict) -> "Finding":
        return cls(rule=data["rule"], file=data["file"],
                   line=int(data.get("line", 0)), message=data["message"],
                   severity=data.get("severity", Severity.ERROR))

    def render(self) -> str:
        return (f"{self.file}:{self.line}: {self.rule} "
                f"[{self.severity}] {self.message}")


def sort_findings(findings) -> list:
    return sorted(findings, key=lambda f: (f.file, f.line, f.rule, f.message))
