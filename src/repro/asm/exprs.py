"""Arithmetic expressions in instruction operands and data directives.

Sec. III-C: *"A complication, when filling in the values, is the support for
arithmetic expressions in instruction arguments (e.g., ``lla x4, arr+64``).
This feature is implemented because the compiler often generates such
expressions ... Expressions are evaluated by a simple evaluation program,
which must have access to the label values."*

Grammar (over :class:`repro.asm.lexer.Token` lists)::

    expr   := term (('+'|'-') term)*
    term   := factor (('*'|'/'|'%') factor)*
    factor := INT | FLOAT | SYMBOL | '(' expr ')' | ('+'|'-') factor
            | %hi '(' expr ')' | %lo '(' expr ')'
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.asm.lexer import Token, TokenKind
from repro.asm.pseudo import hi_lo
from repro.errors import AsmSyntaxError

Number = Union[int, float]


class _Parser:
    def __init__(self, tokens: List[Token], labels: Optional[Dict[str, int]]):
        self.tokens = tokens
        self.pos = 0
        self.labels = labels

    def peek(self) -> Optional[Token]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> Token:
        tok = self.peek()
        if tok is None:
            last = self.tokens[-1] if self.tokens else None
            raise AsmSyntaxError(
                "unexpected end of operand expression",
                last.line if last else 0, last.column if last else 0)
        self.pos += 1
        return tok

    def expect(self, kind: TokenKind) -> Token:
        tok = self.next()
        if tok.kind is not kind:
            raise AsmSyntaxError(
                f"expected {kind.value}, found {tok.text!r}", tok.line, tok.column)
        return tok

    # -- grammar ---------------------------------------------------------
    def expr(self) -> Number:
        value = self.term()
        while True:
            tok = self.peek()
            if tok is not None and tok.kind is TokenKind.OPERATOR and tok.text in "+-":
                self.next()
                rhs = self.term()
                value = value + rhs if tok.text == "+" else value - rhs
            else:
                return value

    def term(self) -> Number:
        value = self.factor()
        while True:
            tok = self.peek()
            if tok is not None and tok.kind is TokenKind.OPERATOR and tok.text in "*/%":
                self.next()
                rhs = self.factor()
                if tok.text == "*":
                    value = value * rhs
                elif tok.text == "/":
                    if rhs == 0:
                        raise AsmSyntaxError("division by zero in operand",
                                             tok.line, tok.column)
                    value = int(value // rhs)
                else:
                    if rhs == 0:
                        raise AsmSyntaxError("modulo by zero in operand",
                                             tok.line, tok.column)
                    value = int(value % rhs)
            else:
                return value

    def factor(self) -> Number:
        tok = self.next()
        if tok.kind is TokenKind.INTEGER:
            return int(tok.value)
        if tok.kind is TokenKind.FLOAT:
            return float(tok.value)
        if tok.kind is TokenKind.OPERATOR and tok.text in "+-":
            value = self.factor()
            return -value if tok.text == "-" else value
        if tok.kind is TokenKind.LPAREN:
            value = self.expr()
            self.expect(TokenKind.RPAREN)
            return value
        if tok.kind is TokenKind.PERCENT_FUNC:
            self.expect(TokenKind.LPAREN)
            value = int(self.expr())
            self.expect(TokenKind.RPAREN)
            hi, lo = hi_lo(value)
            return hi if tok.value == "hi" else lo
        if tok.kind is TokenKind.SYMBOL or tok.kind is TokenKind.DIRECTIVE:
            # DIRECTIVE covers dot-prefixed local labels (.L3) used as
            # operands, e.g. compiler-generated branch targets.
            if self.labels is None:
                # pass-1 probe: labels not yet known
                raise _Unresolved(tok.text)
            if tok.text not in self.labels:
                raise AsmSyntaxError(f"undefined label '{tok.text}'",
                                     tok.line, tok.column)
            return self.labels[tok.text]
        raise AsmSyntaxError(f"unexpected token {tok.text!r} in operand",
                             tok.line, tok.column)


class _Unresolved(Exception):
    """Internal: expression references a label during pass 1."""

    def __init__(self, name: str):
        super().__init__(name)
        self.name = name


def evaluate_operand(tokens: List[Token], labels: Dict[str, int]) -> Number:
    """Evaluate an operand expression with all labels known (pass 2)."""
    parser = _Parser(tokens, labels)
    value = parser.expr()
    tok = parser.peek()
    if tok is not None:
        raise AsmSyntaxError(f"trailing junk {tok.text!r} in operand",
                             tok.line, tok.column)
    return value


def try_literal(tokens: List[Token]) -> Optional[Number]:
    """Evaluate an operand if it contains no labels; else ``None`` (pass 1)."""
    try:
        parser = _Parser(tokens, None)
        value = parser.expr()
        if parser.peek() is not None:
            return None
        return value
    except _Unresolved:
        return None
    except AsmSyntaxError:
        return None


def references_symbol(tokens: List[Token]) -> bool:
    """True when the operand expression mentions any symbol."""
    return any(t.kind in (TokenKind.SYMBOL, TokenKind.DIRECTIVE)
               for t in tokens)
