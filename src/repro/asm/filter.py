"""Assembler-output cleanup filter.

Sec. III-C: *"the assembler output may contain a large amount of information
that is redundant for the simulator and also reduces the readability of the
code.  Therefore, the compiler output is passed through a filter that
removes unnecessary directives, labels, and data."*

The filter keeps instructions, data-defining directives and any label that
is actually referenced; purely administrative directives (``.globl``,
``.type``, ``.size``, ``.file`` ...) and unreferenced local labels are
dropped.
"""

from __future__ import annotations

import re
from typing import List, Set

from repro.asm.lexer import TokenKind, strip_block_comments, tokenize_line
from repro.errors import AsmSyntaxError

_DROP_DIRECTIVES = {
    ".globl", ".global", ".local", ".type", ".size", ".file", ".ident",
    ".option", ".attribute", ".weak", ".extern", ".section", ".sdata",
}
_KEEP_DIRECTIVES = {
    ".byte", ".hword", ".half", ".2byte", ".word", ".4byte", ".long",
    ".align", ".p2align", ".balign", ".skip", ".zero", ".space",
    ".ascii", ".asciiz", ".string", ".float", ".double", ".equ", ".set",
    ".text", ".data", ".rodata", ".loc",
}


def _referenced_symbols(lines: List[str]) -> Set[str]:
    refs: Set[str] = set()
    for line_no, text in enumerate(lines, start=1):
        try:
            tokens = tokenize_line(text, line_no)
        except AsmSyntaxError:
            continue
        started = False
        for tok in tokens:
            if tok.kind is TokenKind.LABEL_DEF:
                continue
            if not started:
                started = True  # the mnemonic / directive itself
                continue
            if tok.kind in (TokenKind.SYMBOL, TokenKind.DIRECTIVE):
                # DIRECTIVE in operand position is a dot-prefixed label ref
                refs.add(tok.value)
    return refs


def filter_assembly(source: str) -> str:
    """Return a cleaned-up version of compiler-emitted assembly."""
    text = strip_block_comments(source)
    lines = text.split("\n")
    refs = _referenced_symbols(lines)
    out: List[str] = []
    for line_no, raw in enumerate(lines, start=1):
        try:
            tokens = tokenize_line(raw, line_no)
        except AsmSyntaxError:
            # untokenizable operands (e.g. `.size main, .-main`): drop the
            # line when it is an administrative directive, else keep it
            first = raw.strip().split(None, 1)[0] if raw.strip() else ""
            if first not in _DROP_DIRECTIVES:
                out.append(raw)
            continue
        if not tokens:
            continue
        kept_parts: List[str] = []
        pos = 0
        while pos < len(tokens) and tokens[pos].kind is TokenKind.LABEL_DEF:
            name = tokens[pos].value
            # Keep referenced labels and conventional function labels.
            if name in refs or not re.match(r"^\.L", name):
                kept_parts.append(f"{name}:")
            pos += 1
        if pos >= len(tokens):
            if kept_parts:
                out.append(" ".join(kept_parts))
            continue
        head = tokens[pos]
        if head.kind is TokenKind.DIRECTIVE:
            if head.value in _DROP_DIRECTIVES:
                if kept_parts:
                    out.append(" ".join(kept_parts))
                continue
            if head.value not in _KEEP_DIRECTIVES:
                # Unknown administrative directive: drop it but keep labels.
                if kept_parts:
                    out.append(" ".join(kept_parts))
                continue
        body = raw[head.column - 1:].rstrip()
        if kept_parts:
            out.append(" ".join(kept_parts) + "\n    " + body
                       if head.kind is not TokenKind.DIRECTIVE
                       else " ".join(kept_parts) + " " + body)
        else:
            indent = "" if head.kind is TokenKind.DIRECTIVE and head.value in (
                ".text", ".data", ".rodata") else "    "
            out.append(indent + body)
    # Collapse repeated blank lines
    cleaned: List[str] = []
    for line in out:
        if line.strip() == "" and cleaned and cleaned[-1].strip() == "":
            continue
        cleaned.append(line)
    return "\n".join(cleaned).strip() + "\n"
