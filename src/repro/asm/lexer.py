"""Tokenizer for RISC-V assembly source.

The paper (Sec. III-C): *"The program text is divided into language units
(tokens such as symbols, comments, or new lines)."*  We tokenize line by
line, preserving 1-based line/column positions so syntax errors can be
highlighted in the editor (Fig. 7).
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import List

from repro.errors import AsmSyntaxError


class TokenKind(str, enum.Enum):
    LABEL_DEF = "label"        # ``name:``
    DIRECTIVE = "directive"    # ``.word``
    SYMBOL = "symbol"          # mnemonic / register / label reference
    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    COMMA = "comma"
    LPAREN = "lparen"
    RPAREN = "rparen"
    OPERATOR = "operator"      # + - * / %
    PERCENT_FUNC = "percent"   # %hi / %lo


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int
    value: object = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind.value}({self.text!r})"


# Order matters: longest / most specific first.
_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>(\#|//).*)
  | (?P<string>"(\\.|[^"\\])*")
  | (?P<char>'(\\.|[^'\\])')
  | (?P<percent>%(hi|lo)\b)
  | (?P<labeldef>[A-Za-z_.$][\w.$]*:)
  | (?P<directive>\.[A-Za-z][\w.]*)
  | (?P<float>\d+\.\d+([eE][-+]?\d+)?)
  | (?P<integer>0[xX][0-9a-fA-F]+|0[bB][01]+|\d+)
  | (?P<symbol>@?[A-Za-z_$][\w.$]*)
  | (?P<comma>,)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<operator>[-+*/%])
    """,
    re.VERBOSE,
)

_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\",
    '"': '"', "'": "'", "a": "\a", "b": "\b", "f": "\f", "v": "\v",
}


def unescape_string(literal: str, line: int = 0, column: int = 0) -> str:
    """Decode an assembly string literal (without surrounding quotes)."""
    out = []
    i = 0
    while i < len(literal):
        ch = literal[i]
        if ch == "\\":
            if i + 1 >= len(literal):
                raise AsmSyntaxError("dangling escape in string", line, column)
            nxt = literal[i + 1]
            if nxt == "x":
                match = re.match(r"[0-9a-fA-F]{1,2}", literal[i + 2:])
                if not match:
                    raise AsmSyntaxError("invalid \\x escape", line, column)
                out.append(chr(int(match.group(0), 16)))
                i += 2 + len(match.group(0))
                continue
            out.append(_ESCAPES.get(nxt, nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def tokenize_line(text: str, line_no: int) -> List[Token]:
    """Tokenize one source line; comments and whitespace are discarded."""
    tokens: List[Token] = []
    pos = 0
    # Strip block comments the simple way (they rarely span lines in
    # assembler output; multi-line /* */ is handled by the caller).
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise AsmSyntaxError(
                f"unexpected character {text[pos]!r}", line_no, pos + 1)
        kind = match.lastgroup
        raw = match.group(0)
        col = pos + 1
        pos = match.end()
        if kind in ("ws", "comment"):
            continue
        if kind == "string":
            tokens.append(Token(TokenKind.STRING, raw, line_no, col,
                                unescape_string(raw[1:-1], line_no, col)))
        elif kind == "char":
            decoded = unescape_string(raw[1:-1], line_no, col)
            tokens.append(Token(TokenKind.INTEGER, raw, line_no, col, ord(decoded)))
        elif kind == "percent":
            tokens.append(Token(TokenKind.PERCENT_FUNC, raw, line_no, col, raw[1:]))
        elif kind == "labeldef":
            tokens.append(Token(TokenKind.LABEL_DEF, raw, line_no, col, raw[:-1]))
        elif kind == "directive":
            tokens.append(Token(TokenKind.DIRECTIVE, raw, line_no, col, raw))
        elif kind == "float":
            tokens.append(Token(TokenKind.FLOAT, raw, line_no, col, float(raw)))
        elif kind == "integer":
            tokens.append(Token(TokenKind.INTEGER, raw, line_no, col, int(raw, 0)))
        elif kind == "symbol":
            tokens.append(Token(TokenKind.SYMBOL, raw, line_no, col, raw))
        elif kind == "comma":
            tokens.append(Token(TokenKind.COMMA, raw, line_no, col))
        elif kind == "lparen":
            tokens.append(Token(TokenKind.LPAREN, raw, line_no, col))
        elif kind == "rparen":
            tokens.append(Token(TokenKind.RPAREN, raw, line_no, col))
        elif kind == "operator":
            tokens.append(Token(TokenKind.OPERATOR, raw, line_no, col))
    return tokens


def strip_block_comments(source: str) -> str:
    """Remove ``/* ... */`` comments, preserving line numbers."""
    out = []
    i = 0
    in_comment = False
    while i < len(source):
        if not in_comment and source.startswith("/*", i):
            in_comment = True
            i += 2
        elif in_comment and source.startswith("*/", i):
            in_comment = False
            i += 2
        else:
            ch = source[i]
            if in_comment:
                out.append("\n" if ch == "\n" else " ")
            else:
                out.append(ch)
            i += 1
    return "".join(out)
