"""Two-pass assembler (Sec. III-C).

Pass 1 tokenizes, expands pseudo-instructions, collects instructions and
data directives, and binds labels to instruction addresses / data offsets.
Memory allocation runs *between* the passes (call stack first, then
memory-settings arrays, then the program's data directives), after which all
label values are known.  Pass 2 resolves every operand, evaluating
arithmetic expressions (``lla x4, arr+64``) and converting branch targets to
PC-relative offsets.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.asm.exprs import evaluate_operand
from repro.asm.lexer import Token, TokenKind, strip_block_comments, tokenize_line
from repro.asm.program import DataSymbol, ParsedInstruction, Program
from repro.asm.pseudo import expand_pseudo
from repro.errors import AsmSyntaxError
from repro.isa.instruction import ArgType, InstructionDef
from repro.isa.isa import InstructionSet, default_instruction_set
from repro.isa.registers import canonical_fp_reg, canonical_int_reg

_DATA_DIRECTIVES = {
    ".byte": 1, ".hword": 2, ".half": 2, ".2byte": 2,
    ".word": 4, ".4byte": 4, ".long": 4,
}
_IGNORED_DIRECTIVES = {
    ".globl", ".global", ".local", ".type", ".size", ".file", ".ident",
    ".option", ".attribute", ".weak", ".comm", ".extern",
}

# Immediate range checks per instruction (soft validation, Fig. 7 errors).
_IMM12 = {"addi", "slti", "sltiu", "xori", "ori", "andi", "jalr",
          "lb", "lh", "lw", "lbu", "lhu", "sb", "sh", "sw", "flw", "fsw"}
_SHAMT = {"slli", "srli", "srai"}
_IMM20 = {"lui", "auipc"}


class _RawInstruction:
    """Pass-1 record of one (already pseudo-expanded) instruction."""

    __slots__ = ("definition", "groups", "line", "column", "text", "c_line")

    def __init__(self, definition: InstructionDef, groups: List[List[Token]],
                 line: int, column: int, text: str, c_line: int):
        self.definition = definition
        self.groups = groups
        self.line = line
        self.column = column
        self.text = text
        self.c_line = c_line


class Assembler:
    """Two-pass assembler producing a :class:`Program`."""

    def __init__(self, instruction_set: Optional[InstructionSet] = None):
        self.iset = instruction_set or default_instruction_set()

    # ------------------------------------------------------------------
    def assemble(
        self,
        source: str,
        entry: Optional[object] = None,
        memory_locations: Sequence[object] = (),
        stack_size: int = 512,
        data_alignment: int = 4,
    ) -> Program:
        """Assemble *source* into a :class:`Program`.

        Parameters
        ----------
        entry:
            ``None`` (first instruction), a label name, or a byte address.
        memory_locations:
            Objects from the Memory-settings window (Fig. 8); anything with
            ``name``, ``alignment`` and ``to_bytes()`` attributes.
        stack_size:
            Bytes reserved for the call stack at the beginning of memory;
            its top seeds the stack pointer ``x2`` (Sec. III-C).
        """
        program = Program(source=source)
        raw_instrs: List[_RawInstruction] = []
        code_labels: Dict[str, int] = {}
        data_labels: Dict[str, int] = {}       # name -> offset into data blob
        data_chunks = bytearray()
        data_fixups: List[Tuple[int, int, List[Token]]] = []  # (offset, size, expr)
        data_label_order: List[Tuple[str, int, str]] = []     # (name, offset, dtype)
        equs: List[Tuple[str, List[Token]]] = []
        pending_labels: List[Tuple[str, Token]] = []
        current_c_line = 0

        # ---------------- pass 1 -------------------------------------
        lines = strip_block_comments(source).split("\n")
        for line_no, line_text in enumerate(lines, start=1):
            tokens = tokenize_line(line_text, line_no)
            pos = 0
            while pos < len(tokens) and tokens[pos].kind is TokenKind.LABEL_DEF:
                pending_labels.append((tokens[pos].value, tokens[pos]))
                pos += 1
            if pos >= len(tokens):
                continue
            head = tokens[pos]
            rest = tokens[pos + 1:]

            if head.kind is TokenKind.DIRECTIVE:
                current_c_line = self._directive(
                    head, rest, line_text,
                    pending_labels, code_labels, data_labels,
                    data_chunks, data_fixups, data_label_order, equs,
                    current_c_line,
                )
                continue

            if head.kind is not TokenKind.SYMBOL:
                raise AsmSyntaxError(
                    f"expected instruction or directive, found {head.text!r}",
                    head.line, head.column)

            # instruction: bind pending labels to the next code address
            for name, tok in pending_labels:
                if name in code_labels or name in data_labels:
                    raise AsmSyntaxError(f"duplicate label '{name}'",
                                         tok.line, tok.column)
                code_labels[name] = len(raw_instrs) * 4
            pending_labels.clear()

            groups = _split_operands(rest)
            operand_strings = [_group_text(line_text, g) for g in groups]
            expanded = expand_pseudo(head.value, operand_strings,
                                     head.line, head.column)
            for mnemonic, op_strs in expanded:
                definition = self.iset.get(mnemonic)
                if definition is None:
                    raise AsmSyntaxError(
                        f"unknown instruction '{mnemonic}'", head.line, head.column)
                new_groups = [tokenize_line(s, head.line) for s in op_strs]
                raw_instrs.append(_RawInstruction(
                    definition, new_groups, head.line, head.column,
                    line_text.strip(), current_c_line))

        for name, tok in pending_labels:  # trailing labels bind past the end
            code_labels[name] = len(raw_instrs) * 4
        pending_labels.clear()

        # ---------------- layout between passes ----------------------
        labels: Dict[str, int] = dict(code_labels)
        address = _align(stack_size, data_alignment)
        program.stack_pointer = stack_size
        blob = bytearray()
        base = address
        for loc in memory_locations:
            alignment = max(1, int(getattr(loc, "alignment", 1)))
            pad = _align(base + len(blob), alignment) - (base + len(blob))
            blob.extend(b"\x00" * pad)
            loc_bytes = loc.to_bytes()
            addr = base + len(blob)
            labels[loc.name] = addr
            program.symbols.append(DataSymbol(
                name=loc.name, address=addr, size=len(loc_bytes),
                element_size=getattr(loc, "element_size", 1),
                dtype=getattr(loc, "dtype", "byte")))
            blob.extend(loc_bytes)
        # program .data follows the memory-settings arrays
        pad = _align(base + len(blob), data_alignment) - (base + len(blob))
        blob.extend(b"\x00" * pad)
        data_start = base + len(blob)
        for name, offset in data_labels.items():
            labels[name] = data_start + offset
        blob.extend(data_chunks)
        program.data = blob
        program.data_base = base

        # symbols for source-defined data (sized up to the next label)
        ordered = sorted(data_label_order, key=lambda item: item[1])
        for i, (name, offset, dtype) in enumerate(ordered):
            end = ordered[i + 1][1] if i + 1 < len(ordered) else len(data_chunks)
            program.symbols.append(DataSymbol(
                name=name, address=data_start + offset,
                size=max(0, end - offset), dtype=dtype))

        # ---------------- pass 2 -------------------------------------
        for name, expr_tokens in equs:
            labels[name] = int(evaluate_operand(expr_tokens, labels))

        for offset, size, expr_tokens in data_fixups:
            value = int(evaluate_operand(expr_tokens, labels))
            pos = (data_start - base) + offset
            program.data[pos:pos + size] = (value & ((1 << (8 * size)) - 1)) \
                .to_bytes(size, "little")

        for index, raw in enumerate(raw_instrs):
            operands = self._resolve_operands(raw, index * 4, labels)
            program.instructions.append(ParsedInstruction(
                index=index, definition=raw.definition, operands=operands,
                source_line=raw.line, source_text=raw.text, c_line=raw.c_line))

        program.labels = labels
        program.entry_pc = self._entry_pc(entry, labels, len(raw_instrs))
        return program

    # ------------------------------------------------------------------
    def _entry_pc(self, entry: Optional[object], labels: Dict[str, int],
                  n_instrs: int) -> int:
        if entry is None:
            return 0
        if isinstance(entry, int):
            pc = entry
        else:
            if entry not in labels:
                raise AsmSyntaxError(f"entry point label '{entry}' not found")
            pc = labels[entry]
        if pc & 3 or pc < 0 or pc >= max(4, n_instrs * 4):
            raise AsmSyntaxError(f"entry point {pc:#x} is not a valid instruction")
        return pc

    # ------------------------------------------------------------------
    def _directive(self, head: Token, rest: List[Token], line_text: str,
                   pending_labels, code_labels, data_labels,
                   data_chunks: bytearray, data_fixups, data_label_order,
                   equs, current_c_line: int) -> int:
        name = head.value

        def bind_labels(dtype: str) -> None:
            for lbl, tok in pending_labels:
                if lbl in code_labels or lbl in data_labels:
                    raise AsmSyntaxError(f"duplicate label '{lbl}'",
                                         tok.line, tok.column)
                data_labels[lbl] = len(data_chunks)
                data_label_order.append((lbl, len(data_chunks), dtype))
            pending_labels.clear()

        groups = _split_operands(rest)

        if name in (".text", ".data", ".rodata", ".bss", ".section"):
            return current_c_line  # single flat data segment; sections are cosmetic
        if name in _IGNORED_DIRECTIVES:
            return current_c_line
        if name == ".loc":  # C<->assembly line link: ".loc <file> <line>"
            ints = [t for g in groups for t in g
                    if t.kind is TokenKind.INTEGER]
            if len(ints) >= 2:
                return int(ints[1].value)
            if ints:
                return int(ints[0].value)
            return current_c_line

        if name in (".equ", ".set"):
            if len(groups) != 2 or len(groups[0]) != 1 \
                    or groups[0][0].kind is not TokenKind.SYMBOL:
                raise AsmSyntaxError(".equ expects 'name, expression'",
                                     head.line, head.column)
            equs.append((groups[0][0].value, groups[1]))
            return current_c_line

        if name in (".align", ".p2align"):
            bind_labels("align")
            power = _const_operand(groups, head)
            alignment = 1 << power
            pad = _align(len(data_chunks), alignment) - len(data_chunks)
            data_chunks.extend(b"\x00" * pad)
            return current_c_line
        if name == ".balign":
            bind_labels("align")
            alignment = _const_operand(groups, head)
            pad = _align(len(data_chunks), max(1, alignment)) - len(data_chunks)
            data_chunks.extend(b"\x00" * pad)
            return current_c_line

        if name in (".skip", ".zero", ".space"):
            bind_labels("byte")
            count = _const_operand(groups, head)
            if count < 0:
                raise AsmSyntaxError(f"negative size in {name}",
                                     head.line, head.column)
            data_chunks.extend(b"\x00" * count)
            return current_c_line

        if name in (".ascii", ".asciiz", ".string"):
            bind_labels("ascii")
            for group in groups:
                if len(group) != 1 or group[0].kind is not TokenKind.STRING:
                    raise AsmSyntaxError(f"{name} expects string literal(s)",
                                         head.line, head.column)
                data_chunks.extend(group[0].value.encode("latin-1"))
                if name in (".asciiz", ".string"):
                    data_chunks.append(0)
            return current_c_line

        if name == ".float":
            bind_labels("float")
            for group in groups:
                value = _float_operand(group, head)
                data_chunks.extend(struct.pack("<f", value))
            return current_c_line
        if name == ".double":
            bind_labels("double")
            for group in groups:
                value = _float_operand(group, head)
                data_chunks.extend(struct.pack("<d", value))
            return current_c_line

        if name in _DATA_DIRECTIVES:
            size = _DATA_DIRECTIVES[name]
            bind_labels(name.lstrip("."))
            for group in groups:
                if not group:
                    raise AsmSyntaxError(f"empty operand in {name}",
                                         head.line, head.column)
                literal = _maybe_int(group)
                if literal is None:
                    data_fixups.append((len(data_chunks), size, group))
                    data_chunks.extend(b"\x00" * size)
                else:
                    data_chunks.extend(
                        (literal & ((1 << (8 * size)) - 1)).to_bytes(size, "little"))
            return current_c_line

        raise AsmSyntaxError(f"unsupported directive '{name}'",
                             head.line, head.column)

    # ------------------------------------------------------------------
    def _resolve_operands(self, raw: _RawInstruction, pc: int,
                          labels: Dict[str, int]) -> Dict[str, object]:
        definition = raw.definition
        groups = raw.groups
        args = definition.arguments

        if definition.mem_operand:
            if len(groups) != 2:
                raise AsmSyntaxError(
                    f"'{definition.name}' expects 'reg, offset(base)'",
                    raw.line, raw.column)
            reg = _register_operand(groups[0], args[0])
            offset_tokens, base_reg = _split_mem_operand(groups[1])
            imm_val = int(evaluate_operand(offset_tokens, labels)) if offset_tokens else 0
            base = _register_operand([base_reg], args[2]) if base_reg else "x0"
            self._check_imm_range(definition.name, imm_val, raw)
            return {args[0].name: reg, "imm": imm_val, "rs1": base}

        # jalr also accepts the 'rd, offset(base)' form
        if definition.name == "jalr" and len(groups) == 2 \
                and any(t.kind is TokenKind.LPAREN for t in groups[1]):
            reg = _register_operand(groups[0], args[0])
            offset_tokens, base_reg = _split_mem_operand(groups[1])
            imm_val = int(evaluate_operand(offset_tokens, labels)) if offset_tokens else 0
            base = _register_operand([base_reg], args[1]) if base_reg else "x0"
            return {"rd": reg, "rs1": base, "imm": imm_val}

        if len(groups) != len(args):
            raise AsmSyntaxError(
                f"'{definition.name}' expects {len(args)} operand(s), "
                f"got {len(groups)}", raw.line, raw.column)

        operands: Dict[str, object] = {}
        for arg, group in zip(args, groups):
            if arg.is_register:
                operands[arg.name] = _register_operand(group, arg)
            elif arg.type is ArgType.LABEL:
                value = int(evaluate_operand(group, labels))
                offset = value - pc
                self._check_imm_range(definition.name, offset, raw, branch=True)
                operands[arg.name] = offset
            else:
                value = int(evaluate_operand(group, labels))
                self._check_imm_range(definition.name, value, raw)
                operands[arg.name] = value
        return operands

    @staticmethod
    def _check_imm_range(name: str, value: int, raw: _RawInstruction,
                         branch: bool = False) -> None:
        if branch:
            limit = 1 << 20 if name == "jal" else 1 << 12
            if not (-limit <= value < limit):
                raise AsmSyntaxError(
                    f"branch target out of range for '{name}' ({value})",
                    raw.line, raw.column)
            return
        if name in _IMM12 and not (-2048 <= value <= 2047):
            raise AsmSyntaxError(
                f"immediate {value} out of 12-bit range for '{name}'",
                raw.line, raw.column)
        if name in _SHAMT and not (0 <= value <= 31):
            raise AsmSyntaxError(
                f"shift amount {value} out of range for '{name}'",
                raw.line, raw.column)
        if name in _IMM20 and not (0 <= value <= 0xFFFFF):
            raise AsmSyntaxError(
                f"immediate {value} out of 20-bit range for '{name}'",
                raw.line, raw.column)


# ----------------------------------------------------------------------
def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


def _split_operands(tokens: List[Token]) -> List[List[Token]]:
    """Split a token list into comma-separated operand groups."""
    groups: List[List[Token]] = []
    current: List[Token] = []
    depth = 0
    for tok in tokens:
        if tok.kind is TokenKind.LPAREN:
            depth += 1
        elif tok.kind is TokenKind.RPAREN:
            depth -= 1
        if tok.kind is TokenKind.COMMA and depth == 0:
            groups.append(current)
            current = []
        else:
            current.append(tok)
    if current or groups:
        groups.append(current)
    return [g for g in groups if g] if not any(not g for g in groups) else _reject_empty(groups, tokens)


def _reject_empty(groups: List[List[Token]], tokens: List[Token]) -> List[List[Token]]:
    tok = tokens[0] if tokens else None
    raise AsmSyntaxError("empty operand (stray comma)",
                         tok.line if tok else 0, tok.column if tok else 0)


def _group_text(line_text: str, group: List[Token]) -> str:
    """Original source substring covered by an operand token group."""
    start = group[0].column - 1
    last = group[-1]
    end = last.column - 1 + len(last.text)
    return line_text[start:end]


def _register_operand(group: List[Token], arg) -> str:
    if len(group) != 1 or group[0].kind is not TokenKind.SYMBOL:
        tok = group[0]
        raise AsmSyntaxError(
            f"expected register for '{arg.name}'", tok.line, tok.column)
    tok = group[0]
    if arg.type is ArgType.FLOAT:
        reg = canonical_fp_reg(tok.value)
        if reg is None:
            raise AsmSyntaxError(
                f"expected floating-point register, found '{tok.value}'",
                tok.line, tok.column)
        return reg
    reg = canonical_int_reg(tok.value)
    if reg is None:
        raise AsmSyntaxError(
            f"expected integer register, found '{tok.value}'",
            tok.line, tok.column)
    return reg


def _split_mem_operand(group: List[Token]):
    """Split ``offset(base)`` into (offset tokens, base register token)."""
    if group and group[-1].kind is TokenKind.RPAREN:
        depth = 0
        for i in range(len(group) - 1, -1, -1):
            if group[i].kind is TokenKind.RPAREN:
                depth += 1
            elif group[i].kind is TokenKind.LPAREN:
                depth -= 1
                if depth == 0:
                    inside = group[i + 1:-1]
                    if len(inside) == 1 and inside[0].kind is TokenKind.SYMBOL \
                            and (canonical_int_reg(inside[0].value)
                                 or canonical_fp_reg(inside[0].value)):
                        return group[:i], inside[0]
                    break
    return group, None


def _const_operand(groups: List[List[Token]], head: Token) -> int:
    if len(groups) != 1:
        raise AsmSyntaxError(f"'{head.value}' expects one constant operand",
                             head.line, head.column)
    value = _maybe_int(groups[0])
    if value is None:
        raise AsmSyntaxError(f"'{head.value}' operand must be a constant",
                             head.line, head.column)
    return value


def _float_operand(group: List[Token], head: Token) -> float:
    from repro.asm.exprs import try_literal
    value = try_literal(group)
    if value is None:
        raise AsmSyntaxError(f"'{head.value}' operand must be a numeric constant",
                             head.line, head.column)
    return float(value)


def _maybe_int(group: List[Token]) -> Optional[int]:
    from repro.asm.exprs import try_literal
    value = try_literal(group)
    if value is None or isinstance(value, float):
        return None if value is None else int(value)
    return int(value)


def assemble(source: str, entry: Optional[object] = None,
             memory_locations: Sequence[object] = (),
             stack_size: int = 512,
             instruction_set: Optional[InstructionSet] = None) -> Program:
    """Convenience wrapper around :class:`Assembler`."""
    return Assembler(instruction_set).assemble(
        source, entry=entry, memory_locations=memory_locations,
        stack_size=stack_size)
