"""Two-pass RISC-V assembler (Sec. III-C of the paper).

Pass 1 tokenizes the program, expands pseudo-instructions, records
instructions and memory directives and assigns addresses.  Memory allocation
happens between the passes; pass 2 resolves label references, evaluates
arithmetic expressions in operands (``lla x4, arr+64``) and converts branch
targets to PC-relative offsets.
"""

from repro.asm.lexer import tokenize_line, Token, TokenKind
from repro.asm.parser import Assembler, assemble
from repro.asm.program import Program, ParsedInstruction, DataSymbol
from repro.asm.filter import filter_assembly
from repro.asm.pseudo import expand_pseudo, PSEUDO_MNEMONICS

__all__ = [
    "Assembler",
    "assemble",
    "Program",
    "ParsedInstruction",
    "DataSymbol",
    "filter_assembly",
    "expand_pseudo",
    "PSEUDO_MNEMONICS",
    "tokenize_line",
    "Token",
    "TokenKind",
]
