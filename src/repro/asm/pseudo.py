"""Pseudo-instruction expansion.

The simulator "fully supports the RV32I instruction set with the M and F
extensions, including pseudo-instructions" (Sec. III-B).  Expansion happens
during pass 1 so instruction addresses are final before label resolution;
every expansion therefore has a size that does not depend on values known
only in pass 2 (``li`` with a non-literal operand always takes the two
instruction ``lui``+``addi`` form).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import AsmSyntaxError

#: (mnemonic, operand-strings) pairs
Expansion = List[Tuple[str, List[str]]]


def _fits_imm12(value: int) -> bool:
    return -2048 <= value <= 2047


def hi_lo(value: int) -> Tuple[int, int]:
    """Split a 32-bit constant into ``lui``/``addi`` halves.

    ``lo`` is sign-extended by ``addi``, so ``hi`` must absorb the carry:
    ``value == (hi << 12) + sign_extend(lo, 12)`` (mod 2^32).
    """
    value &= 0xFFFFFFFF
    lo = value & 0xFFF
    if lo >= 0x800:
        lo -= 0x1000
    hi = ((value - lo) >> 12) & 0xFFFFF
    return hi, lo


def expand_pseudo(mnemonic: str, operands: List[str],
                  line: int = 0, column: int = 0) -> Expansion:
    """Expand *mnemonic* into base instructions; identity for real ones.

    Operands are raw source strings (registers, immediates or label
    expressions) — expansion only rearranges them.
    """
    ops = operands
    n = len(ops)

    def need(count: int) -> None:
        if n != count:
            raise AsmSyntaxError(
                f"'{mnemonic}' expects {count} operand(s), got {n}", line, column)

    if mnemonic == "nop":
        need(0)
        return [("addi", ["x0", "x0", "0"])]

    if mnemonic == "li":
        need(2)
        text = ops[1].strip()
        try:
            value = int(text, 0)
        except ValueError:
            value = None
        if value is not None and _fits_imm12(value):
            return [("addi", [ops[0], "x0", str(value)])]
        if value is not None:
            hi, lo = hi_lo(value)
            out: Expansion = [("lui", [ops[0], str(hi)])]
            if lo:
                out.append(("addi", [ops[0], ops[0], str(lo)]))
            else:  # keep a fixed 2-instruction size for simplicity
                out.append(("addi", [ops[0], ops[0], "0"]))
            return out
        # non-literal: resolve via %hi/%lo in pass 2
        return [("lui", [ops[0], f"%hi({ops[1]})"]),
                ("addi", [ops[0], ops[0], f"%lo({ops[1]})"])]

    if mnemonic in ("la", "lla"):
        need(2)
        return [("lui", [ops[0], f"%hi({ops[1]})"]),
                ("addi", [ops[0], ops[0], f"%lo({ops[1]})"])]

    if mnemonic == "mv":
        need(2)
        return [("addi", [ops[0], ops[1], "0"])]
    if mnemonic == "not":
        need(2)
        return [("xori", [ops[0], ops[1], "-1"])]
    if mnemonic == "neg":
        need(2)
        return [("sub", [ops[0], "x0", ops[1]])]
    if mnemonic == "seqz":
        need(2)
        return [("sltiu", [ops[0], ops[1], "1"])]
    if mnemonic == "snez":
        need(2)
        return [("sltu", [ops[0], "x0", ops[1]])]
    if mnemonic == "sltz":
        need(2)
        return [("slt", [ops[0], ops[1], "x0"])]
    if mnemonic == "sgtz":
        need(2)
        return [("slt", [ops[0], "x0", ops[1]])]

    if mnemonic == "beqz":
        need(2)
        return [("beq", [ops[0], "x0", ops[1]])]
    if mnemonic == "bnez":
        need(2)
        return [("bne", [ops[0], "x0", ops[1]])]
    if mnemonic == "blez":
        need(2)
        return [("bge", ["x0", ops[0], ops[1]])]
    if mnemonic == "bgez":
        need(2)
        return [("bge", [ops[0], "x0", ops[1]])]
    if mnemonic == "bltz":
        need(2)
        return [("blt", [ops[0], "x0", ops[1]])]
    if mnemonic == "bgtz":
        need(2)
        return [("blt", ["x0", ops[0], ops[1]])]
    if mnemonic == "bgt":
        need(3)
        return [("blt", [ops[1], ops[0], ops[2]])]
    if mnemonic == "ble":
        need(3)
        return [("bge", [ops[1], ops[0], ops[2]])]
    if mnemonic == "bgtu":
        need(3)
        return [("bltu", [ops[1], ops[0], ops[2]])]
    if mnemonic == "bleu":
        need(3)
        return [("bgeu", [ops[1], ops[0], ops[2]])]

    if mnemonic == "j":
        need(1)
        return [("jal", ["x0", ops[0]])]
    if mnemonic == "jal" and n == 1:
        return [("jal", ["x1", ops[0]])]
    if mnemonic == "jr":
        need(1)
        return [("jalr", ["x0", ops[0], "0"])]
    if mnemonic == "jalr" and n == 1:
        return [("jalr", ["x1", ops[0], "0"])]
    if mnemonic == "ret":
        need(0)
        return [("jalr", ["x0", "x1", "0"])]
    if mnemonic == "call":
        need(1)
        # Near call: all simulator code fits in a jal's reach.
        return [("jal", ["x1", ops[0]])]
    if mnemonic == "tail":
        need(1)
        return [("jal", ["x0", ops[0]])]

    if mnemonic == "fmv.s":
        need(2)
        return [("fsgnj.s", [ops[0], ops[1], ops[1]])]
    if mnemonic == "fabs.s":
        need(2)
        return [("fsgnjx.s", [ops[0], ops[1], ops[1]])]
    if mnemonic == "fneg.s":
        need(2)
        return [("fsgnjn.s", [ops[0], ops[1], ops[1]])]

    return [(mnemonic, ops)]


#: Mnemonics recognised as pseudo-instructions (for syntax checks / docs).
PSEUDO_MNEMONICS = frozenset({
    "nop", "li", "la", "lla", "mv", "not", "neg", "seqz", "snez", "sltz",
    "sgtz", "beqz", "bnez", "blez", "bgez", "bltz", "bgtz", "bgt", "ble",
    "bgtu", "bleu", "j", "jr", "ret", "call", "tail",
    "fmv.s", "fabs.s", "fneg.s",
})
