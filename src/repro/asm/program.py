"""Assembled program representation.

A :class:`Program` is the output of the assembler: the instruction list
(with all operand values resolved), the label table, the initialized data
segment, the memory-symbol table shown in the memory pop-up (Fig. 2) and the
entry point.  Memory layout follows Sec. III-C: the call stack is allocated
at the beginning of memory (its top pointer seeds ``x2``/``sp``), user data
follows after it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.isa.instruction import InstructionDef, InstructionType


@dataclass
class DataSymbol:
    """A named, statically allocated memory object (array / scalar / string)."""

    name: str
    address: int
    size: int
    element_size: int = 1
    dtype: str = "byte"

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "address": self.address,
            "size": self.size,
            "elementSize": self.element_size,
            "dtype": self.dtype,
        }


@dataclass
class ParsedInstruction:
    """One static instruction of the program.

    ``operands`` maps argument names of the definition to resolved values:
    canonical register names (``x5`` / ``f3``) for register arguments and
    integers for immediates (branch targets already PC-relative).
    """

    index: int
    definition: InstructionDef
    operands: Dict[str, object]
    source_line: int = 0
    source_text: str = ""
    #: 1-based C source line this instruction was compiled from (C<->asm link)
    c_line: int = 0

    @property
    def pc(self) -> int:
        """Byte address of the instruction (4 bytes per instruction)."""
        return self.index * 4

    @property
    def mnemonic(self) -> str:
        return self.definition.name

    def render(self) -> str:
        """Canonical textual form, e.g. ``add x5, x6, x7``."""
        d = self.definition
        parts: List[str] = []
        if d.mem_operand:
            reg = self.operands[d.arguments[0].name]
            imm = self.operands["imm"]
            base = self.operands["rs1"]
            return f"{d.name} {reg}, {imm}({base})"
        for arg in d.arguments:
            value = self.operands[arg.name]
            parts.append(str(value))
        return d.name + (" " + ", ".join(parts) if parts else "")

    def to_json(self) -> dict:
        return {
            "index": self.index,
            "pc": self.pc,
            "mnemonic": self.mnemonic,
            "operands": dict(self.operands),
            "sourceLine": self.source_line,
            "cLine": self.c_line,
            "text": self.render(),
        }


@dataclass
class Program:
    """A fully assembled program plus its initial memory image."""

    instructions: List[ParsedInstruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)
    #: initialized data segment, placed at ``data_base`` in memory
    data: bytearray = field(default_factory=bytearray)
    data_base: int = 0
    symbols: List[DataSymbol] = field(default_factory=list)
    entry_pc: int = 0
    #: initial stack pointer (top of the call-stack region)
    stack_pointer: int = 0
    source: str = ""
    #: lazily built static decode cache (see repro.core.decoded)
    _decoded: Optional[list] = field(default=None, init=False, repr=False,
                                     compare=False)

    def decoded_ops(self) -> list:
        """Per-static-instruction decode cache, built once and shared by
        every Cpu (and every backward-simulation re-run) over this program.

        The cache is validated by identity against the current instruction
        list, so *replacing* instructions (or the whole list, even at the
        same length) transparently rebuilds the decoded records.  Mutating
        an existing ``ParsedInstruction``'s operands in place is not
        detected — treat instructions as immutable once assembled."""
        decoded = self._decoded
        instructions = self.instructions
        if (decoded is None or len(decoded) != len(instructions)
                or any(d.instruction is not i
                       for d, i in zip(decoded, instructions))):
            from repro.core.decoded import decode_program
            decoded = decode_program(self)
            self._decoded = decoded
        return decoded

    def instruction_at(self, pc: int) -> Optional[ParsedInstruction]:
        """Instruction at byte address *pc* (None when out of range)."""
        index = pc >> 2
        if pc & 3 or index < 0 or index >= len(self.instructions):
            return None
        return self.instructions[index]

    @property
    def code_size_bytes(self) -> int:
        return len(self.instructions) * 4

    def static_mix(self) -> Dict[str, int]:
        """Static instruction mix by coarse type (Fig. 10 table)."""
        mix = {t.value: 0 for t in InstructionType}
        for instr in self.instructions:
            mix[instr.definition.instruction_type.value] += 1
        return mix

    def symbol_table(self) -> List[dict]:
        """Memory pop-up payload: arrays, start addresses (Fig. 2)."""
        return [s.to_json() for s in self.symbols]

    def find_symbol(self, name: str) -> Optional[DataSymbol]:
        for sym in self.symbols:
            if sym.name == name:
                return sym
        return None

    def initial_memory_image(self, capacity: int) -> bytearray:
        """Flat memory of *capacity* bytes with the data segment installed."""
        image = bytearray(capacity)
        end = self.data_base + len(self.data)
        if end > capacity:
            raise ValueError(
                f"program data ({end} bytes) exceeds memory capacity {capacity}")
        image[self.data_base:end] = self.data
        return image

    def to_json(self) -> dict:
        return {
            "instructions": [i.to_json() for i in self.instructions],
            "labels": dict(self.labels),
            "dataBase": self.data_base,
            "dataSize": len(self.data),
            "symbols": self.symbol_table(),
            "entryPc": self.entry_pc,
            "stackPointer": self.stack_pointer,
        }
