"""Simulation step manager (the paper's ``BlockScheduleTask``).

Drives the :class:`repro.core.pipeline.Cpu` clock cycle by clock cycle
(step-by-step) or continuously to completion, collects runtime statistics,
and implements **backward simulation** exactly as the paper does
(Sec. III-B): *"implemented as a forward simulation with t-1 clock cycles.
While this approach significantly simplifies the implementation, it
requires the simulation to be deterministic."*  All sources of randomness
(Random cache replacement, random array fills) are seeded, so re-running is
bit-exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.asm.parser import Assembler
from repro.asm.program import Program
from repro.core.config import CpuConfig
from repro.core.pipeline import Cpu
from repro.isa.isa import InstructionSet
from repro.sim.statistics import RuntimeStatistics


@dataclass
class SimulationResult:
    """Summary of a finished run (CLI / server payload)."""

    halt_reason: str
    cycles: int
    committed: int
    statistics: dict

    def to_json(self) -> dict:
        return {
            "haltReason": self.halt_reason,
            "cycles": self.cycles,
            "committedInstructions": self.committed,
            "statistics": self.statistics,
        }


class Simulation:
    """Forward/backward-steppable simulation of one program on one config.

    Parameters
    ----------
    program:
        An assembled :class:`Program`.
    config:
        The processor architecture.  The assembler must have used the same
        call-stack size (use :meth:`from_source` to guarantee this).
    """

    def __init__(self, program: Program, config: Optional[CpuConfig] = None):
        self.program = program
        self.config = config or CpuConfig()
        self.cpu = Cpu(program, self.config)
        self.stats = RuntimeStatistics(self.cpu)
        #: observers notified after every step (the paper's observer pattern)
        self.observers: List[Callable[[Cpu], None]] = []

    # ------------------------------------------------------------------
    @staticmethod
    def from_source(source: str, config: Optional[CpuConfig] = None,
                    entry: Optional[object] = None,
                    memory_locations: Sequence[object] = (),
                    instruction_set: Optional[InstructionSet] = None) -> "Simulation":
        """Assemble *source* and build a simulation with a consistent layout."""
        config = config or CpuConfig()
        assembler = Assembler(instruction_set)
        program = assembler.assemble(
            source, entry=entry, memory_locations=memory_locations,
            stack_size=config.memory.call_stack_size)
        return Simulation(program, config)

    # ------------------------------------------------------------------
    @property
    def cycle(self) -> int:
        return self.cpu.cycle

    @property
    def halted(self) -> Optional[str]:
        return self.cpu.halted

    def subscribe(self, observer: Callable[[Cpu], None]) -> None:
        """Register a state-change observer (GUI blocks in the paper)."""
        self.observers.append(observer)

    # ------------------------------------------------------------------
    def step(self, cycles: int = 1) -> None:
        """Advance the simulation by *cycles* clock cycles."""
        for _ in range(cycles):
            if self.cpu.halted:
                return
            self.cpu.step()
            for observer in self.observers:
                observer(self.cpu)

    def step_back(self, cycles: int = 1) -> None:
        """Backward simulation: deterministic re-run of ``t - cycles``.

        Intended for interactive use with small programs running over a few
        thousand clock cycles (Sec. III-B).
        """
        target = max(0, self.cpu.cycle - cycles)
        self.reset()
        self.step(target)

    def seek(self, cycle: int) -> None:
        """Jump to an absolute cycle (log-message navigation, Sec. II-A)."""
        if cycle < self.cpu.cycle:
            self.reset()
        self.step(cycle - self.cpu.cycle)

    def reset(self) -> None:
        """Rebuild all processor state at cycle 0."""
        self.cpu = Cpu(self.program, self.config)
        self.stats = RuntimeStatistics(self.cpu)

    # ------------------------------------------------------------------
    def run(self, max_cycles: Optional[int] = None) -> SimulationResult:
        """Run continuously until the program ends (or a cycle budget).

        With no registered observers this takes the uninstrumented fast
        path (:meth:`repro.core.pipeline.Cpu.run`): no per-cycle observer
        dispatch, no snapshots — run-to-completion simulations only pay for
        the pipeline blocks themselves."""
        budget = max_cycles if max_cycles is not None else self.config.max_cycles
        if not self.observers:
            self.cpu.run(budget)
        else:
            while not self.cpu.halted and self.cpu.cycle < budget:
                self.cpu.step()
                for observer in self.observers:
                    observer(self.cpu)
        if not self.cpu.halted:
            self.cpu.halted = f"cycle budget reached ({budget})"
        return SimulationResult(
            halt_reason=self.cpu.halted,
            cycles=self.cpu.cycle,
            committed=self.cpu.committed,
            statistics=self.stats.to_json(),
        )

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Full processor-state payload for the web client."""
        data = self.cpu.snapshot()
        data["statistics"] = self.stats.panel(expanded=True)
        data["log"] = [{"cycle": c, "message": m} for c, m in self.cpu.log]
        return data

    def register_value(self, name: str):
        """Committed architectural value of a register (tests, CLI)."""
        from repro.isa.registers import parse_register
        return self.cpu.arch_regs.read(parse_register(name))

    def memory_bytes(self, address: int, size: int) -> bytes:
        return self.cpu.memory.read_bytes(address, size)

    def memory_word(self, address: int, signed: bool = True) -> int:
        return self.cpu.memory.read_int(address, 4, signed)

    def symbol_address(self, name: str) -> int:
        if name not in self.program.labels:
            raise KeyError(f"no such label/symbol: {name}")
        return self.program.labels[name]


def run_program(source: str, config: Optional[CpuConfig] = None,
                entry: Optional[object] = None,
                memory_locations: Sequence[object] = ()) -> Tuple[Simulation, SimulationResult]:
    """One-call convenience: assemble, run to completion, return both the
    simulation (for state inspection) and the result summary."""
    sim = Simulation.from_source(source, config, entry, memory_locations)
    result = sim.run()
    return sim, result
