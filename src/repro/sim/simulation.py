"""Simulation step manager (the paper's ``BlockScheduleTask``).

Drives the :class:`repro.core.pipeline.Cpu` clock cycle by clock cycle
(step-by-step) or continuously to completion, collects runtime statistics,
and implements **backward simulation** exactly as the paper does
(Sec. III-B): *"implemented as a forward simulation with t-1 clock cycles.
While this approach significantly simplifies the implementation, it
requires the simulation to be deterministic."*  All sources of randomness
(Random cache replacement, random array fills) are seeded, so re-running is
bit-exact.

Observability boundary
----------------------

This module (and everything below it — :mod:`repro.core.pipeline`,
:mod:`repro.core.trace`) is *outside* the telemetry plane: it never
imports :mod:`repro.obs`, reads no wall clock, and emits no metrics.
Profiling is attach-from-outside only — :class:`repro.obs.profile`
wraps stage methods as instance attributes and removes them on detach,
so an unprofiled ``Simulation.run()`` executes the exact same code as
a build that has never heard of the profiler (pinned by
``tests/obs/test_profile.py::TestLayering`` and the throughput ratio
in ``benchmarks/test_obs_overhead.py``).  Telemetry for sweeps happens
one layer up, in the explore backends, keyed off the deterministic
:class:`SimulationResult` this module returns.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.asm.parser import Assembler
from repro.asm.program import Program
from repro.core.config import CpuConfig
from repro.core.pipeline import Cpu
from repro.isa.isa import InstructionSet
from repro.sim.state import SNAPSHOT_SCHEMA_VERSION, CheckpointRing
from repro.sim.statistics import RuntimeStatistics

#: cycles simulated between cooperative cancel-token checks in
#: :meth:`Simulation.run`.  The documented worst case: once a token
#: fires, at most this many more cycles execute before the run halts
#: (one check interval; ~tens of milliseconds of wall time at the
#: simulator's measured cycle throughput).  Pinned by
#: ``tests/fleet/test_cancel.py``.
DEFAULT_CANCEL_STRIDE = 5_000

#: halt reason of a run stopped by a cancel token — deterministic (no
#: reason text embedded) so cancelled records stay comparable
CANCELLED_HALT_REASON = "cancelled"


@dataclass
class SimulationResult:
    """Summary of a finished run (CLI / server payload)."""

    halt_reason: str
    cycles: int
    committed: int
    statistics: dict

    def to_json(self) -> dict:
        return {
            "haltReason": self.halt_reason,
            "cycles": self.cycles,
            "committedInstructions": self.committed,
            "statistics": self.statistics,
        }


class Simulation:
    """Forward/backward-steppable simulation of one program on one config.

    Parameters
    ----------
    program:
        An assembled :class:`Program`.
    config:
        The processor architecture.  The assembler must have used the same
        call-stack size (use :meth:`from_source` to guarantee this).
    """

    def __init__(self, program: Program, config: Optional[CpuConfig] = None,
                 checkpoint_interval: int = 128,
                 checkpoint_capacity: int = 24,
                 checkpoint_max_bytes: Optional[int] = None):
        self.program = program
        self.config = config or CpuConfig()
        self.cpu = Cpu(program, self.config)
        self.stats = RuntimeStatistics(self.cpu)
        #: observers notified after every step (the paper's observer pattern)
        self.observers: List[Callable[[Cpu], None]] = []
        #: every-K-cycles checkpoint store for O(K) time travel; the cycle-0
        #: checkpoint is captured eagerly so any target has a restore base
        self.checkpoints = CheckpointRing(checkpoint_interval,
                                          checkpoint_capacity,
                                          max_bytes=checkpoint_max_bytes)
        self.checkpoints.put(0, self.cpu.save_state())
        #: cycles re-executed by the most recent backward step / seek
        #: (0 = resolved without replay); pinned by the O(K) benchmarks
        self.last_replay_cycles = 0
        #: cycles covered by the uninstrumented fast-forward leg of the
        #: most recent seek / step_back (0 = the move was stepped)
        self.last_fast_forward = 0
        #: (cycle, section versions, log length, per-instruction versions,
        #: per-store-buffer-entry versions) of the last snapshot served —
        #: the base the next snapshot_delta() is computed against
        self._view_mark: Optional[Tuple[int, dict, int, dict, dict]] = None
        #: incremental rendering of the cycle-stamped log
        self._log_render: Optional[Tuple[list, list]] = None

    # ------------------------------------------------------------------
    @staticmethod
    def from_source(source: str, config: Optional[CpuConfig] = None,
                    entry: Optional[object] = None,
                    memory_locations: Sequence[object] = (),
                    instruction_set: Optional[InstructionSet] = None,
                    checkpoint_interval: int = 128,
                    checkpoint_capacity: int = 24,
                    checkpoint_max_bytes: Optional[int] = None
                    ) -> "Simulation":
        """Assemble *source* and build a simulation with a consistent layout."""
        config = config or CpuConfig()
        assembler = Assembler(instruction_set)
        program = assembler.assemble(
            source, entry=entry, memory_locations=memory_locations,
            stack_size=config.memory.call_stack_size)
        return Simulation(program, config,
                          checkpoint_interval=checkpoint_interval,
                          checkpoint_capacity=checkpoint_capacity,
                          checkpoint_max_bytes=checkpoint_max_bytes)

    # ------------------------------------------------------------------
    @property
    def cycle(self) -> int:
        return self.cpu.cycle

    @property
    def halted(self) -> Optional[str]:
        return self.cpu.halted

    def subscribe(self, observer: Callable[[Cpu], None]) -> None:
        """Register a state-change observer (GUI blocks in the paper)."""
        self.observers.append(observer)

    # ------------------------------------------------------------------
    def step(self, cycles: int = 1) -> None:
        """Advance the simulation by *cycles* clock cycles.

        Every ``checkpoint_interval`` cycles the complete processor state is
        checkpointed (see :class:`repro.sim.state.CheckpointRing`), so later
        backward steps and seeks restore the nearest checkpoint and replay
        at most one interval instead of re-running from cycle 0."""
        cpu = self.cpu
        checkpoints = self.checkpoints
        for _ in range(cycles):
            if cpu.halted:
                return
            cpu.step()
            for observer in self.observers:
                observer(cpu)
            if checkpoints.due(cpu.cycle):
                checkpoints.put(cpu.cycle, cpu.save_state())

    def step_back(self, cycles: int = 1) -> None:
        """Backward simulation: deterministic re-run to ``t - cycles``.

        Implemented as restore-nearest-checkpoint + forward replay of at
        most ``checkpoint_interval`` cycles (the paper's from-zero re-run,
        Sec. III-B, remains the degenerate case when no checkpoint covers
        the target — e.g. the pinned cycle-0 checkpoint).
        """
        self._travel_to(max(0, self.cpu.cycle - cycles))

    def seek(self, cycle: int) -> None:
        """Jump to an absolute cycle (log-message navigation, Sec. II-A).

        Backward (and far-forward) jumps restore the nearest stored
        checkpoint ``<= cycle`` — determinism makes checkpoints *ahead* of
        the current position just as valid a base as ones behind it."""
        self._travel_to(max(0, cycle))

    def _travel_to(self, target: int) -> None:
        current = self.cpu.cycle
        self.last_fast_forward = 0
        if target == current:
            self.last_replay_cycles = 0
            return
        checkpoint = self.checkpoints.nearest(target)
        if target > current and (checkpoint is None
                                 or checkpoint.cycle <= current):
            # plain forward stepping from where we stand is the best base
            self.last_replay_cycles = 0
            self._advance(target)
            return
        if checkpoint is None:
            # the ring was cleared externally: degrade gracefully to the
            # paper's from-zero re-run (and re-pin the cycle-0 base)
            self.reset()
            self.checkpoints.put(0, self.cpu.save_state())
            self.last_replay_cycles = target
            self._advance(target)
            return
        self.cpu.restore_state(checkpoint.state)
        self.last_replay_cycles = target - checkpoint.cycle
        self._advance(target)

    def _advance(self, target: int) -> None:
        """Forward move to absolute cycle *target* from where we stand.

        With no observers and a gap worth more than two checkpoint
        intervals, the bulk of the move runs **uninstrumented**
        (:meth:`Cpu.run` — the superblock trace tier when enabled) to the
        last interval boundary below the target, drops the checkpoint the
        stepped path would have left there, and only the tail interval is
        stepped.  Determinism makes the two paths land in bit-identical
        state, so instrumented stepping resumes seamlessly afterwards."""
        cpu = self.cpu
        interval = self.checkpoints.interval or 256
        gap = target - cpu.cycle
        if not self.observers and cpu.halted is None and gap > 2 * interval:
            boundary = target - target % interval
            if boundary > cpu.cycle:
                before = cpu.cycle
                cpu.run(boundary)
                self.last_fast_forward = cpu.cycle - before
                if self.checkpoints.due(cpu.cycle):
                    self.checkpoints.put(cpu.cycle, cpu.save_state())
        self.step(target - cpu.cycle)

    def reset(self) -> None:
        """Rebuild all processor state at cycle 0.

        Checkpoints survive a reset: they describe cycles of the unique
        deterministic trajectory of (program, config), which a rebuilt CPU
        follows identically."""
        self.cpu = Cpu(self.program, self.config)
        self.stats = RuntimeStatistics(self.cpu)
        self._view_mark = None

    # ------------------------------------------------------------------
    def run(self, max_cycles: Optional[int] = None,
            cancel: Optional[object] = None,
            cancel_stride: Optional[int] = None) -> SimulationResult:
        """Run continuously until the program ends (or a cycle budget).

        With no registered observers this takes the uninstrumented fast
        path (:meth:`repro.core.pipeline.Cpu.run`): no per-cycle observer
        dispatch, no snapshots — run-to-completion simulations only pay for
        the pipeline blocks themselves.

        *cancel* (any object with a ``cancelled() -> bool`` method,
        canonically :class:`repro.fleet.cancel.CancelToken`) makes the
        run cooperatively cancellable: the token is checked every
        *cancel_stride* cycles (default :data:`DEFAULT_CANCEL_STRIDE`),
        so a fired token halts the run — ``halt_reason`` becomes
        :data:`CANCELLED_HALT_REASON` — within **one stride** instead of
        burning the rest of the budget.  A pre-fired token halts before
        the first cycle.  Without a token the fast path is unchanged
        (zero per-cycle overhead)."""
        budget = max_cycles if max_cycles is not None else self.config.max_cycles
        cpu = self.cpu
        if cancel is None:
            if not self.observers:
                cpu.run(budget)
            else:
                while not cpu.halted and cpu.cycle < budget:
                    cpu.step()
                    for observer in self.observers:
                        observer(cpu)
        else:
            stride = cancel_stride if cancel_stride is not None \
                else DEFAULT_CANCEL_STRIDE
            if stride < 1:
                raise ValueError("cancel_stride must be >= 1")
            cancelled = cancel.cancelled
            while not cpu.halted and cpu.cycle < budget:
                if cancelled():
                    cpu.halted = CANCELLED_HALT_REASON
                    break
                chunk = min(budget, cpu.cycle + stride)
                if not self.observers:
                    cpu.run(chunk)
                else:
                    while not cpu.halted and cpu.cycle < chunk:
                        cpu.step()
                        for observer in self.observers:
                            observer(cpu)
        if not cpu.halted:
            cpu.halted = f"cycle budget reached ({budget})"
        return SimulationResult(
            halt_reason=self.cpu.halted,
            cycles=self.cpu.cycle,
            committed=self.cpu.committed,
            statistics=self.stats.to_json(),
        )

    # ------------------------------------------------------------------
    def _rendered_log(self) -> list:
        """Cycle-stamped log entries, rendered incrementally.

        The rendered list is extended with new entries while the CPU log is
        append-only; a restore replaces the log object, which forces a full
        re-render.  Callers receive a fresh list (entries are shared)."""
        log = self.cpu.log
        cached = self._log_render
        if cached is not None and cached[0] is log                 and len(cached[1]) <= len(log):
            rendered = cached[1]
            for cycle, message in log[len(rendered):]:
                rendered.append({"cycle": cycle, "message": message})
        else:
            rendered = [{"cycle": cycle, "message": message}
                        for cycle, message in log]
            self._log_render = (log, rendered)
        return list(rendered)

    def _entry_versions(self) -> dict:
        """Per-instruction state versions of everything in flight (all
        instruction-list payloads draw from the fetch buffer and the ROB).

        ``SimCode.sver`` counts mutations, and mutation counts are
        deterministic, so these tokens stay comparable across checkpoint
        restores and replays."""
        cpu = self.cpu
        versions = {}
        for simcode in cpu.fetch_buffer:
            versions[simcode.id] = simcode.sver
        for simcode in cpu.rob:
            versions[simcode.id] = simcode.sver
        return versions

    def _storeb_versions(self) -> dict:
        """Per-entry version tokens of the store buffer.

        Store-buffer payload entries are not instruction JSON (they render
        address/committed/drain state), so their version token is that
        visible state itself — equality-comparable, deterministic, and
        exactly as fine-grained as the payload it guards."""
        return {e.simcode.id: (e.address, e.committed, e.drain_until)
                for e in self.cpu.store_buffer}

    def _mark_view(self) -> None:
        self._view_mark = (self.cpu.cycle, self.cpu.section_versions(),
                           len(self.cpu.log), self._entry_versions(),
                           self._storeb_versions())

    @staticmethod
    def _entry_delta_list(simcodes, known: dict, plain: list):
        """Entry-level delta of one instruction-list payload.

        *known* maps instruction id -> ``sver`` the client's base snapshot
        was served at; entries whose version is unchanged are referenced by
        id only (``apply_snapshot_delta`` resolves them from the base).
        Falls back to the *plain* full list when nothing would be saved."""
        changed = {str(s.id): s.to_json()
                   for s in simcodes if known.get(s.id) != s.sver}
        if len(changed) >= len(simcodes):
            return plain
        return {"__entryDelta": True,
                "ids": [s.id for s in simcodes],
                "changed": changed}

    def _entry_delta_fetch(self, known: dict, plain: dict):
        """Entry-level delta of the fetch section (scalars + buffer list).

        The pc / stalledUntil scalars always ride along (they are what
        usually dirties the section); buffer instructions unchanged since
        the client's base are referenced by id."""
        buffer = self.cpu.fetch_buffer
        changed = {str(s.id): s.to_json()
                   for s in buffer if known.get(s.id) != s.sver}
        if len(changed) >= len(buffer):
            return plain
        return {"__entryDelta": True,
                "pc": plain["pc"],
                "stalledUntil": plain["stalledUntil"],
                "ids": [s.id for s in buffer],
                "changed": changed}

    def _entry_delta_storeb(self, known: dict, plain: list):
        """Entry-level delta of the store buffer.

        *plain* is the section payload (aligned with ``cpu.store_buffer``);
        entries whose (address, committed, drainUntil) state matches the
        client's base are referenced by id and resolved there."""
        entries = self.cpu.store_buffer
        changed = {}
        for position, entry in enumerate(entries):
            state = (entry.address, entry.committed, entry.drain_until)
            if known.get(entry.simcode.id) != state:
                changed[str(entry.simcode.id)] = plain[position]
        if len(changed) >= len(entries):
            return plain
        return {"__entryDelta": True,
                "ids": [e.simcode.id for e in entries],
                "changed": changed}

    def _entry_delta_windows(self, known: dict, plain: dict):
        """Entry-level delta of the issue-windows payload (dict of lists)."""
        cpu = self.cpu
        total = 0
        changed = {}
        for window in cpu.windows.values():
            for simcode in window:
                total += 1
                if known.get(simcode.id) != simcode.sver:
                    changed[str(simcode.id)] = simcode.to_json()
        if len(changed) >= total:
            return plain
        return {"__entryDelta": True,
                "windows": {name: [s.id for s in window]
                            for name, window in cpu.windows.items()},
                "changed": changed}

    def snapshot_cold(self) -> dict:
        """Cache-bypassing full snapshot: ground truth for tests and the
        pre-state-engine baseline in benchmarks.

        Invalidates every payload cache (sections, per-instruction dicts
        and fragments, rendered log) before rebuilding, so a missed
        dirty-marking site cannot hide behind two warm caches agreeing."""
        cpu = self.cpu
        for simcode in list(cpu.fetch_buffer) + list(cpu.rob):
            simcode.sver += 1
        cpu._snap_cache.clear()
        self._log_render = None
        return self.snapshot()

    def snapshot(self) -> dict:
        """Full processor-state payload for the web client.

        Also records the view mark that :meth:`snapshot_delta` patches
        against, so a full snapshot is always a valid delta base."""
        data = self.cpu.snapshot()
        data["statistics"] = self.stats.panel(expanded=True)
        data["log"] = self._rendered_log()
        self._mark_view()
        return data

    def snapshot_delta(self, since_cycle: Optional[int] = None) -> dict:
        """Delta payload against the snapshot served at *since_cycle*.

        Returns ``{"format": "delta", ...}`` holding only the sections whose
        dirty version moved, the new log entries, and the (always-fresh)
        statistics panel — apply it with
        :func:`repro.sim.state.apply_snapshot_delta`.  Falls back to
        ``{"format": "full", "state": <snapshot>}`` when *since_cycle* does
        not match the last served view or time moved backwards (a rewound
        log cannot be expressed as an append)."""
        mark = self._view_mark
        cpu = self.cpu
        if (mark is None or since_cycle is None or mark[0] != since_cycle
                or cpu.cycle < mark[0] or len(cpu.log) < mark[2]):
            return {"format": "full", "schema": SNAPSHOT_SCHEMA_VERSION,
                    "state": self.snapshot()}
        _, versions, log_len, known, known_storeb = mark
        sections = cpu.snapshot_sections(versions)
        # the instruction-list whales shrink further to entry-level deltas
        if "rob" in sections:
            sections["rob"] = self._entry_delta_list(
                cpu.rob, known, sections["rob"])
        if "loadQueue" in sections:
            sections["loadQueue"] = self._entry_delta_list(
                cpu.load_queue, known, sections["loadQueue"])
        if "issueWindows" in sections:
            sections["issueWindows"] = self._entry_delta_windows(
                known, sections["issueWindows"])
        if "fetch" in sections:
            sections["fetch"] = self._entry_delta_fetch(
                known, sections["fetch"])
        if "storeBuffer" in sections:
            sections["storeBuffer"] = self._entry_delta_storeb(
                known_storeb, sections["storeBuffer"])
        delta = {
            "format": "delta",
            "schema": SNAPSHOT_SCHEMA_VERSION,
            "baseCycle": since_cycle,
            "cycle": cpu.cycle,
            "pc": cpu.pc,
            "halted": cpu.halted,
            "sections": sections,
            "logStart": log_len,
            "log": [{"cycle": cycle, "message": message}
                    for cycle, message in cpu.log[log_len:]],
            "statistics": self.stats.panel(expanded=True),
        }
        self._mark_view()
        return delta

    def snapshot_json(self) -> str:
        """Pre-serialized full snapshot, value-identical to
        :meth:`snapshot`, assembled from the state engine's serialized
        fragment caches (``Cpu.section_json`` / ``SimCode.to_json_str``):
        unchanged instructions and sections are never re-encoded, which
        removes the JSON share the paper measured at ~60 % of request
        handling from full-state serves (session start, rewind resyncs).
        Wrap the result in :class:`repro.sim.state.RawJson` to splice it
        into a response."""
        cpu = self.cpu
        versions = cpu.section_versions()
        parts = [f'"cycle": {cpu.cycle}', f'"pc": {cpu.pc}',
                 f'"halted": {json.dumps(cpu.halted)}']
        for name in versions:
            parts.append(f'{json.dumps(name)}: '
                         f'{cpu.section_json(name, versions[name])}')
        parts.append(f'"statistics": '
                     f'{json.dumps(self.stats.panel(expanded=True))}')
        parts.append(f'"log": {json.dumps(self._rendered_log())}')
        self._mark_view()
        return "{" + ", ".join(parts) + "}"

    def snapshot_delta_json(self, since_cycle: Optional[int] = None) -> str:
        """Pre-serialized :meth:`snapshot_delta` (byte-equivalent payload).

        Entry-level deltas keep this payload small enough that one C-encoder
        pass serializes it; the full-state fallback goes through the
        fragment-cached :meth:`snapshot_json` instead."""
        mark = self._view_mark
        cpu = self.cpu
        if (mark is None or since_cycle is None or mark[0] != since_cycle
                or cpu.cycle < mark[0] or len(cpu.log) < mark[2]):
            return (f'{{"format": "full", '
                    f'"schema": {SNAPSHOT_SCHEMA_VERSION}, '
                    f'"state": {self.snapshot_json()}}}')
        return json.dumps(self.snapshot_delta(since_cycle))

    def register_value(self, name: str):
        """Committed architectural value of a register (tests, CLI)."""
        from repro.isa.registers import parse_register
        return self.cpu.arch_regs.read(parse_register(name))

    def memory_bytes(self, address: int, size: int) -> bytes:
        return self.cpu.memory.read_bytes(address, size)

    def memory_word(self, address: int, signed: bool = True) -> int:
        return self.cpu.memory.read_int(address, 4, signed)

    def symbol_address(self, name: str) -> int:
        if name not in self.program.labels:
            raise KeyError(f"no such label/symbol: {name}")
        return self.program.labels[name]


def run_program(source: str, config: Optional[CpuConfig] = None,
                entry: Optional[object] = None,
                memory_locations: Sequence[object] = ()) -> Tuple[Simulation, SimulationResult]:
    """One-call convenience: assemble, run to completion, return both the
    simulation (for state inspection) and the result summary."""
    sim = Simulation.from_source(source, config, entry, memory_locations)
    result = sim.run()
    return sim, result
