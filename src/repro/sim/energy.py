"""Chip area and power estimation (the paper's future-work extension).

Sec. V: *"runtime statistics could be expanded to measure the chip area
consumed by specific blocks based on their complexity or estimate the
processor's power consumption using realistic manufacturing technology."*

The model is deliberately simple and transparent — a linear cost model in
the style of early-course CACTI/McPAT usage:

* **Area** is a static function of the configuration: each block contributes
  `base + complexity * size` kilo-gate-equivalents (kGE), with coefficients
  reflecting relative real-world magnitudes (an FP divider is much larger
  than an adder; CAM-style structures pay per-entry-per-port).
* **Dynamic energy** charges each microarchitectural *event* (instruction
  executed by unit class, cache hit/miss, memory access, rename, flush
  recovery) a per-event cost in pJ.
* **Static (leakage) power** is proportional to total area and runs every
  cycle.

Absolute numbers are synthetic (no foundry data is public at this level),
but *relative* comparisons — the whole educational point — behave
correctly: wider machines cost area, mispredict-heavy runs burn energy in
flush recovery, cache misses dominate the memory energy bill.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.config import CpuConfig
from repro.core.pipeline import Cpu

# ---------------------------------------------------------------------------
# area model (kilo-gate-equivalents)
# ---------------------------------------------------------------------------
#: per-operation area of FX/FP execution hardware
_FU_OP_AREA = {
    "addition": 3.0, "bitwise": 1.0, "shift": 2.0, "comparison": 1.5,
    "multiplication": 18.0, "division": 30.0, "special": 0.5,
    "fadd": 20.0, "fmul": 35.0, "fdiv": 60.0, "fsqrt": 55.0,
    "fma": 70.0, "fcmp": 6.0, "fcvt": 10.0,
}
_FU_BASE_AREA = {"FX": 2.0, "FP": 4.0, "LS": 6.0, "Branch": 3.0,
                 "Memory": 8.0}

#: per-entry area of buffering structures
_ROB_ENTRY = 0.8
_RENAME_ENTRY = 0.6
_ISSUE_ENTRY = 1.2          # CAM-ish wakeup logic
_LSQ_ENTRY = 1.0
_BTB_ENTRY = 0.05
_PHT_ENTRY = 0.002          # 2 bits + decode share
_ARCH_REGFILE = 12.0
_FETCH_DECODE_PER_WIDTH = 5.0
_CACHE_KGE_PER_BYTE = 0.012
_CACHE_WAY_OVERHEAD = 1.5   # comparators/muxes per way


@dataclass
class AreaReport:
    """Per-block area breakdown in kGE."""

    blocks: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return sum(self.blocks.values())

    def to_json(self) -> dict:
        return {"blocks": {k: round(v, 3) for k, v in self.blocks.items()},
                "totalKGE": round(self.total, 3)}


def estimate_area(config: CpuConfig) -> AreaReport:
    """Static area estimate for an architecture configuration."""
    report = AreaReport()
    blocks = report.blocks
    buffers = config.buffers
    blocks["fetch+decode"] = _FETCH_DECODE_PER_WIDTH * buffers.fetch_width
    blocks["reorderBuffer"] = _ROB_ENTRY * buffers.rob_size
    blocks["renameFile"] = _RENAME_ENTRY * config.memory.rename_file_size
    blocks["issueWindows"] = _ISSUE_ENTRY * buffers.issue_window_size * 4
    blocks["loadStoreBuffers"] = _LSQ_ENTRY * (
        config.memory.load_buffer_size + config.memory.store_buffer_size)
    blocks["registerFiles"] = 2 * _ARCH_REGFILE
    for fu in config.fus:
        area = _FU_BASE_AREA[fu.kind]
        if fu.kind in ("FX", "FP"):
            area += sum(_FU_OP_AREA.get(op, 1.0) for op in fu.operations)
        blocks[f"unit:{fu.name}"] = area
    predictor = config.predictor
    blocks["branchPredictor"] = (_BTB_ENTRY * predictor.btb_size
                                 + _PHT_ENTRY * predictor.pht_size)
    if config.cache.enabled:
        cache_bytes = config.cache.line_count * config.cache.line_size
        blocks["l1Cache"] = (_CACHE_KGE_PER_BYTE * cache_bytes
                             + _CACHE_WAY_OVERHEAD
                             * config.cache.associativity)
    return report


# ---------------------------------------------------------------------------
# energy model (picojoules per event)
# ---------------------------------------------------------------------------
_EVENT_PJ = {
    "commit:kIntArithmetic": 6.0,
    "commit:kFloatArithmetic": 25.0,
    "commit:kLoadstore": 10.0,
    "commit:kJumpbranch": 6.0,
    "cacheHit": 12.0,
    "cacheMiss": 40.0,          # tag probes + fill management
    "memoryAccessPerByte": 6.0, # DRAM traffic
    "rename": 1.5,
    "robFlush": 90.0,           # recovery + refetch startup
    "predictorLookup": 0.8,
}
#: leakage: pW per kGE at the (synthetic) reference node, per cycle at 1 GHz
_LEAKAGE_PJ_PER_KGE_CYCLE = 0.02


@dataclass
class EnergyReport:
    """Energy / power summary of a finished (or running) simulation."""

    dynamic_pj: Dict[str, float] = field(default_factory=dict)
    static_pj: float = 0.0
    cycles: int = 0
    wall_time_s: float = 0.0

    @property
    def dynamic_total_pj(self) -> float:
        return sum(self.dynamic_pj.values())

    @property
    def total_pj(self) -> float:
        return self.dynamic_total_pj + self.static_pj

    @property
    def average_power_w(self) -> float:
        if self.wall_time_s <= 0:
            return 0.0
        return self.total_pj * 1e-12 / self.wall_time_s

    def to_json(self) -> dict:
        return {
            "dynamicPj": {k: round(v, 2) for k, v in self.dynamic_pj.items()},
            "dynamicTotalPj": round(self.dynamic_total_pj, 2),
            "staticPj": round(self.static_pj, 2),
            "totalPj": round(self.total_pj, 2),
            "averagePowerW": self.average_power_w,
            "cycles": self.cycles,
        }


def estimate_energy(cpu: Cpu) -> EnergyReport:
    """Energy estimate from a CPU's activity counters."""
    report = EnergyReport(cycles=cpu.cycle,
                          wall_time_s=cpu.cycle / cpu.config.core_clock_hz)
    dyn = report.dynamic_pj
    for itype, count in cpu.committed_by_type.items():
        key = f"commit:{itype}"
        dyn[key] = dyn.get(key, 0.0) + _EVENT_PJ.get(key, 5.0) * count
    if cpu.cache is not None:
        stats = cpu.cache.stats
        dyn["cacheHits"] = _EVENT_PJ["cacheHit"] * stats.hits
        dyn["cacheMisses"] = _EVENT_PJ["cacheMiss"] * stats.misses
    mem = cpu.memory.stats()
    dyn["memoryTraffic"] = _EVENT_PJ["memoryAccessPerByte"] * (
        mem["bytesRead"] + mem["bytesWritten"])
    dyn["rename"] = _EVENT_PJ["rename"] * cpu.committed
    dyn["flushRecovery"] = _EVENT_PJ["robFlush"] * cpu.rob_flushes
    dyn["predictor"] = _EVENT_PJ["predictorLookup"] \
        * cpu.predictor.predictions
    area = estimate_area(cpu.config).total
    report.static_pj = _LEAKAGE_PJ_PER_KGE_CYCLE * area * cpu.cycle
    return report


def render_power_report(cpu: Cpu) -> str:
    """Statistics-page extension: area + energy breakdown as text."""
    area = estimate_area(cpu.config)
    energy = estimate_energy(cpu)
    lines = ["Area / power estimate (synthetic cost model)",
             "=" * 60,
             f"total area: {area.total:.1f} kGE"]
    for name, value in sorted(area.blocks.items(),
                              key=lambda item: -item[1]):
        lines.append(f"  {name:<22} {value:>9.2f} kGE "
                     f"({100 * value / area.total:4.1f} %)")
    lines.append("")
    lines.append(f"dynamic energy: {energy.dynamic_total_pj / 1000:.2f} nJ, "
                 f"static: {energy.static_pj / 1000:.2f} nJ")
    for name, value in sorted(energy.dynamic_pj.items(),
                              key=lambda item: -item[1]):
        lines.append(f"  {name:<22} {value / 1000:>9.3f} nJ")
    committed = max(1, cpu.committed)
    lines.append("")
    lines.append(f"energy/instruction: {energy.total_pj / committed:.1f} pJ")
    lines.append(f"average power: {energy.average_power_w * 1000:.3f} mW "
                 f"@ {cpu.config.core_clock_hz / 1e6:.0f} MHz")
    return "\n".join(lines)
