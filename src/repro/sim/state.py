"""Versioned component state: the simulator's incremental state engine.

Every stateful component of the processor model (register files, rename
file, main memory, caches, branch predictor, the pipeline structures owned
by :class:`repro.core.pipeline.Cpu`) participates in one small protocol:

``save_state() -> object``
    Return a self-contained, immutable-by-convention snapshot of the
    component's mutable state.  The snapshot must not alias live state:
    restoring it later — possibly after arbitrary further simulation — has
    to reproduce the component bit-exactly.

``restore_state(state) -> None``
    Reinstall a previously saved snapshot *in place* (object identity of
    the component is preserved, so cross-component references — the cache's
    pointer to main memory, the rename file's pointer to the architectural
    registers — never need rewiring).

``version`` (an ``int`` or any equality-comparable token)
    A dirty counter, bumped on every observable mutation and on every
    restore.  Consumers cache derived artifacts (JSON payloads, rendered
    views) keyed by version and rebuild only when the version moved.
    Versions are monotonic per process and are deliberately *not* part of
    the saved state: a restore bumps the version so stale caches are
    invalidated, and a version value therefore never refers to two
    different contents.

On top of the protocol this module provides the three generic pieces the
snapshot/seek/serve stack is built from:

* :class:`SnapshotCache` — per-section payload caching keyed by version,
  used by ``Cpu.snapshot()`` to patch the processor-view payload from dirty
  components only instead of rebuilding every section each cycle.
* :class:`CheckpointRing` — a bounded, LRU-evicted ring of full-state
  checkpoints taken every K cycles, used by ``Simulation`` to turn
  ``step_back``/``seek`` from an O(t) re-run into restore-nearest +
  replay-at-most-K (the checkpoint at cycle 0 is pinned so time travel to
  any cycle always has a base).
* :func:`apply_snapshot_delta` — client-side patching of a full snapshot
  with a delta produced by ``Simulation.snapshot_delta``, so the wire
  payload scales with what changed, not with machine size.

Determinism (Sec. III-B of the paper) is what makes checkpoint replay
sound: restoring the nearest checkpoint and re-running the remaining cycles
is bit-identical to a re-run from cycle 0, which the golden determinism
suite pins.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

#: Version of the snapshot/delta wire shape served by the session API.
#: Bump when the section list or the delta envelope changes incompatibly.
#: v3: every instruction-list section delta-serves at entry level —
#: ``fetch`` (scalars + buffer ids) and ``storeBuffer`` (entries carry an
#: ``id``) joined rob/issueWindows/loadQueue.
SNAPSHOT_SCHEMA_VERSION = 3

#: Section names of the processor-view payload (``Cpu.snapshot()`` keys
#: that are cached / delta-served; scalars cycle/pc/halted ride alongside).
SNAPSHOT_SECTIONS = (
    "fetch", "rob", "issueWindows", "functionalUnits", "memoryUnits",
    "loadQueue", "storeBuffer", "registers", "rename", "cache", "l2Cache",
)


class SnapshotCache:
    """Caches per-section payloads keyed by an opaque version token.

    ``section(name, version, build)`` returns the cached payload when the
    version matches the one it was built at, otherwise calls *build* and
    caches the result.  Payloads are returned by reference — callers must
    treat them as immutable (the snapshot path only ever serializes them).
    """

    __slots__ = ("_cache",)

    def __init__(self) -> None:
        self._cache: Dict[str, Tuple[object, object]] = {}

    def section(self, name: str, version: object,
                build: Callable[[], object]) -> object:
        hit = self._cache.get(name)
        if hit is not None and hit[0] == version:
            return hit[1]
        payload = build()
        self._cache[name] = (version, payload)
        return payload

    def clear(self) -> None:
        self._cache.clear()


class Checkpoint:
    """One full-simulation checkpoint: the cycle it was taken at plus the
    opaque state blob produced by ``Cpu.save_state``."""

    __slots__ = ("cycle", "state")

    def __init__(self, cycle: int, state: object):
        self.cycle = cycle
        self.state = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Checkpoint(cycle={self.cycle})"


class CheckpointRing:
    """Every-K-cycles checkpoint store with LRU-bounded memory.

    * ``due(cycle)`` — True when a checkpoint should be captured at *cycle*
      (the cycle is a multiple of the interval and not already stored).
    * ``put(cycle, state)`` — store a checkpoint; evicts the least recently
      used one when over capacity, then — when a ``max_bytes`` budget is
      set — keeps evicting LRU-first while :meth:`bytes_retained` exceeds
      the budget (never below the pinned cycle-0 base plus one more, so
      time travel always has a restore base and the freshest checkpoint
      survives its own put).  The cycle-0 checkpoint is pinned: time
      travel to any target always has a restore base, and restoring it is
      the in-place equivalent of rebuilding the CPU from scratch.
    * ``nearest(target)`` — the stored checkpoint with the greatest cycle
      ``<= target`` (and marks it recently used).

    Determinism makes *future* checkpoints reusable too: a checkpoint taken
    at cycle 500 remains a valid restore base for ``seek(600)`` even after
    stepping back to cycle 100, because the trajectory is unique.
    """

    def __init__(self, interval: int = 128, capacity: int = 24,
                 max_bytes: Optional[int] = None):
        if interval < 0:
            raise ValueError("checkpoint interval must be >= 0 (0 disables)")
        if capacity < 2:
            # cycle 0 is pinned, so capacity 1 could never retain any other
            # checkpoint: every put() would evict the entry it just added
            raise ValueError("checkpoint capacity must be >= 2")
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("checkpoint max_bytes must be > 0 (or None)")
        self.interval = interval
        self.capacity = capacity
        self.max_bytes = max_bytes
        #: cycle -> Checkpoint, in LRU order (front = least recently used)
        self._ring: "OrderedDict[int, Checkpoint]" = OrderedDict()
        #: content generation: bumped whenever the stored set changes, so
        #: the bytes_retained() walk is amortized across the steps between
        #: checkpoints (the hot session/step path reads the gauge per
        #: request, but checkpoints only land every `interval` cycles)
        self._generation = 0
        self._retained_cache: Optional[Tuple[int, int]] = None

    # ------------------------------------------------------------------
    def due(self, cycle: int) -> bool:
        return (self.interval > 0 and cycle % self.interval == 0
                and cycle not in self._ring)

    def put(self, cycle: int, state: object) -> Checkpoint:
        checkpoint = Checkpoint(cycle, state)
        self._ring[cycle] = checkpoint
        self._ring.move_to_end(cycle)
        while len(self._ring) > self.capacity:
            for victim in self._ring:          # front = LRU
                if victim != 0:                # cycle 0 is pinned
                    del self._ring[victim]
                    break
            else:  # pragma: no cover - capacity >= 2 keeps cycle 0
                break
        self._generation += 1
        if self.max_bytes is not None:
            # byte budget: page-compressed states share clean-page blobs,
            # so each eviction's real savings only show in the next
            # deduplicated walk — re-measure after every victim
            while (len(self._ring) > 2
                   and self.bytes_retained() > self.max_bytes):
                for victim in self._ring:      # front = LRU
                    if victim != 0:            # cycle 0 is pinned
                        del self._ring[victim]
                        self._generation += 1
                        break
                else:  # pragma: no cover - len > 2 keeps non-zero entries
                    break
        return checkpoint

    def nearest(self, target: int) -> Optional[Checkpoint]:
        best: Optional[int] = None
        for cycle in self._ring:
            if cycle <= target and (best is None or cycle > best):
                best = cycle
        if best is None:
            return None
        self._ring.move_to_end(best)
        return self._ring[best]

    def cycles(self) -> List[int]:
        """Stored checkpoint cycles, sorted (introspection / tests)."""
        return sorted(self._ring)

    def bytes_retained(self) -> int:
        """Estimated bytes the stored checkpoints actually retain.

        Page-compressed checkpoints (``MainMemory.save_state``) share
        clean-page blobs *by reference* across checkpoints, so the ring's
        real footprint is workload-dependent — summing per-checkpoint
        sizes would count a shared 1 KiB page once per checkpoint that
        references it.  This walk deduplicates by object identity:
        every reachable container/blob is measured exactly once no matter
        how many checkpoints share it, which is precisely the number a
        server needs to size ``checkpoint_capacity`` per session.

        The walk is cached per ring generation (put/clear bump it), so
        between checkpoints the gauge is a dictionary lookup.  Sizes come
        from ``sys.getsizeof`` — shallow for exotic leaf objects, exact
        for the bytes/tuples/dicts/lists checkpoints are made of.
        """
        cached = self._retained_cache
        if cached is not None and cached[0] == self._generation:
            return cached[1]
        import sys
        seen = set()
        total = 0
        stack: List[object] = [cp.state for cp in self._ring.values()]
        while stack:
            node = stack.pop()
            marker = id(node)
            if marker in seen:
                continue
            seen.add(marker)
            total += sys.getsizeof(node)
            if isinstance(node, dict):
                stack.extend(node.keys())
                stack.extend(node.values())
            elif isinstance(node, (list, tuple, set, frozenset)):
                stack.extend(node)
        self._retained_cache = (self._generation, total)
        return total

    def clear(self) -> None:
        self._ring.clear()
        self._generation += 1

    def __len__(self) -> int:
        return len(self._ring)


class RawJson(str):
    """A pre-serialized JSON fragment.

    :func:`dumps_raw` splices instances verbatim into the output instead of
    re-encoding them, so payload fragments cached by the state engine (per
    dirty version, per in-flight instruction) are serialized exactly once
    per content change — the answer to the paper's Sec. IV-A finding that
    JSON work dominates request handling.  Over HTTP the spliced body is
    byte-identical to a plain ``json.dumps`` of the equivalent dict.
    """

    __slots__ = ()


def _json_key(key: object) -> str:
    """Encode a dict key exactly the way ``json.dumps`` coerces it."""
    if isinstance(key, str):
        return json.dumps(key)
    if key is True:
        return '"true"'
    if key is False:
        return '"false"'
    if key is None:
        return '"null"'
    if isinstance(key, (int, float)):
        return f'"{json.dumps(key)}"'
    raise TypeError(f"keys must be str, int, float, bool or None, "
                    f"not {type(key).__name__}")


def dumps_raw(payload: object) -> str:
    """``json.dumps`` with :class:`RawJson` splicing.

    Dicts are walked so embedded fragments surface (non-string keys are
    coerced exactly as ``json.dumps`` would); every other value — including
    arbitrarily large plain sub-trees — is handed to the C encoder in one
    call.  Fragments must therefore only be reachable through chains of
    dicts (which is how the protocol layer embeds them).
    """
    if isinstance(payload, RawJson):
        return str(payload)
    if type(payload) is dict:
        parts = []
        for key, value in payload.items():
            parts.append(f"{_json_key(key)}: {dumps_raw(value)}")
        return "{" + ", ".join(parts) + "}"
    return json.dumps(payload)


def _base_entry_pool(base: dict) -> Dict[int, dict]:
    """All instruction payloads of a full snapshot, keyed by id.

    Every instruction-list section draws from the same per-instruction
    payload dicts, so an entry referenced by id in a delta can be resolved
    from whichever section of the base last carried it.
    """
    pool: Dict[int, dict] = {}
    for entry in base.get("rob") or []:
        pool[entry["id"]] = entry
    for entry in base.get("loadQueue") or []:
        pool[entry["id"]] = entry
    for window in (base.get("issueWindows") or {}).values():
        for entry in window:
            pool[entry["id"]] = entry
    for entry in (base.get("fetch") or {}).get("buffer", []):
        pool[entry["id"]] = entry
    return pool


def _resolve_entries(ids, changed: dict, pool: dict) -> list:
    return [changed[str(uid)] if str(uid) in changed else pool[uid]
            for uid in ids]


def _storeb_pool(base: dict) -> Dict[int, dict]:
    """Store-buffer payloads of a full snapshot, keyed by id.

    Kept separate from the instruction pool: store-buffer entries render
    drain state, not instruction JSON, so ids must resolve against the
    base's own storeBuffer section."""
    return {entry["id"]: entry
            for entry in base.get("storeBuffer") or []
            if "id" in entry}


def apply_snapshot_delta(base: dict, delta: dict) -> dict:
    """Patch full snapshot *base* with *delta* into the next full snapshot.

    The inverse of ``Simulation.snapshot_delta``: applying the delta a
    server produced against the client's previous full state yields exactly
    what ``Simulation.snapshot()`` would have returned.  Instruction-list
    sections may arrive as entry-level deltas (``{"__entryDelta": true,
    "ids": [...], "changed": {...}}``); unchanged entries are resolved from
    the base.  Returns a new dict; *base* is not modified.
    """
    if delta.get("format") == "full":
        return dict(delta["state"])
    if delta.get("baseCycle") != base.get("cycle"):
        # e.g. a lost response advanced the server's view past this base;
        # merging would silently corrupt the view — resync with a full state
        raise ValueError(
            f"delta base mismatch: delta was computed against cycle "
            f"{delta.get('baseCycle')}, client holds cycle "
            f"{base.get('cycle')} (request a full state to resync)")
    out = dict(base)
    out["cycle"] = delta["cycle"]
    out["pc"] = delta["pc"]
    out["halted"] = delta["halted"]
    pool: Optional[Dict[int, dict]] = None
    for name, payload in delta.get("sections", {}).items():
        if isinstance(payload, dict) and payload.get("__entryDelta"):
            changed = payload["changed"]
            if name == "storeBuffer":
                out[name] = _resolve_entries(payload["ids"], changed,
                                             _storeb_pool(base))
                continue
            if pool is None:
                pool = _base_entry_pool(base)
            if name == "issueWindows":
                out[name] = {
                    window: _resolve_entries(ids, changed, pool)
                    for window, ids in payload["windows"].items()}
            elif name == "fetch":
                out[name] = {
                    "pc": payload["pc"],
                    "stalledUntil": payload["stalledUntil"],
                    "buffer": _resolve_entries(payload["ids"], changed,
                                               pool)}
            else:
                out[name] = _resolve_entries(payload["ids"], changed, pool)
        else:
            out[name] = payload
    if "statistics" in delta:
        out["statistics"] = delta["statistics"]
    if "log" in delta:
        out["log"] = base.get("log", [])[:delta["logStart"]] + delta["log"]
    return out
