"""Simulation management: step manager, statistics, forward/backward stepping."""

from repro.sim.simulation import Simulation, SimulationResult, run_program
from repro.sim.statistics import RuntimeStatistics
from repro.sim.debugger import DebugSession, DebugEvent
from repro.sim.energy import (AreaReport, EnergyReport, estimate_area,
                              estimate_energy, render_power_report)

__all__ = [
    "Simulation", "SimulationResult", "run_program", "RuntimeStatistics",
    "DebugSession", "DebugEvent",
    "AreaReport", "EnergyReport", "estimate_area", "estimate_energy",
    "render_power_report",
]
