"""Breakpoints and watchpoints (the paper's future-work debugging features).

Sec. V: *"improving the code development and simulation environment by
adding breakpoints, watches"*.

* A **breakpoint** fires when an instruction at a given PC (or label)
  *commits* — architectural state is then exactly the program state before
  any later instruction, which is what a source-level debugger shows.
* A **register watch** fires when a committed architectural register
  changes value; a **memory watch** fires when a watched byte range
  changes.

`DebugSession.run()` advances the underlying :class:`Simulation` until the
next debug event (or program end), so stepping, backward stepping and state
inspection keep working through the normal API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Union

from repro.isa.registers import parse_register
from repro.sim.simulation import Simulation


@dataclass
class DebugEvent:
    """One debugger stop."""

    kind: str     # 'breakpoint' | 'register' | 'memory' | 'halt' | 'seek'
    cycle: int
    pc: Optional[int] = None
    register: Optional[str] = None
    address: Optional[int] = None
    old_value: object = None
    new_value: object = None

    def __str__(self) -> str:
        if self.kind == "breakpoint":
            return f"breakpoint at pc={self.pc:#x} (cycle {self.cycle})"
        if self.kind == "register":
            return (f"watch {self.register}: {self.old_value} -> "
                    f"{self.new_value} (cycle {self.cycle})")
        if self.kind == "memory":
            return (f"watch [{self.address:#x}]: {self.old_value!r} -> "
                    f"{self.new_value!r} (cycle {self.cycle})")
        if self.kind == "seek":
            return f"seeked to cycle {self.cycle}"
        return f"halted (cycle {self.cycle})"


class DebugSession:
    """Breakpoint/watch layer over a :class:`Simulation`."""

    def __init__(self, simulation: Simulation):
        self.simulation = simulation
        self._breakpoints: Set[int] = set()
        self._reg_watches: Dict[str, object] = {}
        self._mem_watches: Dict[int, bytes] = {}   # address -> last bytes
        self._mem_sizes: Dict[int, int] = {}
        self.events: List[DebugEvent] = []

    # -- breakpoint management -------------------------------------------
    def add_breakpoint(self, where: Union[int, str]) -> int:
        """Break when the instruction at *where* (pc or label) commits."""
        pc = where if isinstance(where, int) \
            else self.simulation.symbol_address(str(where))
        self._breakpoints.add(pc)
        return pc

    def remove_breakpoint(self, where: Union[int, str]) -> bool:
        pc = where if isinstance(where, int) \
            else self.simulation.symbol_address(str(where))
        if pc in self._breakpoints:
            self._breakpoints.remove(pc)
            return True
        return False

    def breakpoints(self) -> List[int]:
        return sorted(self._breakpoints)

    # -- watches -----------------------------------------------------------
    def watch_register(self, name: str) -> None:
        reg = parse_register(name)
        self._reg_watches[reg] = self.simulation.cpu.arch_regs.read(reg)

    def watch_memory(self, address: int, size: int = 4) -> None:
        self._mem_watches[address] = \
            self.simulation.memory_bytes(address, size)
        self._mem_sizes[address] = size

    def unwatch_register(self, name: str) -> None:
        self._reg_watches.pop(parse_register(name), None)

    def unwatch_memory(self, address: int) -> None:
        self._mem_watches.pop(address, None)
        self._mem_sizes.pop(address, None)

    # -- execution -----------------------------------------------------------
    def run(self, max_cycles: int = 1_000_000) -> DebugEvent:
        """Run until the next debug event (or halt); returns the event."""
        sim = self.simulation
        hit: List[DebugEvent] = []

        def observer(cpu) -> None:
            # breakpoint detection: an instruction at a watched PC committed
            # in the step that just ran
            for simcode in getattr(cpu, "_debug_committed", []):
                if simcode.pc in self._breakpoints:
                    hit.append(DebugEvent(kind="breakpoint", cycle=cpu.cycle,
                                          pc=simcode.pc))

        # lightweight commit hook: register the per-commit observer once
        cpu = sim.cpu
        if not hasattr(cpu, "_debug_committed"):
            cpu._debug_committed = []
            cpu.commit_hook = cpu._debug_committed.append

        steps = 0
        while steps < max_cycles:
            if sim.cpu.halted:
                event = DebugEvent(kind="halt", cycle=sim.cpu.cycle)
                self.events.append(event)
                return event
            sim.cpu._debug_committed.clear()
            sim.step(1)
            steps += 1
            observer(sim.cpu)
            # register watches
            for reg, old in list(self._reg_watches.items()):
                new = sim.cpu.arch_regs.read(reg)
                if new != old:
                    self._reg_watches[reg] = new
                    hit.append(DebugEvent(kind="register",
                                          cycle=sim.cpu.cycle, register=reg,
                                          old_value=old, new_value=new))
            # memory watches
            for address, old in list(self._mem_watches.items()):
                size = self._mem_sizes[address]
                new = sim.memory_bytes(address, size)
                if new != old:
                    self._mem_watches[address] = new
                    hit.append(DebugEvent(kind="memory",
                                          cycle=sim.cpu.cycle,
                                          address=address, old_value=old,
                                          new_value=new))
            if hit:
                event = hit[0]
                self.events.append(event)
                return event
        event = DebugEvent(kind="halt", cycle=sim.cpu.cycle)
        self.events.append(event)
        return event

    def continue_(self, max_cycles: int = 1_000_000) -> DebugEvent:
        """Alias for :meth:`run` (gdb-style naming)."""
        return self.run(max_cycles)

    def run_to(self, target_cycle: int) -> DebugEvent:
        """Jump to an absolute *target_cycle* (checkpoint-seeded).

        With no breakpoints or watches installed there is nothing to
        probe along the way: the commit hook is lifted so the move runs
        on the uninstrumented fast path (the superblock trace tier via
        :meth:`Simulation.seek` — checkpoint-seeded fast-forward), and
        the hook is reinstalled before instrumented stepping resumes.
        Determinism makes the fast-forwarded state bit-identical to the
        stepped one, so breakpoints added afterwards behave as if every
        cycle had been stepped.

        With debug state installed, falls back to the instrumented loop
        so events along the way still fire; the returned event is then
        whatever stopped the run first."""
        sim = self.simulation
        cpu = sim.cpu
        if (not self._breakpoints and not self._reg_watches
                and not self._mem_watches):
            hook = cpu.commit_hook
            cpu.commit_hook = None
            try:
                sim.seek(target_cycle)
            finally:
                cpu = sim.cpu          # seek may rebuild the CPU (reset)
                cpu.commit_hook = hook
            kind = "halt" if cpu.halted else "seek"
            event = DebugEvent(kind=kind, cycle=cpu.cycle)
            self.events.append(event)
            return event
        if target_cycle <= cpu.cycle:
            # backward targets cannot re-fire events deterministically
            # already delivered: plain seek, keep the probes installed
            sim.seek(target_cycle)
            event = DebugEvent(kind="seek", cycle=sim.cpu.cycle)
            self.events.append(event)
            return event
        while sim.cpu.cycle < target_cycle and not sim.cpu.halted:
            event = self.run(max_cycles=target_cycle - sim.cpu.cycle)
            if event.kind != "halt" or sim.cpu.halted:
                return event
            # budget-exhausted pseudo-halt: the target was reached with
            # no event on the way — replace it with the seek event below
            self.events.pop()
        event = DebugEvent(kind="seek", cycle=sim.cpu.cycle)
        self.events.append(event)
        return event
