"""Runtime statistics (the Runtime-statistics window, Fig. 10).

Collected by the simulation step manager: static and dynamic instruction
mix, busy cycles per functional unit, cache statistics, predictor accuracy,
total cycles, committed instructions, reorder-buffer flushes, FLOPS, IPC,
wall time and more.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.pipeline import Cpu
from repro.isa.instruction import InstructionType


class RuntimeStatistics:
    """Aggregated view over a :class:`Cpu`'s counters."""

    def __init__(self, cpu: Cpu):
        self.cpu = cpu

    # -- headline metrics (right-hand panel, default view) ---------------
    @property
    def cycles(self) -> int:
        return self.cpu.cycle

    @property
    def committed_instructions(self) -> int:
        return self.cpu.committed

    @property
    def ipc(self) -> float:
        return self.cpu.committed / self.cpu.cycle if self.cpu.cycle else 0.0

    @property
    def branch_prediction_accuracy(self) -> float:
        return self.cpu.predictor.accuracy

    # -- expanded view ----------------------------------------------------
    @property
    def flops_total(self) -> int:
        """Committed floating point operations."""
        return self.cpu.flops

    @property
    def wall_time_s(self) -> float:
        """Simulated wall time = cycles / core clock."""
        return self.cpu.cycle / self.cpu.config.core_clock_hz

    @property
    def flops_rate(self) -> float:
        """FLOPS (operations per simulated second)."""
        wall = self.wall_time_s
        return self.cpu.flops / wall if wall else 0.0

    @property
    def cache_hit_rate(self) -> Optional[float]:
        if self.cpu.cache is None:
            return None
        return self.cpu.cache.stats.hit_ratio

    @property
    def rob_flushes(self) -> int:
        return self.cpu.rob_flushes

    # -- mixes --------------------------------------------------------------
    def dynamic_mix(self) -> Dict[str, int]:
        mix = {t.value: 0 for t in InstructionType}
        mix.update(self.cpu.committed_by_type)
        return mix

    def dynamic_mix_percent(self) -> Dict[str, float]:
        total = max(1, self.cpu.committed)
        return {k: 100.0 * v / total for k, v in self.dynamic_mix().items()}

    def static_mix(self) -> Dict[str, int]:
        return self.cpu.program.static_mix()

    def mnemonic_counts(self) -> Dict[str, int]:
        return dict(self.cpu.committed_by_mnemonic)

    # -- per-unit utilization -------------------------------------------
    def fu_utilization(self) -> Dict[str, dict]:
        """Busy cycles and busy percentage per functional unit."""
        cycles = max(1, self.cpu.cycle)
        out = {}
        for fu in self.cpu.fus + self.cpu.memory_units:
            out[fu.spec.name] = {
                "kind": fu.spec.kind,
                "busyCycles": fu.busy_cycles,
                "busyPercent": 100.0 * fu.busy_cycles / cycles,
            }
        return out

    # -- full payload -------------------------------------------------------
    def to_json(self) -> dict:
        """The complete statistics page (Fig. 10)."""
        cpu = self.cpu
        data = {
            "cycles": self.cycles,
            "committedInstructions": self.committed_instructions,
            "ipc": self.ipc,
            "wallTimeS": self.wall_time_s,
            "flopsTotal": self.flops_total,
            "flopsRate": self.flops_rate,
            "robFlushes": self.rob_flushes,
            "decodeRedirects": cpu.decode_redirects,
            "fetchStallCycles": cpu.fetch_stall_cycles,
            "dispatchStalls": dict(cpu.dispatch_stalls),
            "branchPredictor": cpu.predictor.stats(),
            "staticMix": self.static_mix(),
            "dynamicMix": self.dynamic_mix(),
            "dynamicMixPercent": self.dynamic_mix_percent(),
            "mnemonicCounts": self.mnemonic_counts(),
            "functionalUnits": self.fu_utilization(),
            "memory": cpu.memory.stats(),
            "haltReason": cpu.halted,
        }
        if cpu.cache is not None:
            data["cache"] = cpu.cache.stats.to_json()
        if cpu.l2_cache is not None:
            data["l2Cache"] = cpu.l2_cache.stats.to_json()
        return data

    # -- state-engine protocol (repro.sim.state) -------------------------
    #
    # The statistics collector is a *view* over counters owned by the Cpu;
    # its save/restore delegates to those counters so checkpoint time-travel
    # (repro.sim.simulation) rewinds the statistics page along with the
    # architectural state.
    def save_state(self) -> dict:
        return self.cpu.save_counters()

    def restore_state(self, state: dict) -> None:
        self.cpu.restore_counters(state)

    # -- compact panel (right-hand status bar, default state) --------------
    def panel(self, expanded: bool = False) -> dict:
        data = {
            "cycles": self.cycles,
            "committedInstructions": self.committed_instructions,
            "ipc": round(self.ipc, 3),
            "branchAccuracy": round(self.branch_prediction_accuracy, 3),
        }
        if expanded:
            data["flops"] = self.flops_total
            hit = self.cache_hit_rate
            data["cacheHitRate"] = None if hit is None else round(hit, 3)
        return data
